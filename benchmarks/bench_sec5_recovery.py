"""E5 — Section 5: measurement-free error recovery.

Regenerates the Sec. 5 evaluation:

* all 21 single-qubit Pauli errors on a Steane block are corrected
  without any measurement (the classical decoder runs as reversible
  logic on classical bits);
* zero malignant single faults inside the recovery gadget itself;
* the O(p^2) residual-failure curve by counting + Monte Carlo;
* agreement with the measured (standard) recovery baseline.
"""

import pytest

from repro.analysis import (
    exhaustive_single_faults_sparse,
    fit_power_law,
    gadget_monte_carlo,
    recovered_overlap_evaluator,
    sample_malignant_pairs,
)
from repro.analysis.montecarlo import _default_locations
from repro.circuits import PauliString, iter_single_qubit_paulis
from repro.codes import SteaneCode
from repro.ft import (
    build_recovery_gadget,
    recovery_ancilla_state,
    sparse_logical_state,
)
from repro.ft.gadget import apply_circuit_with_faults
from repro.noise import NoiseModel

from _harness import engine_stats_lines, report, series_lines

P_GRID = (2e-4, 5e-4, 1e-3, 2e-3)
MC_P = 2e-3


@pytest.fixture(scope="module")
def context():
    code = SteaneCode()
    data = sparse_logical_state(code, {(0,): 0.6, (1,): 0.8})
    gadget = build_recovery_gadget(code, "X")
    initial = gadget.initial_state({
        "data": data,
        "ancilla": recovery_ancilla_state(code, "X"),
    })
    evaluator = recovered_overlap_evaluator(gadget, code, ["data"],
                                            data)
    return code, data, gadget, initial, evaluator


def test_sec5_corrects_all_single_paulis(benchmark):
    code = SteaneCode()
    data = sparse_logical_state(code, {(0,): 0.6, (1,): 0.8})

    def run_experiment():
        corrected = 0
        total = 0
        for error in iter_single_qubit_paulis(7):
            state = data.copy()
            state.apply_pauli(error)
            for error_type in ("X", "Z"):
                gadget = build_recovery_gadget(code, error_type)
                full = gadget.initial_state({
                    "data": state if state.num_qubits == 7 else None,
                    "ancilla": recovery_ancilla_state(code, error_type),
                })
                apply_circuit_with_faults(full, gadget.circuit, [])
                state = _extract(full, gadget.qubits("data"))
            total += 1
            if state.fidelity(data) > 1 - 1e-9:
                corrected += 1
        return corrected, total

    corrected, total = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    report("E5 / Sec. 5 — measurement-free recovery", [
        f"single-qubit Pauli errors corrected: {corrected}/{total}",
        "(X pass + Z pass, decoder = reversible NOT/CNOT/Toffoli on",
        "classical bits; no measurement anywhere)",
    ])
    assert corrected == total == 21


def _extract(state, block):
    from repro.circuits import gates

    scratch = state.copy()
    junk = [q for q in range(state.num_qubits)
            if q not in set(block)]
    for qubit in sorted(junk, reverse=True):
        outcome = int(scratch.probability_of_outcome(qubit, 1) > 0.5)
        scratch.project(qubit, outcome)
        if outcome:
            scratch.apply_gate(gates.X, [qubit])
        scratch.release([qubit])
    return scratch


def test_sec5_internal_fault_tolerance(benchmark, context):
    code, data, gadget, initial, evaluator = context
    locations = _default_locations(gadget)

    def run_experiment():
        failures = exhaustive_single_faults_sparse(
            gadget, initial, evaluator, locations=locations,
            workers=2,
        )
        pair_sample = sample_malignant_pairs(
            gadget, initial, evaluator, samples=400, seed=51,
            locations=locations, workers=2,
        )
        mc = gadget_monte_carlo(gadget, initial, evaluator,
                                NoiseModel.uniform(MC_P), trials=900,
                                seed=52, locations=locations,
                                workers=2, memoize=True)
        return failures, pair_sample, mc

    failures, pair_sample, mc = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    m_eff = pair_sample.estimated_malignant_pairs
    threshold = pair_sample.threshold_estimate
    rows = [(p, m_eff * p * p) for p in P_GRID]
    fit = fit_power_law(P_GRID, [r for _, r in rows])
    report("E5 / Sec. 5 — X-recovery gadget fault tolerance", [
        f"gadget: {gadget.name} ({gadget.num_qubits} qubits, "
        f"{len(gadget.circuit)} ops; {len(locations)} locations)",
        f"exhaustive single-fault survey: {len(failures)} malignant",
        f"sampled two-fault malignancy: {pair_sample.malignant}/"
        f"{pair_sample.samples} -> M_eff ~ {m_eff:.0f}, "
        f"p_th ~ " + (f"{threshold:.1e}" if threshold else "-"),
        "predicted residual-failure rate M_eff * p^2:",
        *series_lines(("p", "predicted"), rows),
        f"log-log slope: {fit.exponent:.2f} (paper: 2)",
        f"Monte-Carlo at p={MC_P}: {mc.failure_rate:.2e} "
        f"+- {mc.stderr:.1e}; single-fault failures: "
        f"{mc.single_fault_failures}",
        "",
        *engine_stats_lines(mc.engine_stats),
    ])
    assert failures == []
    assert mc.single_fault_failures == 0


def test_sec5_measured_baseline_agreement(benchmark):
    from repro.ft.baselines import MeasuredRecovery

    code = SteaneCode()
    data = sparse_logical_state(code, {(0,): 0.6, (1,): 0.8})

    def run_experiment():
        corrected = 0
        for error in iter_single_qubit_paulis(7):
            state = data.copy()
            state.apply_pauli(error)
            recovered = MeasuredRecovery(code, seed=3).run(state)
            if recovered.block_overlap(list(range(7)), data) > 1 - 1e-9:
                corrected += 1
        return corrected

    corrected = benchmark.pedantic(run_experiment, rounds=1,
                                   iterations=1)
    report("E5 — measured recovery baseline", [
        f"single-qubit Paulis corrected by the measured protocol: "
        f"{corrected}/21",
        "same corrective power; requires per-computer measurement",
    ])
    assert corrected == 21
