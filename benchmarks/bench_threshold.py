"""E7 — Section 4.2: thresholds by counting, and design ablations.

"The threshold can easily be calculated by counting the potential
places for two errors."  This bench regenerates that evaluation across
every gadget, and runs the design ablations DESIGN.md calls out:

* D2 — the N_1 syndrome check bits: without them a single
  quantum-ancilla bit error corrupts every classical output bit;
* D3 — repetition / variant ablation: the direct (one N_1 per output
  bit) and voted (2k+1 + private-copy majority) variants both pass
  the exhaustive single-fault sweep, with different location counts;
* the symbolic (conservative) counts next to the exact state-based
  statistics, quantifying how much the worst-case Pauli picture
  over-counts.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis import (
    GadgetFaultAnalyzer,
    exhaustive_single_faults_sparse,
    gadget_monte_carlo,
    n_gadget_evaluator,
    sample_malignant_pairs,
    sampled_threshold_report,
)
from repro.analysis.montecarlo import _default_locations
from repro.circuits import Circuit, PauliString, gates
from repro.codes import SteaneCode
from repro.ft import build_n_gadget, build_recovery_gadget, \
    build_t_gadget, sparse_coset_state
from repro.ft.ngate import append_n1
from repro.noise import NoiseModel, count_locations

from _harness import engine_stats_lines, report, series_lines

#: Default workload for the engine speedup bench; override with
#: BENCH_ENGINE_TRIALS for CI smoke runs (the >= 2x assertion only
#: applies at full scale).
SPEEDUP_TRIALS = int(os.environ.get("BENCH_ENGINE_TRIALS", "6000"))
SPEEDUP_P = 5e-4
SPEEDUP_WORKERS = 4


def test_threshold_table(benchmark):
    """Location counts, exact single-fault counts and sampled
    two-fault malignancy for each core gadget."""
    code = SteaneCode()

    def analyze_n(variant):
        gadget = build_n_gadget(code, variant=variant)
        initial = gadget.initial_state(
            {"quantum": sparse_coset_state(code, 0)}
        )
        evaluator = n_gadget_evaluator(gadget, code, 0)
        return gadget, initial, evaluator

    def run_experiment():
        rows = []
        stats_lines = []
        for index, variant in enumerate(("direct", "voted")):
            gadget, initial, evaluator = analyze_n(variant)
            locations = _default_locations(gadget)
            threshold_report = sampled_threshold_report(
                gadget, initial, evaluator, samples=400,
                seed=61 + index, locations=locations,
                workers=2,
            )
            threshold = threshold_report.threshold_estimate
            rows.append((
                gadget.name,
                threshold_report.location_counts["total"],
                threshold_report.single_fault_failures,
                threshold_report.malignant_pairs,
                f"{threshold:.1e}" if threshold else "-",
            ))
            stats_lines.append(f"[{gadget.name}]")
            stats_lines.extend(
                engine_stats_lines(threshold_report.engine_stats)
            )
        return rows, stats_lines

    rows, stats_lines = benchmark.pedantic(run_experiment, rounds=1,
                                           iterations=1)
    report("E7 — thresholds by counting (exact, state-based)", [
        *series_lines(("gadget", "locations", "1-fault fails",
                       "M_eff (sampled)", "p_th ~ 1/M"), rows),
        "",
        "failure model: P_fail <= M_eff p^2; threshold where the",
        "gadget stops helping: p_th ~ 1/M_eff (paper Sec. 4.2)",
        "",
        *stats_lines,
    ])
    assert all(row[2] == 0 for row in rows)


def test_engine_speedup(benchmark):
    """Acceptance bench: the parallel engine with memoization beats
    the serial loop by >= 2x wall-clock on the same seeded workload.

    At low p most non-empty samples are repeated single-fault
    patterns, so the fault-pattern cache collapses the dominant
    simulation cost; the worker pool and vectorised strike sampling
    carry the rest.
    """
    code = SteaneCode()
    gadget = build_n_gadget(code, variant="direct")
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    locations = _default_locations(gadget)
    noise = NoiseModel.uniform(SPEEDUP_P)

    def run_experiment():
        start = time.perf_counter()
        serial = gadget_monte_carlo(
            gadget, initial, evaluator, noise, SPEEDUP_TRIALS,
            seed=71, locations=locations,
        )
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        fast = gadget_monte_carlo(
            gadget, initial, evaluator, noise, SPEEDUP_TRIALS,
            seed=71, locations=locations,
            workers=SPEEDUP_WORKERS, memoize=True,
        )
        engine_seconds = time.perf_counter() - start
        return serial, serial_seconds, fast, engine_seconds

    serial, serial_seconds, fast, engine_seconds = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    speedup = serial_seconds / engine_seconds
    stats = fast.engine_stats
    report("E7 — engine speedup (serial loop vs parallel engine)", [
        f"workload: {gadget.name}, p={SPEEDUP_P}, "
        f"trials={SPEEDUP_TRIALS}, {len(locations)} locations",
        f"serial loop:     {serial_seconds:.2f}s "
        f"({SPEEDUP_TRIALS / serial_seconds:.0f} trials/s)",
        f"engine (workers={SPEEDUP_WORKERS}, memoized): "
        f"{engine_seconds:.2f}s "
        f"({SPEEDUP_TRIALS / engine_seconds:.0f} trials/s)",
        f"speedup: {speedup:.2f}x",
        "",
        *engine_stats_lines(stats),
        "",
        f"failure rates: serial {serial.failure_rate:.2e}, "
        f"engine {fast.failure_rate:.2e} (distinct RNG streams; both "
        f"paths are separately seed-stable)",
    ])
    assert fast.single_fault_failures == 0
    if SPEEDUP_TRIALS >= 4000:
        assert speedup >= 2.0


def test_ablation_syndrome_check_bits(benchmark):
    """D2: strip the Fig. 1 syndrome check bits and watch a single
    pre-existing bit error corrupt every repetition's output."""
    code = SteaneCode()

    def run_experiment():
        # Hand-build an N without syndrome protection: raw parity
        # CNOTs only, one stage per output bit.
        n = code.n
        circuit = Circuit(n + n, name="N_without_checks")
        for stage in range(n):
            for position in range(n):
                circuit.add_gate(gates.CNOT, position, n + stage)
        from repro.ft.gadget import apply_circuit_with_faults
        from repro.simulators import SparseState

        initial = SparseState.from_dense(code.logical_zero()).tensor(
            SparseState(n)
        )
        fault = PauliString.single(2 * n, 0, "X")
        state = initial.copy()
        apply_circuit_with_faults(state, circuit, [(fault, -1)])
        top = state.num_qubits - 1
        wrong_bits = max(
            sum((index >> (top - (n + stage))) & 1
                for stage in range(n))
            for index in state.iter_ints()
        )
        return wrong_bits

    wrong_bits = benchmark.pedantic(run_experiment, rounds=1,
                                    iterations=1)
    report("E7 ablation D2 — N gate without syndrome check bits", [
        f"one input bit error -> {wrong_bits}/7 classical output bits "
        "wrong (majority defeated)",
        "with the Fig. 1 syndrome correction: 0 wrong bits "
        "(certified in E1)",
    ])
    assert wrong_bits == 7


def test_ablation_symbolic_vs_exact(benchmark):
    """Quantify the conservatism of worst-case Pauli propagation."""
    code = SteaneCode()
    gadget = build_n_gadget(code, variant="direct")

    def run_experiment():
        analyzer = GadgetFaultAnalyzer(gadget, code)
        survey = analyzer.single_fault_survey()
        initial = gadget.initial_state(
            {"quantum": sparse_coset_state(code, 0)}
        )
        evaluator = n_gadget_evaluator(gadget, code, 0)
        exact = exhaustive_single_faults_sparse(gadget, initial,
                                                evaluator, workers=2)
        return len(survey.failures), len(exact)

    symbolic, exact = benchmark.pedantic(run_experiment, rounds=1,
                                         iterations=1)
    report("E7 — symbolic (conservative) vs exact fault analysis", [
        f"symbolic worst-case Pauli survey flags: {symbolic} "
        "single faults",
        f"exact state-vector survey: {exact} single faults",
        "",
        "the gap is the value-dependent cancellation inside the N_1",
        "classical correction box, invisible to Pauli propagation —",
        "the symbolic numbers are safe upper bounds only",
    ])
    assert exact == 0
    assert symbolic > 0


def test_gadget_inventory(benchmark):
    """Location-count inventory across every gadget (the raw numbers
    the paper's counting argument starts from)."""
    code = SteaneCode()

    def run_experiment():
        from repro.ft import (
            and_state_spec,
            build_special_state_gadget,
            build_toffoli_gadget,
            t_state_spec,
        )

        gadgets = [
            build_n_gadget(code, variant="direct"),
            build_n_gadget(code, variant="voted"),
            build_t_gadget(code),
            build_recovery_gadget(code, "X"),
            build_recovery_gadget(code, "Z"),
            build_special_state_gadget(code, t_state_spec(code)),
            build_special_state_gadget(code, and_state_spec(code)),
            build_toffoli_gadget(code),
        ]
        rows = []
        for gadget in gadgets:
            locations = _default_locations(gadget)
            kinds = {"gate": 0, "input": 0, "delay": 0}
            for loc in locations:
                kinds[loc.kind] += 1
            rows.append((gadget.name, gadget.num_qubits,
                         len(gadget.circuit), kinds["input"],
                         kinds["gate"], kinds["delay"],
                         len(locations)))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E7 — gadget inventory (fault locations)", [
        *series_lines(("gadget", "qubits", "ops", "inputs", "gates",
                       "delays", "total"), rows),
    ])
    assert len(rows) == 8
