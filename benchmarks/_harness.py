"""Shared reporting helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts (Figures 1-4,
Sec. 2 strategies, Sec. 5 recovery, the Sec. 4.2 counting threshold)
as a printed report, and additionally times its core operation via
pytest-benchmark.  Reports are printed to stdout (run with ``-s`` to
see them live) and appended to ``benchmarks/results/report.txt``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(title: str, lines: Iterable[str]) -> str:
    """Print a titled report block and persist it to the results file.

    The block is appended with a single ``O_APPEND`` write so
    concurrent benchmark processes (``pytest-xdist``, parallel CI
    lanes) interleave whole blocks, never torn lines.
    """
    body = "\n".join(lines)
    block = (
        f"\n{'=' * 72}\n{title}\n{'-' * 72}\n{body}\n{'=' * 72}\n"
    )
    print(block)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    fd = os.open(os.path.join(_RESULTS_DIR, "report.txt"),
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, block.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    return block


def series_lines(header: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> List[str]:
    """Format a small aligned table."""
    widths = [max(len(str(header[i])),
                  max((len(_fmt(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(_fmt(v).rjust(w)
                               for v, w in zip(row, widths)))
    return lines


def engine_stats_lines(stats: Optional[object]) -> List[str]:
    """Render a :class:`repro.analysis.engine.EngineStats` block.

    Accepts ``None`` (serial path) so benchmarks can report whatever
    execution path they actually took.
    """
    if stats is None:
        return ["engine: serial path (no engine stats)"]
    return stats.summary_lines()


def verdict_lines(verdicts: Iterable[object]) -> List[str]:
    """One summary line per :class:`repro.analysis.stats.ClaimVerdict`
    (or anything else exposing ``summary_line()``)."""
    return [verdict.summary_line() for verdict in verdicts]


def json_artifact(name: str, payload: Dict[str, Any]) -> str:
    """Persist a machine-readable artifact under ``results/``.

    Written atomically (tmp + rename) so a crashed benchmark never
    leaves a torn JSON for CI to upload.  Returns the final path.
    """
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, name)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-2 or abs(value) >= 1e4:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
