"""E9 — certified circuit optimization on the threshold workloads.

The paper charges every gate, input bit and idle (moment, qubit) slot
as a fault location, so an optimizer that tightens the gadget
schedules shrinks the bill every Monte-Carlo trial pays.  This bench
measures the per-gadget location-count reduction (input/gate/delay
split), the pipeline's per-pass rewrite counts and wall-clock, and a
Monte-Carlo wall-clock comparison on the optimized N gadget; asserts
the >= 10% acceptance bar on at least one Steane gadget; and emits
``results/BENCH_optimize.json`` for CI.

Scale down with ``BENCH_OPTIMIZE_TRIALS`` for smoke runs (the
reduction assertions hold at any scale; they are structural).
"""

import os
import time

from repro.analysis import n_gadget_evaluator
from repro.analysis.engine import run_monte_carlo
from repro.codes import SteaneCode
from repro.ft import build_n_gadget, sparse_coset_state
from repro.ft.recovery import build_recovery_gadget
from repro.ft.t_gadget import build_t_gadget
from repro.noise.locations import count_locations
from repro.optimize import (
    clear_optimize_cache,
    gadget_pipeline,
    optimize_circuit,
)

from _harness import json_artifact, report, series_lines

TRIALS = int(os.environ.get("BENCH_OPTIMIZE_TRIALS", "2000"))


def _steane_gadgets(code):
    return [
        ("N[steane,direct]", build_n_gadget(code)),
        ("T[steane]", build_t_gadget(code)),
        ("recovery_X[steane]", build_recovery_gadget(code, "X")),
    ]


def test_optimize_reduction(benchmark):
    """Location-count reduction + optimizer wall-clock per gadget."""
    code = SteaneCode()
    gadgets = _steane_gadgets(code)

    def run_experiment():
        clear_optimize_cache()
        rows = []
        for name, gadget in gadgets:
            pipeline = gadget_pipeline()
            start = time.perf_counter()
            result = optimize_circuit(gadget.circuit, pipeline,
                                      use_cache=False)
            elapsed = time.perf_counter() - start
            before = count_locations(gadget.circuit)
            after = count_locations(result.circuit)
            rows.append({
                "gadget": name,
                "before": before,
                "after": after,
                "reduction_pct": 100.0 * (
                    1.0 - after["total"] / before["total"]),
                "rewrites": dict(result.rewrites),
                "rounds": result.rounds,
                "converged": result.converged,
                "optimize_seconds": elapsed,
            })
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # The acceptance bar: >= 10% fewer locations on a Steane gadget,
    # and optimization never adds locations anywhere.
    best = max(row["reduction_pct"] for row in rows)
    assert best >= 10.0, rows
    assert all(row["after"]["total"] <= row["before"]["total"]
               for row in rows)
    assert all(row["converged"] for row in rows)

    # Monte-Carlo wall-clock on the optimized vs plain N gadget: the
    # optimized run samples fewer locations per trial.
    gadget, initial, evaluator = _steane_n_triple(code)
    from repro.noise import NoiseModel

    noise = NoiseModel.uniform(0.002)
    start = time.perf_counter()
    plain = run_monte_carlo(gadget, initial, evaluator, noise,
                            trials=TRIALS, seed=81)
    plain_seconds = time.perf_counter() - start
    start = time.perf_counter()
    optimized = run_monte_carlo(gadget, initial, evaluator, noise,
                                trials=TRIALS, seed=81, optimize=True)
    optimized_seconds = time.perf_counter() - start

    table = series_lines(
        ["gadget", "locations", "optimized", "reduction",
         "delay before", "delay after", "opt secs"],
        [[row["gadget"], row["before"]["total"],
          row["after"]["total"], f"{row['reduction_pct']:.1f}%",
          row["before"]["delay"], row["after"]["delay"],
          f"{row['optimize_seconds']:.2f}"] for row in rows],
    )
    lines = table + [
        "",
        f"monte carlo ({TRIALS} trials, p=0.002, Steane N): "
        f"plain {plain_seconds:.2f}s "
        f"({plain.failures} failures) vs optimized "
        f"{optimized_seconds:.2f}s ({optimized.failures} failures)",
        "per-pass rewrites: " + "; ".join(
            f"{row['gadget']}: {row['rewrites']}" for row in rows),
    ]
    report("E9. certified circuit optimization "
           "(repro.optimize pass pipeline)", lines)
    json_artifact("BENCH_optimize.json", {
        "gadgets": rows,
        "monte_carlo": {
            "trials": TRIALS,
            "p": 0.002,
            "plain_seconds": plain_seconds,
            "optimized_seconds": optimized_seconds,
            "plain_failures": plain.failures,
            "optimized_failures": optimized.failures,
        },
        "best_reduction_pct": best,
    })


def _steane_n_triple(code):
    gadget = build_n_gadget(code)
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    return gadget, initial, evaluator
