"""E2 — Figure 2: measurement-free eigenvector preparation.

Regenerates the Fig. 2 evaluation for both instances (|psi_0> for the
sigma_z^{1/4} gadget, |AND> for the Toffoli gadget):

* exact preparation overlap (= 1) on trivial and Steane codes, in both
  parity-extraction wirings;
* fault tolerance within the paper's stated scope (errors in cat
  states after controlling U, in parity bits, in the flip stage);
* the reproduction finding: faults touching the special-state block
  mid-preparation, or cat-preparation faults (unverified cats), are
  malignant — quantified as the fraction of all single-fault
  locations outside the guarantee.
"""

import pytest

from repro.analysis import exhaustive_single_faults_sparse
from repro.analysis.montecarlo import _default_locations
from repro.codes import SteaneCode, TrivialCode
from repro.ft import (
    and_state_spec,
    build_special_state_gadget,
    special_state_input,
    t_state_spec,
)
from repro.ft.ideal_recovery import apply_perfect_recovery
from repro.ft.special_states import combined_state_qubits

from _harness import report, series_lines


def prepare_overlap(code, spec_factory, mode):
    spec = spec_factory(code)
    gadget = build_special_state_gadget(code, spec, parity_mode=mode)
    out = gadget.run(special_state_input(gadget, code, spec))
    return out.block_overlap(combined_state_qubits(gadget, spec),
                             spec.expected_state(code))


def test_fig2_exact_preparation(benchmark):
    steane, trivial = SteaneCode(), TrivialCode()

    def run_experiment():
        rows = []
        for code in (trivial, steane):
            for factory, name in ((t_state_spec, "|psi_0>"),
                                  (and_state_spec, "|AND>")):
                for mode in ("ancilla", "hadamard"):
                    if mode == "hadamard" and code.n == 7 \
                            and name == "|AND>":
                        continue  # term blowup; equivalence shown at n=1
                    rows.append((code.name, name, mode,
                                 prepare_overlap(code, factory, mode)))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E2 / Fig. 2 — special-state preparation (exact)", [
        *series_lines(("code", "state", "parity mode", "overlap"),
                      rows),
        "paper: the circuit outputs the eigenvector |phi_0> exactly",
    ])
    assert all(abs(row[3] - 1.0) < 1e-9 for row in rows)


def test_fig2_fault_scope(benchmark):
    """Quantify the guarantee's scope on the Steane |psi_0> prep."""
    steane = SteaneCode()
    spec = t_state_spec(steane)
    gadget = build_special_state_gadget(steane, spec)
    initial = gadget.initial_state(
        special_state_input(gadget, steane, spec)
    )
    expected = spec.expected_state(steane)
    block = combined_state_qubits(gadget, spec)
    state_qubits = set(block)

    def evaluator(state):
        scratch = state.copy()
        apply_perfect_recovery(scratch, block, steane)
        return scratch.block_overlap(block, expected) > 1 - 1e-7

    def run_experiment():
        locations = _default_locations(gadget)
        failures = exhaustive_single_faults_sparse(
            gadget, initial, evaluator, locations=locations,
            workers=2,
        )
        failing_locations = {
            (loc.kind, loc.detail) for loc, _ in failures
        }
        state_touching = [
            loc for loc in locations if set(loc.qubits) & state_qubits
        ]
        return locations, failures, failing_locations, state_touching

    locations, failures, failing_locations, state_touching = \
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E2 / Fig. 2 — single-fault scope (Steane |psi_0> prep)", [
        f"total fault locations: {len(locations)}",
        f"locations with at least one malignant Pauli: "
        f"{len(failing_locations)}",
        f"locations touching the special-state block: "
        f"{len(state_touching)}",
        "",
        "reproduction finding: the Fig. 2 guarantee covers errors in",
        "cat states (after controlling U), parity bits and the flip",
        "stage — certified exhaustively in the test-suite.  Faults",
        "that corrupt the state block mid-preparation, or cat-",
        "preparation faults (unverified cats), break the eigenvector",
        "structure of U and are NOT recoverable; Shor's measured",
        "scheme handles these by verifying cat states and ancillas,",
        "a step with no measurement-free substitute in the paper.",
    ])
    # The malignant set must be non-empty (the finding) but confined.
    assert len(failing_locations) > 0
    assert len(failing_locations) < len(locations)


def test_benchmark_and_state_prep(benchmark):
    steane = SteaneCode()
    spec = and_state_spec(steane)
    gadget = build_special_state_gadget(steane, spec)
    inputs = special_state_input(gadget, steane, spec)
    benchmark(lambda: gadget.run(inputs))
