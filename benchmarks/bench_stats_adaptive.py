"""E8 — sequential certification: trials-to-decision vs fixed budget.

The statistical trust layer's economic claim: an SPRT-driven run
decides the paper's claims in a small fraction of the trials a
fixed-budget run burns, at configured error rates — and the adaptive
sweep concentrates a shared budget on the p-points whose confidence
intervals are widest instead of spreading it uniformly.

Emits ``results/BENCH_stats.json`` with the measured trials-to-
decision table (the CI bench job can upload it as an artifact).
"""

import os

from repro.analysis import (
    adaptive_sweep_p,
    n_gadget_evaluator,
    run_sequential_monte_carlo,
    sweep_p,
)
from repro.codes import SteaneCode
from repro.ft import build_n_gadget, sparse_coset_state
from repro.noise import NoiseModel

from _harness import json_artifact, report, series_lines, verdict_lines

#: Fixed-budget comparison ceiling; override with BENCH_STATS_TRIALS
#: for CI smoke runs.
FIXED_BUDGET = int(os.environ.get("BENCH_STATS_TRIALS", "8000"))
SWEEP_BUDGET = int(os.environ.get("BENCH_STATS_SWEEP_TRIALS", "3072"))
BATCH = 256
SEED = 20260806


def _steane_case():
    code = SteaneCode()
    gadget = build_n_gadget(code)
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    return gadget, initial, evaluator


def test_trials_to_decision(benchmark):
    """Sequential stop vs fixed budget, at p values on both sides of
    the claim boundary."""
    gadget, initial, evaluator = _steane_case()
    cases = [
        ("quiet", 0.002, 0.01, 0.05),
        ("marginal", 0.02, 0.01, 0.05),
        ("noisy", 0.05, 0.002, 0.01),
    ]

    def run_experiment():
        rows = []
        verdicts = []
        for label, p, p0, p1 in cases:
            outcome = run_sequential_monte_carlo(
                gadget, initial, evaluator, NoiseModel.uniform(p),
                p0=p0, p1=p1, max_trials=FIXED_BUDGET, seed=SEED,
                batch_size=BATCH,
            )
            verdict = outcome.verdict
            verdicts.append(verdict)
            rows.append((
                label, p, f"<= {p0:g}", verdict.decision,
                verdict.trials, FIXED_BUDGET,
                f"{verdict.trials / FIXED_BUDGET:.1%}",
            ))
        return rows, verdicts

    rows, verdicts = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)
    report("E8 — trials-to-decision: sequential vs fixed budget", [
        f"workload: {gadget.name}, SPRT alpha=beta=0.05, "
        f"batch={BATCH}",
        *series_lines(("case", "p", "claim", "decision", "trials",
                       "budget", "spend"), rows),
        "",
        *verdict_lines(verdicts),
    ])
    json_artifact("BENCH_stats.json", {
        "workload": gadget.name,
        "fixed_budget": FIXED_BUDGET,
        "batch_size": BATCH,
        "seed": SEED,
        "cases": [
            {
                "case": row[0],
                "p": row[1],
                "claim": row[2],
                "decision": row[3],
                "trials_to_decision": row[4],
                "budget": row[5],
            }
            for row in rows
        ],
        "verdicts": [verdict.to_json_dict() for verdict in verdicts],
    })
    # Every decided case must have stopped measurably early.
    for row, verdict in zip(rows, verdicts):
        if verdict.decision != "undecided":
            assert verdict.trials < FIXED_BUDGET


def test_adaptive_sweep_vs_uniform(benchmark):
    """Same total budget: adaptive allocation vs uniform sweep_p.

    The adaptive sweep must spend more of the budget on the widest-
    interval points than the uniform split does, tightening the CI
    where it is loosest.
    """
    gadget, initial, evaluator = _steane_case()
    p_values = [0.005, 0.02, 0.05]
    per_point = SWEEP_BUDGET // len(p_values)

    def run_experiment():
        adaptive = adaptive_sweep_p(
            gadget, initial, evaluator, p_values,
            total_trials=SWEEP_BUDGET, seed=SEED, batch_size=BATCH,
        )
        uniform = sweep_p(
            gadget, initial, evaluator, p_values, trials=per_point,
            seed=SEED, chunk_size=BATCH,
        )
        return adaptive, uniform

    adaptive, uniform = benchmark.pedantic(run_experiment, rounds=1,
                                           iterations=1)
    rows = []
    for index, p in enumerate(p_values):
        fixed_interval = uniform[index].interval()
        rows.append((
            p,
            adaptive.results[index].trials,
            uniform[index].trials,
            f"{adaptive.intervals[index].half_width:.2e}",
            f"{fixed_interval.half_width:.2e}",
        ))
    widest = max(range(len(p_values)),
                 key=lambda i: uniform[i].interval().half_width)
    report("E8 — adaptive sweep vs uniform split (equal budget)", [
        f"workload: {gadget.name}, total budget {SWEEP_BUDGET} "
        f"trials, batch={BATCH}",
        *series_lines(("p", "adaptive trials", "uniform trials",
                       "adaptive ci+-", "uniform ci+-"), rows),
        "",
        f"allocation: {adaptive.allocation} batches "
        f"(uniform would be "
        f"{[per_point // BATCH] * len(p_values)})",
    ])
    # The widest uniform point got at least its uniform share from
    # the adaptive allocator, and its interval did not widen.
    assert adaptive.results[widest].trials >= per_point
    assert adaptive.intervals[widest].half_width <= \
        uniform[widest].interval().half_width * 1.05
