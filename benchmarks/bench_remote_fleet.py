"""E12 — remote worker fleet: wire-level claim-loop economics.

The distributed-robustness claim is that moving the *workers* to the
far side of the wire (HMAC-authenticated ``/v1/work/*`` claim →
heartbeat → progress → complete) changes failure modes, not answers
— and costs milliseconds of HTTP per job over an in-process worker.
The second leg prices the streaming ``watch()`` long-poll against
the polling ``wait_terminal`` it replaces: the stream should deliver
every journaled progress event in near-drain time with a handful of
long-poll requests instead of a request per poll tick.

Emits ``results/BENCH_remote_fleet.json`` with per-job drain
timings (local vs remote worker), verdict-table equality, and
watch-vs-poll request counts.
"""

import os
import shutil
import tempfile
import threading
import time

from repro.service import (
    SUCCEEDED,
    CertificationServer,
    CertificationService,
    RemoteWorker,
    ServiceClient,
    ServiceConfig,
    SweepSpec,
    merge_sweep,
    submit_sweep,
    wait_terminal,
)
from repro.service.jobs import JobSpec

from _harness import json_artifact, report, series_lines

#: Sweep size knobs; CI smoke runs shrink via the environment.
P_POINTS = int(os.environ.get("BENCH_FLEET_P_POINTS", "4"))
TRIALS = int(os.environ.get("BENCH_FLEET_TRIALS", "60"))
SEED = 20260808
SECRET = "bench-fleet-secret"


def _sweep() -> SweepSpec:
    grid = tuple(round(0.005 * (i + 1), 6) for i in range(P_POINTS))
    return SweepSpec.create(
        "monte_carlo", code="trivial", gadgets=("n", "recovery"),
        p_grid=grid, seed=SEED, trials=TRIALS,
        chunk_size=max(TRIALS // 3, 1))


def _drain_local(root: str, sweep: SweepSpec):
    service = CertificationService(
        os.path.join(root, "local"), config=ServiceConfig(workers=0))
    submit_sweep(service, sweep)
    start = time.time()
    service.worker("bench-local").run_until_drained(timeout=600.0)
    seconds = time.time() - start
    return seconds, merge_sweep(service, sweep)


def _drain_remote(root: str, sweep: SweepSpec):
    service = CertificationService(
        os.path.join(root, "remote"),
        config=ServiceConfig(workers=0, clock_skew_grace=0.5))
    submit_sweep(service, sweep)
    with CertificationServer(service,
                             worker_secret=SECRET) as server:
        worker = RemoteWorker(
            *server.address, secret=SECRET, name="bench-remote",
            scratch=os.path.join(root, "scratch"), timeout=10.0)
        start = time.time()
        worker.run_until_drained(timeout=600.0)
        seconds = time.time() - start
        requests = worker.client.stats.requests
    return seconds, merge_sweep(service, sweep), requests


def _stream_vs_poll(root: str):
    service = CertificationService(
        os.path.join(root, "watch"), config=ServiceConfig(workers=0))
    spec = JobSpec.create(
        "sequential_monte_carlo", code="trivial", gadget="n",
        p=0.02, p0=0.01, p1=0.2, seed=SEED, max_trials=400,
        batch_size=40)
    fingerprint = service.submit(spec)
    with CertificationServer(service) as server:
        watcher = ServiceClient(*server.address, timeout=10.0)
        poller = ServiceClient(*server.address, timeout=10.0)
        drainer = threading.Thread(
            target=service.worker("bench-watch").run_until_drained,
            kwargs={"timeout": 600.0}, daemon=True)
        # The polling client it replaces, racing the stream.
        polling = threading.Thread(
            target=wait_terminal, args=(poller, [fingerprint]),
            kwargs={"timeout": 600.0, "poll": 0.02}, daemon=True)
        drainer.start()
        polling.start()
        start = time.time()
        events = list(watcher.watch(fingerprint, timeout=600.0,
                                    wait=5.0))
        watch_seconds = time.time() - start
        drainer.join(timeout=600.0)
        polling.join(timeout=600.0)
    journaled = service.queue.progress(fingerprint)
    return (watch_seconds, len(events), len(journaled),
            watcher.stats.requests, poller.stats.requests)


def test_remote_fleet_overhead(benchmark):
    """Local vs over-the-wire drain; streaming watch vs polling."""
    sweep = _sweep()
    jobs = len(sweep.cells())
    root = tempfile.mkdtemp(prefix="bench-fleet-")

    def run_experiment():
        shutil.rmtree(root, ignore_errors=True)
        local_seconds, local_table = _drain_local(root, sweep)
        remote_seconds, remote_table, wire_requests = \
            _drain_remote(root, sweep)
        watch = _stream_vs_poll(root)
        return (local_seconds, local_table, remote_seconds,
                remote_table, wire_requests, watch)

    (local_seconds, local_table, remote_seconds, remote_table,
     wire_requests,
     (watch_seconds, streamed, journaled, watch_requests,
      poll_requests)) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    # The robustness claim in numbers: the wire changes cost, never
    # the verdicts.
    assert local_table["complete"] and remote_table["complete"]
    assert local_table["counts"] == {SUCCEEDED: jobs}
    assert local_table["cells"] == remote_table["cells"]
    assert streamed == journaled  # watch delivered every event once

    overhead_ms = (remote_seconds - local_seconds) / jobs * 1e3
    rows = [
        ("in-process worker drain", f"{local_seconds:.3f}",
         f"{local_seconds / jobs * 1e3:.1f}"),
        ("remote worker drain (HTTP)", f"{remote_seconds:.3f}",
         f"{remote_seconds / jobs * 1e3:.1f}"),
    ]
    report("E12 — remote worker fleet and streaming watch", [
        f"workload: {jobs}-cell sweep ({P_POINTS} p-points x 2 "
        f"gadgets), {TRIALS} trials/cell, trivial code",
        *series_lines(("pass", "seconds", "ms/job"), rows),
        f"wire overhead: {overhead_ms:+.1f} ms/job over "
        f"{wire_requests} authenticated requests; verdict tables "
        f"bit-identical",
        f"watch(): {streamed} events streamed in "
        f"{watch_seconds:.3f}s over {watch_requests} long-polls "
        f"(vs {poll_requests} wait_terminal polls)",
    ])
    json_artifact("BENCH_remote_fleet.json", {
        "cells": jobs,
        "p_points": P_POINTS,
        "trials": TRIALS,
        "seed": SEED,
        "local_drain_seconds": local_seconds,
        "remote_drain_seconds": remote_seconds,
        "wire_overhead_ms_per_job": overhead_ms,
        "wire_requests": wire_requests,
        "tables_identical":
            local_table["cells"] == remote_table["cells"],
        "watch_seconds": watch_seconds,
        "watch_events": streamed,
        "watch_requests": watch_requests,
        "poll_requests": poll_requests,
    })
    shutil.rmtree(root, ignore_errors=True)
