"""E11 — networked certification: HTTP overhead and merge economics.

The tentpole claim of the network layer is that it adds *failure
modes*, not cost: submitting through the stdlib HTTP front-end and
polling the journaled sweep merge should cost milliseconds per
request over driving the queue directly, and re-merging an
already-complete sweep is a constant-time journal read (the queue is
never consulted again).

Emits ``results/BENCH_service_net.json`` with per-request submission
latency (direct vs HTTP), drain timings and merge/re-merge timings.
"""

import os
import shutil
import tempfile
import time

from repro.service import (
    SUCCEEDED,
    CertificationServer,
    CertificationService,
    ServiceClient,
    ServiceConfig,
    SweepSpec,
    merge_sweep,
    submit_sweep,
)

from _harness import json_artifact, report, series_lines

#: Sweep size knobs; CI smoke runs shrink via the environment.
P_POINTS = int(os.environ.get("BENCH_NET_P_POINTS", "6"))
TRIALS = int(os.environ.get("BENCH_NET_TRIALS", "60"))
SEED = 20260808


def _sweep() -> SweepSpec:
    grid = tuple(round(0.005 * (i + 1), 6) for i in range(P_POINTS))
    return SweepSpec.create(
        "monte_carlo", code="trivial", gadgets=("n", "recovery"),
        p_grid=grid, seed=SEED, trials=TRIALS,
        chunk_size=max(TRIALS // 3, 1))


def test_http_submission_and_merge_overhead(benchmark):
    """Direct submits vs HTTP submits; merge vs journal re-merge."""
    sweep = _sweep()
    cells = sweep.cells()
    root = tempfile.mkdtemp(prefix="bench-net-")

    def run_experiment():
        shutil.rmtree(root, ignore_errors=True)

        # Baseline: the same cell specs straight into the queue.
        direct = CertificationService(
            os.path.join(root, "direct"),
            config=ServiceConfig(workers=0))
        start = time.time()
        for cell in cells:
            direct.submit(cell.spec)
        direct_submit = time.time() - start

        service = CertificationService(
            os.path.join(root, "net"),
            config=ServiceConfig(workers=0))
        with CertificationServer(service) as server:
            client = ServiceClient(*server.address, timeout=10.0)
            start = time.time()
            for cell in cells:
                client.submit(cell.spec)
            http_submit = time.time() - start
            submit_sweep(service, sweep)  # registers the merge store

            start = time.time()
            service.worker("bench").run_until_drained(timeout=600.0)
            drain_seconds = time.time() - start

            start = time.time()
            table = client.wait_sweep(sweep.fingerprint,
                                      timeout=60.0)
            merge_seconds = time.time() - start
            # Once complete, the merge is a pure journal read.
            start = time.time()
            again = merge_sweep(service, sweep)
            remerge_seconds = time.time() - start
        return (direct_submit, http_submit, drain_seconds,
                merge_seconds, remerge_seconds, table, again)

    (direct_submit, http_submit, drain_seconds, merge_seconds,
     remerge_seconds, table, again) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)

    jobs = len(cells)
    assert table["complete"] and table["counts"] == {SUCCEEDED: jobs}
    assert again == table  # the re-merge is the journaled table

    rows = [
        ("direct queue submit", f"{direct_submit:.3f}",
         f"{direct_submit / jobs * 1e3:.1f}"),
        ("HTTP submit", f"{http_submit:.3f}",
         f"{http_submit / jobs * 1e3:.1f}"),
        ("drain (in-process)", f"{drain_seconds:.3f}",
         f"{drain_seconds / jobs * 1e3:.1f}"),
        ("merge via HTTP", f"{merge_seconds:.3f}", "-"),
        ("re-merge (journal only)", f"{remerge_seconds:.3f}", "-"),
    ]
    report("E11 — networked submission and sweep-merge overhead", [
        f"workload: {jobs}-cell sweep ({P_POINTS} p-points x 2 "
        f"gadgets), {TRIALS} trials/cell, trivial code",
        *series_lines(("pass", "seconds", "ms/req"), rows),
        "",
        f"HTTP submission overhead: "
        f"{(http_submit - direct_submit) / jobs * 1e3:+.1f} "
        f"ms/request over the direct queue",
    ])
    json_artifact("BENCH_service_net.json", {
        "cells": jobs,
        "p_points": P_POINTS,
        "trials": TRIALS,
        "seed": SEED,
        "direct_submit_seconds": direct_submit,
        "http_submit_seconds": http_submit,
        "http_overhead_ms_per_request":
            (http_submit - direct_submit) / jobs * 1e3,
        "drain_seconds": drain_seconds,
        "merge_seconds": merge_seconds,
        "remerge_seconds": remerge_seconds,
    })
    shutil.rmtree(root, ignore_errors=True)
