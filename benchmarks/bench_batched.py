"""E8 — batched evaluation speedup on the threshold workloads.

The malignant-pair sweep behind the paper's Sec. 4.2 threshold
estimate is evaluation-dominated: every sampled pair is a distinct
two-fault pattern, so memoization barely helps and the serial path
pays full per-gate Python dispatch per sample.  This bench measures
the lane-stacked :mod:`repro.simulators.batched` path on exactly that
workload (plus a no-memoize Monte-Carlo sweep), asserts the >= 2x
acceptance bar at full scale, re-checks result equality while timing,
and emits ``results/BENCH_batched.json`` for CI.

Scale down with ``BENCH_BATCHED_SAMPLES`` for smoke runs (the speedup
assertion only applies at full scale).
"""

import os
import time

import pytest

from repro.analysis import n_gadget_evaluator
from repro.analysis.engine import run_malignant_pairs, run_monte_carlo
from repro.analysis.montecarlo import _default_locations
from repro.codes import SteaneCode
from repro.ft import build_n_gadget, sparse_coset_state
from repro.noise import NoiseModel

from _harness import engine_stats_lines, json_artifact, report

#: Full-scale workload; the >= 2x assertion applies at full scale only.
SAMPLES = int(os.environ.get("BENCH_BATCHED_SAMPLES", "3000"))
BATCH_SIZE = 64
_FULL_SCALE = SAMPLES >= 2000


def _steane_n():
    code = SteaneCode()
    gadget = build_n_gadget(code, variant="direct")
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    return gadget, initial, evaluator


def test_batched_speedup(benchmark):
    """Serial vs lane-stacked evaluation on the threshold sweep."""
    gadget, initial, evaluator = _steane_n()
    locations = _default_locations(gadget)
    noise = NoiseModel.uniform(0.002)
    mc_trials = SAMPLES * 2

    def run_experiment():
        timings = {}

        start = time.perf_counter()
        pairs_serial = run_malignant_pairs(
            gadget, initial, evaluator, samples=SAMPLES, seed=71,
            locations=locations)
        timings["pairs_serial"] = time.perf_counter() - start

        start = time.perf_counter()
        pairs_batched = run_malignant_pairs(
            gadget, initial, evaluator, samples=SAMPLES, seed=71,
            locations=locations, batch_size=BATCH_SIZE)
        timings["pairs_batched"] = time.perf_counter() - start

        start = time.perf_counter()
        mc_serial = run_monte_carlo(
            gadget, initial, evaluator, noise, trials=mc_trials,
            seed=72, locations=locations, memoize=False)
        timings["mc_serial"] = time.perf_counter() - start

        start = time.perf_counter()
        mc_batched = run_monte_carlo(
            gadget, initial, evaluator, noise, trials=mc_trials,
            seed=72, locations=locations, memoize=False,
            batch_size=BATCH_SIZE)
        timings["mc_batched"] = time.perf_counter() - start

        return timings, pairs_serial, pairs_batched, mc_serial, \
            mc_batched

    timings, pairs_serial, pairs_batched, mc_serial, mc_batched = \
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Speedups are meaningless if the results differ — check first.
    assert pairs_batched == pairs_serial
    assert mc_batched == mc_serial

    pairs_speedup = timings["pairs_serial"] / timings["pairs_batched"]
    mc_speedup = timings["mc_serial"] / timings["mc_batched"]
    stats = pairs_batched.engine_stats

    report("E8 — batched evaluation speedup (threshold workloads)", [
        f"workload: {gadget.name}, {len(locations)} locations, "
        f"batch_size={BATCH_SIZE}",
        f"malignant pairs ({SAMPLES} samples): "
        f"serial {timings['pairs_serial']:.2f}s, "
        f"batched {timings['pairs_batched']:.2f}s "
        f"-> {pairs_speedup:.2f}x",
        f"monte carlo, no memoize ({mc_trials} trials): "
        f"serial {timings['mc_serial']:.2f}s, "
        f"batched {timings['mc_batched']:.2f}s "
        f"-> {mc_speedup:.2f}x",
        f"equivalence: pairs malignant={pairs_serial.malignant}, "
        f"mc failures={mc_serial.failures} (both paths identical)",
        "",
        *engine_stats_lines(stats),
    ])

    path = json_artifact("BENCH_batched.json", {
        "workload": gadget.name,
        "batch_size": BATCH_SIZE,
        "samples": SAMPLES,
        "mc_trials": mc_trials,
        "timings_seconds": {k: round(v, 4)
                            for k, v in timings.items()},
        "pairs_speedup": round(pairs_speedup, 2),
        "mc_speedup": round(mc_speedup, 2),
        "results_identical": True,
        "batched_stats": {
            "batches": stats.batched_batches,
            "evaluations": stats.batched_evaluations,
            "fallbacks": stats.batched_fallbacks,
        },
        "full_scale": _FULL_SCALE,
    })
    assert os.path.exists(path)
    if _FULL_SCALE:
        assert pairs_speedup >= 2.0, (
            f"batched threshold sweep only {pairs_speedup:.2f}x"
        )
