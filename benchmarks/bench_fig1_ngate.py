"""E1 — Figure 1: the N gate (quantum-to-classical controlled-NOT).

Regenerates the paper's Fig. 1 evaluation:

* the logical truth table of Eq. 1 (checked exactly);
* "Only two errors ... shall yield an error in the classical bit":
  exhaustive single-fault certification (zero malignant single faults)
  plus a sampled two-fault malignancy estimate;
* the O(p^2) failure-rate curve predicted by the counting method,
  validated by Monte-Carlo fault injection, against the O(p) curve of
  an unprotected readout.

Run with ``pytest benchmarks/bench_fig1_ngate.py --benchmark-only -s``.
"""

import pytest

from repro.analysis import (
    exhaustive_single_faults_sparse,
    fit_power_law,
    gadget_monte_carlo,
    n_gadget_evaluator,
    sample_malignant_pairs,
)
from repro.analysis.montecarlo import _default_locations
from repro.codes import SteaneCode
from repro.ft import build_n_gadget, sparse_coset_state
from repro.noise import NoiseModel

from _harness import engine_stats_lines, report, series_lines

P_GRID = (2e-4, 5e-4, 1e-3, 2e-3)
MC_P = 2e-3
MC_TRIALS = 1200


@pytest.fixture(scope="module")
def context():
    code = SteaneCode()
    gadget = build_n_gadget(code, variant="direct")
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    return code, gadget, initial, evaluator


def test_fig1_report(benchmark, context):
    code, gadget, initial, evaluator = context
    locations = _default_locations(gadget)

    def run_experiment():
        failures = exhaustive_single_faults_sparse(
            gadget, initial, evaluator, locations=locations,
            workers=2,
        )
        pair_sample = sample_malignant_pairs(
            gadget, initial, evaluator, samples=500, seed=7,
            locations=locations, workers=2,
        )
        mc = gadget_monte_carlo(gadget, initial, evaluator,
                                NoiseModel.uniform(MC_P),
                                trials=MC_TRIALS, seed=11,
                                locations=locations,
                                workers=2, memoize=True)
        return failures, pair_sample, mc

    failures, pair_sample, mc = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    m_eff = pair_sample.estimated_malignant_pairs
    threshold = pair_sample.threshold_estimate
    rows = [(p, m_eff * p * p) for p in P_GRID]
    fit = fit_power_law(P_GRID, [r for _, r in rows])
    report("E1 / Fig. 1 — N gate (quantum-to-classical CNOT)", [
        f"gadget: {gadget.name} ({gadget.num_qubits} qubits, "
        f"{len(gadget.circuit)} ops)",
        f"fault locations: {len(locations)} "
        f"(paper's per-gate/input/delay counting)",
        "",
        f"exhaustive single-fault survey: {len(failures)} malignant "
        f"single faults (paper claim: 0)",
        f"sampled two-fault malignancy: {pair_sample.malignant}/"
        f"{pair_sample.samples} -> M_eff ~ {m_eff:.0f} pairs, "
        f"p_th ~ " + (f"{threshold:.1e}" if threshold else "-"),
        "",
        "predicted failure rate M_eff * p^2 (the counting method):",
        *series_lines(("p", "predicted"), rows),
        f"log-log slope of prediction: {fit.exponent:.2f} (paper: 2)",
        "",
        f"Monte-Carlo validation at p={MC_P}: "
        f"rate {mc.failure_rate:.2e} +- {mc.stderr:.1e} "
        f"(prediction {m_eff * MC_P**2:.2e}); "
        f"single-fault failures in MC: {mc.single_fault_failures}",
        "",
        *engine_stats_lines(mc.engine_stats),
    ])
    assert failures == []
    assert mc.single_fault_failures == 0
    assert abs(fit.exponent - 2.0) < 1e-6


def test_fig1_unprotected_baseline(benchmark):
    """Contrast: a bare (unencoded) bit copy degrades linearly."""
    from repro.circuits import Circuit, gates
    from repro.noise import monte_carlo
    from repro.simulators import StateVector

    circuit = Circuit(2)
    circuit.add_gate(gates.CNOT, 0, 1)
    clean = StateVector(2)
    ps = (3e-3, 1e-2, 3e-2)

    def evaluator(state):
        return state.fidelity(clean) > 0.99

    def run_experiment():
        rates = []
        for index, p in enumerate(ps):
            result = monte_carlo(circuit, NoiseModel.uniform(p),
                                 evaluator, trials=4000,
                                 seed=20 + index)
            rates.append(result.failure_rate)
        return rates

    rates = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    fit = fit_power_law(ps, rates)
    report("E1 baseline — unprotected bit copy", [
        *series_lines(("p", "failure rate"), list(zip(ps, rates))),
        f"log-log slope: {fit.exponent:.2f} (unprotected: ~1)",
    ])
    assert fit.exponent < 1.4


def test_benchmark_n_gadget_run(benchmark, context):
    code, gadget, initial, _ = context
    benchmark(lambda: gadget.run(
        {"quantum": sparse_coset_state(code, 0)}
    ))
