"""E10 — certification service: queue overhead and cache economics.

The robustness layer's economic claim: the durable queue + lease +
checkpoint machinery costs little over running the engine directly,
and the content-addressed verdict cache turns every repeated
submission into a constant-time lookup with **zero** simulator
evaluations — so a certification campaign can be re-driven (after a
crash, a re-run, a CI retry) for free.

Emits ``results/BENCH_service.json`` with the measured per-job
overhead and cache-hit timings (the CI bench job can upload it as an
artifact).
"""

import os
import shutil
import tempfile
import time

from repro.analysis import n_gadget_evaluator
from repro.analysis.engine import run_monte_carlo
from repro.codes import TrivialCode
from repro.ft import build_n_gadget, sparse_coset_state
from repro.noise import NoiseModel
from repro.service import (
    SUCCEEDED,
    CertificationService,
    JobSpec,
    ServiceConfig,
)

from _harness import json_artifact, report, series_lines

#: Jobs per measured pass; override with BENCH_SERVICE_JOBS for CI
#: smoke runs.
JOBS = int(os.environ.get("BENCH_SERVICE_JOBS", "12"))
TRIALS = int(os.environ.get("BENCH_SERVICE_TRIALS", "80"))
P = 0.02
SEED = 20260808


def _specs():
    return [
        JobSpec.create("monte_carlo", code="trivial", gadget="n",
                       p=P, trials=TRIALS, seed=SEED + index,
                       chunk_size=max(TRIALS // 4, 1))
        for index in range(JOBS)
    ]


def _direct_pass():
    """The same workload with no service: engine calls in a loop."""
    code = TrivialCode()
    gadget = build_n_gadget(code)
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    start = time.time()
    for index in range(JOBS):
        run_monte_carlo(gadget, initial, evaluator,
                        NoiseModel.uniform(P), trials=TRIALS,
                        seed=SEED + index,
                        chunk_size=max(TRIALS // 4, 1))
    return time.time() - start


def test_queue_overhead_and_cache_hits(benchmark):
    """Direct engine loop vs service first pass vs cached resubmit."""
    direct_seconds = _direct_pass()
    root = tempfile.mkdtemp(prefix="bench-service-")

    def run_experiment():
        shutil.rmtree(root, ignore_errors=True)
        service = CertificationService(
            root, config=ServiceConfig(workers=0))
        fingerprints = [service.submit(spec) for spec in _specs()]
        start = time.time()
        service.worker("bench").run_until_drained(timeout=600.0)
        first_seconds = time.time() - start
        for spec in _specs():
            service.submit(spec)
        start = time.time()
        service.worker("bench-2").run_until_drained(timeout=600.0)
        second_seconds = time.time() - start
        return service, fingerprints, first_seconds, second_seconds

    service, fingerprints, first_seconds, second_seconds = \
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    cache_hits = 0
    for fp in fingerprints:
        status = service.status(fp)
        assert status.state == SUCCEEDED
        if status.meta.get("cache_hit"):
            assert status.meta["evaluations"] == 0
            cache_hits += 1
    overhead = first_seconds - direct_seconds
    rows = [
        ("direct engine loop", f"{direct_seconds:.3f}", "-", "-"),
        ("service first pass", f"{first_seconds:.3f}",
         f"{overhead / JOBS * 1e3:+.1f}",
         f"{first_seconds / max(direct_seconds, 1e-9):.2f}x"),
        ("cached resubmission", f"{second_seconds:.3f}",
         f"{second_seconds / JOBS * 1e3:.1f}",
         f"{second_seconds / max(first_seconds, 1e-9):.2f}x"),
    ]
    report("E10 — service overhead and verdict-cache economics", [
        f"workload: {JOBS} monte_carlo jobs x {TRIALS} trials "
        f"(trivial code, p={P:g}), in-process worker",
        *series_lines(("pass", "seconds", "ms/job", "vs direct"),
                      rows),
        "",
        f"cache hits on resubmission: {cache_hits}/{JOBS} "
        f"(all with 0 simulator evaluations)",
    ])
    json_artifact("BENCH_service.json", {
        "jobs": JOBS,
        "trials": TRIALS,
        "p": P,
        "seed": SEED,
        "direct_seconds": direct_seconds,
        "service_first_pass_seconds": first_seconds,
        "cached_resubmission_seconds": second_seconds,
        "per_job_overhead_ms": overhead / JOBS * 1e3,
        "cache_hits": cache_hits,
    })
    shutil.rmtree(root, ignore_errors=True)
    assert cache_hits == JOBS
    # The cached pass must not re-run the workload: it has to be
    # decisively faster than the computing pass.
    assert second_seconds < first_seconds
