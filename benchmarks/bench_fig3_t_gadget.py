"""E3 — Figure 3: measurement-free fault-tolerant sigma_z^{1/4}.

Regenerates the Fig. 3 evaluation:

* exact logical action T_L (trivial and Steane codes), identical to
  the measurement-based protocol of [4] it replaces;
* zero malignant single faults (exhaustive, certified in the
  test-suite; sampled here for the report);
* the O(p^2) failure curve by the counting method with Monte-Carlo
  validation;
* resource comparison measurement-based vs measurement-free.
"""

import math

import pytest

from repro.analysis import (
    fit_power_law,
    gadget_monte_carlo,
    recovered_overlap_evaluator,
    sample_malignant_pairs,
)
from repro.analysis.montecarlo import _default_locations
from repro.codes import SteaneCode
from repro.ft import (
    build_t_gadget,
    expected_t_output,
    sparse_logical_state,
    t_gadget_inputs,
)
from repro.noise import NoiseModel

from _harness import engine_stats_lines, report, series_lines

P_GRID = (2e-4, 5e-4, 1e-3, 2e-3)
MC_P = 2e-3
MC_TRIALS = 900
ALPHA, BETA = 0.6, 0.8


@pytest.fixture(scope="module")
def context():
    code = SteaneCode()
    gadget = build_t_gadget(code)
    data = sparse_logical_state(code, {(0,): ALPHA, (1,): BETA})
    initial = gadget.initial_state(t_gadget_inputs(gadget, code, data))
    evaluator = recovered_overlap_evaluator(
        gadget, code, ["data"], expected_t_output(code, ALPHA, BETA)
    )
    return code, gadget, initial, evaluator


def test_fig3_report(benchmark, context):
    code, gadget, initial, evaluator = context
    locations = _default_locations(gadget)

    def run_experiment():
        clean = initial.copy()
        from repro.ft.gadget import apply_circuit_with_faults

        apply_circuit_with_faults(clean, gadget.circuit, [])
        overlap = gadget.block_overlap(
            clean, "data", expected_t_output(code, ALPHA, BETA)
        )
        pair_sample = sample_malignant_pairs(
            gadget, initial, evaluator, samples=350, seed=31,
            locations=locations, workers=2,
        )
        mc = gadget_monte_carlo(gadget, initial, evaluator,
                                NoiseModel.uniform(MC_P),
                                trials=MC_TRIALS, seed=32,
                                locations=locations,
                                workers=2, memoize=True)
        return overlap, pair_sample, mc

    overlap, pair_sample, mc = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    m_eff = pair_sample.estimated_malignant_pairs
    threshold = pair_sample.threshold_estimate
    rows = [(p, m_eff * p * p) for p in P_GRID]
    fit = fit_power_law(P_GRID, [r for _, r in rows])
    report("E3 / Fig. 3 — measurement-free sigma_z^{1/4}", [
        f"gadget: {gadget.name} ({gadget.num_qubits} qubits, "
        f"{len(gadget.circuit)} ops; {len(locations)} fault locations)",
        f"logical action: overlap(T_L|x>) = {overlap:.12f}",
        "",
        f"sampled two-fault malignancy: {pair_sample.malignant}/"
        f"{pair_sample.samples} -> M_eff ~ {m_eff:.0f}, "
        f"p_th ~ " + (f"{threshold:.1e}" if threshold else "-"),
        "predicted failure rate M_eff * p^2:",
        *series_lines(("p", "predicted"), rows),
        f"log-log slope: {fit.exponent:.2f} (paper: 2)",
        "",
        f"Monte-Carlo at p={MC_P}: rate {mc.failure_rate:.2e} "
        f"+- {mc.stderr:.1e} (prediction {m_eff * MC_P**2:.2e}); "
        f"single-fault failures: {mc.single_fault_failures}",
        "",
        "exhaustive single-fault certification (0 failures over every",
        "input/gate/delay location) runs in the test-suite:",
        "tests/ft/test_t_gadget.py::TestFaultTolerance",
        "",
        *engine_stats_lines(mc.engine_stats),
    ])
    assert overlap > 1 - 1e-9
    assert mc.single_fault_failures == 0


def test_fig3_resource_comparison(benchmark):
    """Measurement-free vs measurement-based resource table."""
    code = SteaneCode()

    def run_experiment():
        gadget = build_t_gadget(code)
        counts = gadget.circuit.count_gates()
        # The measured protocol: transversal CNOT (7 gates) + 7
        # measurements + classical decode + conditioned logical S
        # (7 gates); no syndrome machinery, but needs a classical
        # co-processor and per-computer readout.
        measured_gates = 7 + 7
        return gadget, counts, measured_gates

    gadget, counts, measured_gates = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    total = sum(counts.values())
    report("E3 — resource comparison (Steane code)", [
        f"measurement-free gadget: {total} gates on "
        f"{gadget.num_qubits} qubits",
        f"  breakdown: {dict(sorted(counts.items()))}",
        f"measurement-based [4]: ~{measured_gates} gates + 7 "
        f"single-computer measurements + classical decoder",
        "",
        "the overhead buys ensemble-compatibility: the gadget is a",
        "legal bulk-NMR program, the baseline is impossible there",
    ])
    assert gadget.circuit.is_ensemble_safe()


def test_benchmark_t_gadget_run(benchmark, context):
    code, gadget, initial, _ = context

    def run():
        state = initial.copy()
        from repro.ft.gadget import apply_circuit_with_faults

        apply_circuit_with_faults(state, gadget.circuit, [])
        return state

    benchmark(run)
