"""E4 — Figure 4: measurement-free fault-tolerant Toffoli.

Regenerates the Fig. 4 evaluation:

* exact logical action on all 8 basis states and superpositions at
  trivial-code scale (the full circuit logic, including the CZ_L /
  Z_L phase corrections and the classical AND block);
* agreement with Shor's measurement-based protocol;
* at Steane scale: the paper's counting evaluation — location counts
  and sampled two-fault malignancy on the 154-qubit gadget (the
  full exact state-vector run lives in the veryslow test tier and
  was verified to overlap 1.0).
"""

import itertools

import pytest

from repro.analysis import recovered_overlap_evaluator, \
    sample_malignant_pairs
from repro.analysis.montecarlo import _default_locations
from repro.codes import SteaneCode, TrivialCode
from repro.ft import (
    build_toffoli_gadget,
    expected_toffoli_output,
    run_toffoli_gadget,
    sparse_coset_state,
)
from repro.ft.toffoli_gadget import toffoli_initial_state, toffoli_inputs

from _harness import report, series_lines


def test_fig4_trivial_exact(benchmark):
    trivial = TrivialCode()
    gadget = build_toffoli_gadget(trivial)
    blocks = (gadget.qubits("and_a") + gadget.qubits("and_b")
              + gadget.qubits("and_c"))

    def run_experiment():
        rows = []
        for x, y, z in itertools.product((0, 1), repeat=3):
            out = run_toffoli_gadget(
                gadget, trivial,
                sparse_coset_state(trivial, x),
                sparse_coset_state(trivial, y),
                sparse_coset_state(trivial, z),
            )
            expected = expected_toffoli_output(trivial,
                                               {(x, y, z): 1.0})
            rows.append((f"|{x}{y}{z}>",
                         f"|{x}{y}{z ^ (x & y)}>",
                         out.block_overlap(blocks, expected)))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E4 / Fig. 4 — Toffoli truth table (trivial code, exact)", [
        *series_lines(("input", "expected", "overlap"), rows),
    ])
    assert all(abs(row[2] - 1.0) < 1e-9 for row in rows)


def test_fig4_steane_counting(benchmark):
    """The paper's counting evaluation at full Steane scale, plus an
    exact two-fault malignancy sample at trivial scale (each exact
    154-qubit run costs minutes, so the Steane-scale pair statistics
    come from the exact trivial-scale circuit structure and the
    per-sub-gadget Steane sweeps reported in E1/E3/E5)."""
    steane = SteaneCode()
    trivial = TrivialCode()
    gadget = build_toffoli_gadget(steane)
    small = build_toffoli_gadget(trivial)

    def run_experiment():
        locations = _default_locations(gadget)
        from repro.noise import count_locations

        counts = count_locations(
            gadget.circuit,
            input_qubits=[q for loc in locations
                          if loc.kind == "input" for q in loc.qubits],
        )
        expected = expected_toffoli_output(trivial, {(1, 1, 0): 1.0})
        evaluator = recovered_overlap_evaluator(
            small, trivial, ["and_a", "and_b", "and_c"], expected
        )
        initial = toffoli_initial_state(
            small, trivial,
            toffoli_inputs(small, trivial,
                           sparse_coset_state(trivial, 1),
                           sparse_coset_state(trivial, 1),
                           sparse_coset_state(trivial, 0)),
        )
        sample = sample_malignant_pairs(small, initial, evaluator,
                                        samples=400, seed=41,
                                        workers=2)
        return counts, sample

    counts, sample = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)
    report("E4 / Fig. 4 — counting evaluation", [
        f"Steane gadget: 154 qubits, {counts['total']} fault "
        f"locations (gate {counts['gate']}, input {counts['input']}, "
        f"delay {counts['delay']})",
        "",
        f"trivial-scale exact two-fault malignancy (no code "
        f"protection, k=0): {sample.malignant}/{sample.samples} "
        f"random pairs",
        "",
        "exact 154-qubit state-vector verification (overlap 1.0 on",
        "basis inputs, ~9 min) runs in the veryslow tier:",
        "RUN_VERYSLOW=1 pytest tests/ft/test_toffoli_gadget.py",
    ])
    assert counts["total"] > 1500


def test_fig4_measured_baseline_agreement(benchmark):
    from repro.ft.baselines import MeasuredToffoli

    trivial = TrivialCode()

    def run_experiment():
        rows = []
        baseline = MeasuredToffoli(trivial, seed=5)
        for x, y, z in itertools.product((0, 1), repeat=3):
            result = baseline.run(
                sparse_coset_state(trivial, x),
                sparse_coset_state(trivial, y),
                sparse_coset_state(trivial, z),
            )
            expected = expected_toffoli_output(trivial,
                                               {(x, y, z): 1.0})
            rows.append((f"|{x}{y}{z}>", result.outcomes,
                         result.state.block_overlap([0, 1, 2],
                                                    expected)))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E4 — measurement-based baseline (Shor) agreement", [
        *series_lines(("input", "outcomes (m1,m2,m3)", "overlap"),
                      rows),
        "identical logical action; the baseline needs 3 logical",
        "measurements + classical control (impossible on ensembles)",
    ])
    assert all(abs(row[2] - 1.0) < 1e-9 for row in rows)
