"""E6 — Section 2: ensemble algorithms and strategies.

Regenerates the paper's Sec. 2 claims as quantitative tables:

* RNG: a single computer yields Bernoulli bits; the ensemble yields a
  deterministic expectation (variance = shot noise, not Bernoulli);
* teleportation: standard (rejected / useless signal) vs
  fully-quantum (works, even with fully dephased controls);
* multi-solution Grover: naive readout fails, the sort strategy reads
  the full solution list;
* Shor-type order finding: naive readout fails, randomizing bad
  results recovers the order.
"""

import numpy as np
import pytest

from repro.algorithms import (
    ensemble_rng_attempt,
    fully_quantum_output_fidelity,
    naive_ensemble_signal,
    run_ensemble_grover,
    run_ensemble_order_finding,
    run_standard_on_single_computer,
    single_computer_rng,
    standard_teleportation_circuit,
)
from repro.algorithms.rng import signal_variance_over_runs
from repro.ensemble import EnsembleMachine
from repro.exceptions import EnsembleViolationError

from _harness import report, series_lines


def test_sec2_rng(benchmark):
    def run_experiment():
        bits = single_computer_rng(0.5, 2000, seed=0)
        single_variance = float(np.var(bits)) * 4  # rescale to <Z>
        ensemble_variance = signal_variance_over_runs(
            0.5, machine_seed_base=100, ensemble_size=10**6, runs=50
        )
        machine = EnsembleMachine(1, ensemble_size=10**6, seed=1)
        outcome = ensemble_rng_attempt(0.3, machine)
        return single_variance, ensemble_variance, outcome

    single_variance, ensemble_variance, outcome = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    report("E6 / Sec. 2 — random number generation", [
        f"single computer, p=0.5: run-to-run <Z> variance "
        f"{single_variance:.3f} (Bernoulli: 1.0)",
        f"ensemble machine, p=0.5: run-to-run signal variance "
        f"{ensemble_variance:.2e} (shot-noise floor 1/N = 1e-06)",
        f"ensemble readout of p=0.3 state: signal "
        f"{outcome.observed_signal:+.4f} -> reveals p = "
        f"{outcome.recovered_p:.4f}, never a random bit",
    ])
    assert ensemble_variance < 1e-4
    assert abs(outcome.recovered_p - 0.3) < 0.01


def test_sec2_teleportation(benchmark):
    def run_experiment():
        fidelity, _ = run_standard_on_single_computer(0.6, 0.8, seed=0)
        machine = EnsembleMachine(3, ensemble_size=10**6, seed=2)
        rejected = False
        try:
            machine.run(standard_teleportation_circuit())
        except EnsembleViolationError:
            rejected = True
        collapse = naive_ensemble_signal(0.6, 0.8, machine,
                                         sample_computers=512)
        fq = fully_quantum_output_fidelity(0.6, 0.8,
                                           dephase_controls=True)
        return fidelity, rejected, collapse.observed(2), fq

    fidelity, rejected, signal, fq = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    report("E6 / Sec. 2 — teleportation", [
        f"standard protocol on ONE computer: fidelity {fidelity:.6f}",
        f"standard protocol on the ensemble: rejected = {rejected} "
        "(Bell outcomes are per-computer)",
        f"internal-collapse signal on the output qubit: "
        f"{signal:+.3f} (input <Z> = -0.28; nothing survives)",
        f"fully-quantum teleportation, controls fully dephased: "
        f"fidelity {fq:.6f} (ensemble-safe, matches [8]/[17])",
    ])
    assert rejected and fq > 1 - 1e-9 and abs(signal) < 0.15


def test_sec2_grover(benchmark):
    def run_experiment():
        multi = run_ensemble_grover(5, [7, 19, 28],
                                    num_computers=8192, seed=13)
        single = run_ensemble_grover(4, [9], num_computers=8192,
                                     seed=14)
        return multi, single

    multi, single = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    report("E6 / Sec. 2 — multi-solution Grover", [
        "single solution {9}:",
        f"  naive readout: {single.naive_decoded} "
        f"(succeeded = {single.naive_succeeded})",
        "three solutions {7, 19, 28}:",
        f"  naive readout: {multi.naive_decoded} "
        f"(succeeded = {multi.naive_succeeded})",
        f"  sort strategy: agreement {multi.sorted_agreement:.3f}, "
        f"readout {multi.sorted_readout} "
        f"(succeeded = {multi.sorted_succeeded})",
    ])
    assert single.naive_succeeded
    assert not multi.naive_succeeded
    assert multi.sorted_succeeded


def test_sec2_algorithmic_cooling(benchmark):
    """The reset substitute the paper cites ([20], [7])."""
    from repro.ensemble.cooling import (
        ClosedSystemCooler,
        HeatBathCooler,
        compression_density_matrix_bias,
        majority_bias,
        shannon_bound_qubits,
    )

    def run_experiment():
        exact = compression_density_matrix_bias([0.2, 0.2, 0.2])
        cooler = ClosedSystemCooler(0.05)
        rows = []
        for rounds in (0, 2, 4, 6, 8):
            rep = cooler.cool(rounds)
            rows.append((rounds, rep.final_bias, rep.qubits_consumed,
                         shannon_bound_qubits(0.05, rep.final_bias)))
        heat_bath = [(bath, HeatBathCooler(bath).fixed_point())
                     for bath in (0.1, 0.3, 0.5)]
        return exact, rows, heat_bath

    exact, rows, heat_bath = benchmark.pedantic(run_experiment,
                                                rounds=1, iterations=1)
    report("E6 / Sec. 2 — algorithmic cooling (reset substitute)", [
        f"3->1 compression circuit (density matrix): bias 0.2 -> "
        f"{exact:.6f} (theory {majority_bias(0.2):.6f})",
        "",
        "closed-system (Schulman-Vazirani) cooling from 5% bias:",
        *series_lines(("rounds", "bias", "raw qubits",
                       "Shannon bound"), rows),
        "",
        "heat-bath ladder fixed points:",
        *series_lines(("bath bias", "fixed point"), heat_bath),
    ])
    assert abs(exact - majority_bias(0.2)) < 1e-10
    assert all(fixed > bath for bath, fixed in heat_bath)


def test_sec2_order_finding(benchmark):
    def run_experiment():
        rows = []
        for a, seed in ((7, 17), (4, 23), (2, 29)):
            rep = run_ensemble_order_finding(a, 15, counting_bits=6,
                                             num_computers=8192,
                                             seed=seed)
            rows.append((a, rep.true_order,
                         f"{rep.good_fraction:.2f}",
                         rep.naive_succeeded,
                         rep.recovered_order,
                         rep.randomized_succeeded))
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report("E6 / Sec. 2 — order finding (Shor), N = 15", [
        *series_lines(("a", "true r", "good frac", "naive ok",
                       "randomized r", "randomized ok"), rows),
        "",
        "naive = read the candidate register directly (bad",
        "candidates interfere); randomized = paper's strategy, bad",
        "computers overwrite their output with random data",
    ])
    assert all(row[5] for row in rows)
    assert not any(row[3] for row in rows)
