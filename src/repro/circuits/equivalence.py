"""Equality of states, operators and circuits up to global phase.

Every simulator in :mod:`repro.simulators` represents the same physics
in a different picture — amplitudes, density matrices, sparse terms,
Heisenberg-frame Paulis — and each picture is free to differ from the
others by a global phase (and nothing else).  The differential oracle
in :mod:`repro.verify` needs one canonical vocabulary for "these two
representations agree", which this module provides:

* :func:`global_phase_between` — the phase factor relating two vectors
  or matrices, or ``None`` when no single phase relates them;
* :func:`vectors_equal_up_to_phase` / :func:`operators_equal_up_to_phase`
  — boolean forms of the same question;
* :func:`state_discrepancy` / :func:`operator_discrepancy` — graded
  forms (0.0 = identical up to phase), used to rank divergences;
* :func:`embed_operator` — a k-qubit operator embedded into an n-qubit
  register (the single shared implementation the verify backends use);
* :func:`circuit_unitary` — the dense unitary of a measurement-free
  circuit, the ground truth small circuits are compared against.

The helpers are deliberately representation-agnostic (plain numpy in
and out) so they can compare *across* simulator types.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit, GateOp
from repro.exceptions import CircuitError

_ATOL = 1e-8

#: Registers above this size make dense 2^n x 2^n unitaries impractical.
MAX_DENSE_UNITARY_QUBITS = 12


def global_phase_between(a: np.ndarray, b: np.ndarray,
                         atol: float = _ATOL) -> Optional[complex]:
    """The unit phase factor c with ``a == c * b``, or ``None``.

    Works for vectors and matrices alike.  The phase is fixed against
    the largest entry of ``b``, so numerically negligible entries never
    pollute the estimate.
    """
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape:
        return None
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    pivot = b[index]
    if abs(pivot) < atol:
        # b is (numerically) zero: equal iff a is too, phase is trivial.
        return 1.0 + 0.0j if np.allclose(a, b, atol=atol) else None
    phase = a[index] / pivot
    if abs(abs(phase) - 1.0) > 10 * atol:
        return None
    if not np.allclose(a, phase * b, atol=10 * atol):
        return None
    return complex(phase)


def vectors_equal_up_to_phase(a: np.ndarray, b: np.ndarray,
                              atol: float = _ATOL) -> bool:
    """Whether two state vectors describe the same physical state."""
    return global_phase_between(a, b, atol) is not None


def operators_equal_up_to_phase(a: np.ndarray, b: np.ndarray,
                                atol: float = _ATOL) -> bool:
    """Whether two operators are equal up to one global phase."""
    return global_phase_between(a, b, atol) is not None


def state_discrepancy(a: np.ndarray, b: np.ndarray) -> float:
    """1 - |<a|b>|^2 for normalised vectors: 0.0 iff equal up to phase.

    This is the infidelity, the graded divergence measure the oracle
    reports so a real backend bug (discrepancy ~ 1) is distinguishable
    from numerical noise (discrepancy ~ 1e-15).
    """
    a = np.asarray(a, dtype=np.complex128).reshape(-1)
    b = np.asarray(b, dtype=np.complex128).reshape(-1)
    if a.shape != b.shape:
        return 1.0
    return max(0.0, 1.0 - abs(np.vdot(a, b)) ** 2)


def mixed_state_discrepancy(rho: np.ndarray, vector: np.ndarray) -> float:
    """1 - <psi| rho |psi>: 0.0 iff the mixed state is the pure one."""
    vector = np.asarray(vector, dtype=np.complex128).reshape(-1)
    rho = np.asarray(rho, dtype=np.complex128)
    if rho.shape != (vector.shape[0], vector.shape[0]):
        return 1.0
    return max(0.0, 1.0 - float(np.real(vector.conj() @ rho @ vector)))


def operator_discrepancy(a: np.ndarray, b: np.ndarray) -> float:
    """Max-entry deviation after optimal global-phase alignment."""
    a = np.asarray(a, dtype=np.complex128)
    b = np.asarray(b, dtype=np.complex128)
    if a.shape != b.shape:
        return 1.0
    overlap = np.vdot(b.reshape(-1), a.reshape(-1))
    phase = overlap / abs(overlap) if abs(overlap) > 1e-12 else 1.0
    return float(np.max(np.abs(a - phase * b)))


def embed_operator(matrix: np.ndarray, qubits: Sequence[int],
                   num_qubits: int) -> np.ndarray:
    """Embed a k-qubit operator on ``qubits`` into the full register.

    Qubit 0 is the most significant index bit, matching every
    simulator in :mod:`repro.simulators`.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise CircuitError(
            f"operator shape {matrix.shape} does not match {k} qubits"
        )
    for qubit in qubits:
        if not 0 <= qubit < num_qubits:
            raise CircuitError(f"qubit {qubit} out of range")
    if len(set(qubits)) != k:
        raise CircuitError(f"duplicate qubits in {qubits}")
    gate_tensor = matrix.reshape((2,) * (2 * k))
    identity = np.eye(2**num_qubits).reshape((2,) * (2 * num_qubits))
    op = np.tensordot(gate_tensor, identity,
                      axes=(list(range(k, 2 * k)), list(qubits)))
    order = list(qubits) + [q for q in range(num_qubits)
                            if q not in qubits]
    inverse = list(np.argsort(order))
    perm = inverse + list(range(num_qubits, 2 * num_qubits))
    return np.transpose(op, perm).reshape(2**num_qubits, 2**num_qubits)


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """The dense unitary implemented by a measurement-free circuit."""
    if circuit.has_measurements or circuit.has_classical_control:
        raise CircuitError(
            "circuit_unitary requires a purely unitary circuit"
        )
    if circuit.num_qubits > MAX_DENSE_UNITARY_QUBITS:
        raise CircuitError(
            f"refusing a dense unitary on {circuit.num_qubits} qubits "
            f"(limit {MAX_DENSE_UNITARY_QUBITS})"
        )
    unitary = np.eye(2**circuit.num_qubits, dtype=np.complex128)
    for op in circuit.operations:
        assert isinstance(op, GateOp)
        unitary = embed_operator(op.gate.matrix, op.qubits,
                                 circuit.num_qubits) @ unitary
    return unitary


def circuits_equal_up_to_phase(a: Circuit, b: Circuit,
                               atol: float = _ATOL) -> bool:
    """Whether two circuits implement the same unitary up to phase."""
    if a.num_qubits != b.num_qubits:
        return False
    return operators_equal_up_to_phase(circuit_unitary(a),
                                       circuit_unitary(b), atol)
