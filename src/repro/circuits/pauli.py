"""Pauli-string algebra.

The paper's fault-tolerance arguments are all phrased in terms of how
bit errors (X) and phase errors (Z) propagate through circuits: a CNOT
copies X from control to target and Z from target to control, which is
precisely why a *classical* ancilla acting as control can never inject
phase errors into the quantum data.  This module provides the
:class:`PauliString` type those arguments are computed with.

A Pauli string on n qubits is stored in the symplectic representation:
an X bit-vector, a Z bit-vector and a phase exponent k with overall
phase i^k.  A qubit with both its X and Z bit set carries Y (up to the
tracked phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import CircuitError

_SINGLE = {
    (0, 0): "I",
    (1, 0): "X",
    (0, 1): "Z",
    (1, 1): "Y",
}
_SINGLE_INV = {name: bits for bits, name in _SINGLE.items()}
# Phase of writing (x,z) as i^k X^x Z^z: Y = i X Z, so (1,1) carries i.
_CANONICAL_PHASE = {(0, 0): 0, (1, 0): 0, (0, 1): 0, (1, 1): 1}


@dataclass(frozen=True)
class PauliString:
    """An n-qubit Pauli operator i^phase * X^x0 Z^z0 (x) ... .

    Attributes:
        num_qubits: the number of qubits the string acts on.
        x_bits: tuple of 0/1 flags; bit q set means an X factor on q.
        z_bits: tuple of 0/1 flags; bit q set means a Z factor on q.
        phase: integer mod 4, overall phase i^phase.
    """

    num_qubits: int
    x_bits: Tuple[int, ...]
    z_bits: Tuple[int, ...]
    phase: int = 0

    def __post_init__(self) -> None:
        if len(self.x_bits) != self.num_qubits or len(self.z_bits) != self.num_qubits:
            raise CircuitError("PauliString bit vectors must match num_qubits")
        object.__setattr__(self, "phase", self.phase % 4)

    # -- constructors ---------------------------------------------------

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        zeros = (0,) * num_qubits
        return cls(num_qubits, zeros, zeros, 0)

    @classmethod
    def from_label(cls, label: str, phase: int = 0) -> "PauliString":
        """Build from a label such as ``"XIZY"`` (qubit 0 leftmost)."""
        x_bits: List[int] = []
        z_bits: List[int] = []
        total_phase = phase
        for char in label:
            try:
                x, z = _SINGLE_INV[char.upper()]
            except KeyError:
                raise CircuitError(f"invalid Pauli label character {char!r}")
            x_bits.append(x)
            z_bits.append(z)
            total_phase += _CANONICAL_PHASE[(x, z)]
        return cls(len(label), tuple(x_bits), tuple(z_bits), total_phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str,
               phase: int = 0) -> "PauliString":
        """A single-qubit Pauli ``kind`` in {'X','Y','Z'} on ``qubit``."""
        if not 0 <= qubit < num_qubits:
            raise CircuitError(f"qubit {qubit} out of range")
        x, z = _SINGLE_INV[kind.upper()]
        x_bits = [0] * num_qubits
        z_bits = [0] * num_qubits
        x_bits[qubit] = x
        z_bits[qubit] = z
        return cls(num_qubits, tuple(x_bits), tuple(z_bits),
                   phase + _CANONICAL_PHASE[(x, z)])

    # -- queries ---------------------------------------------------------

    def kind_at(self, qubit: int) -> str:
        """The Pauli letter ('I','X','Y','Z') acting on ``qubit``."""
        return _SINGLE[(self.x_bits[qubit], self.z_bits[qubit])]

    @property
    def weight(self) -> int:
        """Number of qubits with a non-identity factor."""
        return sum(
            1 for x, z in zip(self.x_bits, self.z_bits) if x or z
        )

    @property
    def x_weight(self) -> int:
        """Number of qubits with an X or Y factor (bit-error weight)."""
        return sum(self.x_bits)

    @property
    def z_weight(self) -> int:
        """Number of qubits with a Z or Y factor (phase-error weight)."""
        return sum(self.z_bits)

    @property
    def is_identity(self) -> bool:
        """True when this is the identity up to phase."""
        return self.weight == 0

    def support(self) -> Tuple[int, ...]:
        """Qubits carrying a non-identity factor."""
        return tuple(
            q for q in range(self.num_qubits)
            if self.x_bits[q] or self.z_bits[q]
        )

    def label(self) -> str:
        """Letter representation without the phase, qubit 0 leftmost."""
        return "".join(self.kind_at(q) for q in range(self.num_qubits))

    def commutes_with(self, other: "PauliString") -> bool:
        """Whether the two operators commute."""
        if self.num_qubits != other.num_qubits:
            raise CircuitError("commutes_with: size mismatch")
        anti = 0
        for q in range(self.num_qubits):
            anti += self.x_bits[q] * other.z_bits[q]
            anti += self.z_bits[q] * other.x_bits[q]
        return anti % 2 == 0

    # -- algebra ----------------------------------------------------------

    def __mul__(self, other: "PauliString") -> "PauliString":
        """Operator product self @ other with exact phase tracking."""
        if self.num_qubits != other.num_qubits:
            raise CircuitError("product: size mismatch")
        x_bits: List[int] = []
        z_bits: List[int] = []
        phase = self.phase + other.phase
        for q in range(self.num_qubits):
            # Reorder X^a Z^b X^c Z^d -> X^(a+c) Z^(b+d): moving X^c
            # past Z^b contributes (-1)^(b*c) = i^(2bc).
            phase += 2 * self.z_bits[q] * other.x_bits[q]
            x_bits.append(self.x_bits[q] ^ other.x_bits[q])
            z_bits.append(self.z_bits[q] ^ other.z_bits[q])
        return PauliString(self.num_qubits, tuple(x_bits), tuple(z_bits),
                           phase)

    def restricted(self, qubits: Sequence[int]) -> "PauliString":
        """The sub-string acting on the listed qubits, in that order."""
        return PauliString(
            len(qubits),
            tuple(self.x_bits[q] for q in qubits),
            tuple(self.z_bits[q] for q in qubits),
            self.phase,
        )

    def embedded(self, num_qubits: int,
                 qubits: Sequence[int]) -> "PauliString":
        """Embed into a larger register: factor i goes to qubits[i]."""
        if len(qubits) != self.num_qubits:
            raise CircuitError("embedded: qubit list size mismatch")
        x_bits = [0] * num_qubits
        z_bits = [0] * num_qubits
        for local, target in enumerate(qubits):
            x_bits[target] = self.x_bits[local]
            z_bits[target] = self.z_bits[local]
        return PauliString(num_qubits, tuple(x_bits), tuple(z_bits),
                           self.phase)

    def with_phase(self, phase: int) -> "PauliString":
        return PauliString(self.num_qubits, self.x_bits, self.z_bits, phase)

    def strip_phase(self) -> "PauliString":
        """The same operator with phase reset to the canonical i^k of
        its X/Z decomposition (used when only the error pattern, not
        its sign, matters)."""
        phase = sum(
            _CANONICAL_PHASE[(x, z)]
            for x, z in zip(self.x_bits, self.z_bits)
        )
        return PauliString(self.num_qubits, self.x_bits, self.z_bits, phase)

    def matrix(self):
        """Dense matrix (for small n only); imports numpy lazily."""
        import numpy as np

        from repro.circuits import gates

        result = np.array([[1.0 + 0j]])
        for q in range(self.num_qubits):
            result = np.kron(result, gates.PAULI_GATES[self.kind_at(q)].matrix)
        return (1j**self.phase_offset()) * result

    def phase_offset(self) -> int:
        """Phase exponent relative to the tensor product of Y/X/Z
        letter matrices (the letters already include Y's i)."""
        canonical = sum(
            _CANONICAL_PHASE[(x, z)]
            for x, z in zip(self.x_bits, self.z_bits)
        )
        return (self.phase - canonical) % 4

    def __repr__(self) -> str:
        prefix = {0: "+", 1: "+i", 2: "-", 3: "-i"}[self.phase_offset()]
        return f"{prefix}{self.label()}"


def iter_single_qubit_paulis(num_qubits: int) -> Iterator[PauliString]:
    """Yield every weight-1 Pauli on a register (X, Y, Z per qubit)."""
    for qubit in range(num_qubits):
        for kind in "XYZ":
            yield PauliString.single(num_qubits, qubit, kind)


def pauli_basis(num_qubits: int) -> Iterator[PauliString]:
    """Yield all 4**n Pauli strings (identity first)."""
    letters = "IXZY"
    total = 4**num_qubits
    for index in range(total):
        label = []
        value = index
        for _ in range(num_qubits):
            label.append(letters[value % 4])
            value //= 4
        yield PauliString.from_label("".join(label))
