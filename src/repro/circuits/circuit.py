"""Circuit intermediate representation.

A :class:`Circuit` is an ordered list of operations over an indexed
qubit register and an indexed classical-bit register.  Three operation
kinds cover everything in the paper:

* :class:`GateOp` — a unitary gate on specific qubits, optionally
  conditioned on classical bits.  Classically conditioned gates are the
  "measure then apply U_j" pattern of the *standard* fault-tolerant
  protocols; the paper's measurement-free constructions never need
  them, but the baselines in :mod:`repro.ft.baselines` do.
* :class:`MeasureOp` — a computational-basis measurement of one qubit
  into one classical bit.  This is the operation that is *impossible*
  on an ensemble quantum computer (only expectation values over the
  ensemble are observable), and the
  :class:`~repro.ensemble.machine.EnsembleMachine` rejects it.
* :class:`ResetOp` — reset a qubit to |0>.  Equivalent to a measurement
  followed by a conditional flip, hence equally forbidden on ensemble
  machines (the paper cites algorithmic cooling as the ensemble-world
  substitute).

Circuits support functional composition, inversion, qubit remapping
(used to embed gadget sub-circuits into larger fault-tolerant
circuits) and ASAP scheduling into *moments*.  Moments matter because
the paper's error counting assigns a fault location to every gate,
every input bit **and every delay line** — an idle qubit in a moment is
a delay-line location.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


@dataclass(frozen=True)
class ClassicalCondition:
    """Condition a gate on classical bits holding a given value.

    The gate fires iff the bits listed in ``bits`` (little-endian: the
    first entry is the least-significant bit) currently spell ``value``.
    """

    bits: Tuple[int, ...]
    value: int

    def __post_init__(self) -> None:
        if not self.bits:
            raise CircuitError("classical condition needs at least one bit")
        if not 0 <= self.value < 2 ** len(self.bits):
            raise CircuitError(
                f"condition value {self.value} out of range for "
                f"{len(self.bits)} bits"
            )

    def is_satisfied(self, classical_bits: Sequence[int]) -> bool:
        """Evaluate the condition against a classical register."""
        value = 0
        for position, bit_index in enumerate(self.bits):
            value |= (classical_bits[bit_index] & 1) << position
        return value == self.value


@dataclass(frozen=True)
class GateOp:
    """A unitary gate applied to an ordered tuple of qubits."""

    gate: Gate
    qubits: Tuple[int, ...]
    condition: Optional[ClassicalCondition] = None
    tag: str = ""

    def __post_init__(self) -> None:
        if len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name} expects {self.gate.num_qubits} "
                f"qubits, got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"gate {self.gate.name} applied to duplicate qubits "
                f"{self.qubits}"
            )

    @property
    def touched_qubits(self) -> Tuple[int, ...]:
        return self.qubits

    def remapped(self, qubit_map: Dict[int, int],
                 clbit_map: Optional[Dict[int, int]] = None) -> "GateOp":
        condition = self.condition
        if condition is not None and clbit_map is not None:
            condition = ClassicalCondition(
                tuple(clbit_map[b] for b in condition.bits), condition.value
            )
        return replace(
            self,
            qubits=tuple(qubit_map[q] for q in self.qubits),
            condition=condition,
        )


@dataclass(frozen=True)
class MeasureOp:
    """Computational-basis measurement of ``qubit`` into ``clbit``."""

    qubit: int
    clbit: int
    tag: str = ""

    @property
    def touched_qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)

    def remapped(self, qubit_map: Dict[int, int],
                 clbit_map: Optional[Dict[int, int]] = None) -> "MeasureOp":
        clbit = self.clbit if clbit_map is None else clbit_map[self.clbit]
        return replace(self, qubit=qubit_map[self.qubit], clbit=clbit)


@dataclass(frozen=True)
class ResetOp:
    """Reset ``qubit`` to |0> (measure and conditionally flip)."""

    qubit: int
    tag: str = ""

    @property
    def touched_qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)

    def remapped(self, qubit_map: Dict[int, int],
                 clbit_map: Optional[Dict[int, int]] = None) -> "ResetOp":
        return replace(self, qubit=qubit_map[self.qubit])


Operation = Union[GateOp, MeasureOp, ResetOp]


class Circuit:
    """An ordered sequence of operations on qubit and classical registers.

    Args:
        num_qubits: size of the qubit register.
        num_clbits: size of the classical register (default 0).
        name: optional label used in drawings and reports.
    """

    def __init__(self, num_qubits: int, num_clbits: int = 0,
                 name: str = "") -> None:
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("register sizes must be non-negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self._ops: List[Operation] = []

    # -- construction -------------------------------------------------

    def append(self, op: Operation) -> "Circuit":
        """Append a pre-built operation, validating register bounds."""
        for qubit in op.touched_qubits:
            self._check_qubit(qubit)
        if isinstance(op, MeasureOp):
            self._check_clbit(op.clbit)
        if isinstance(op, GateOp) and op.condition is not None:
            for bit in op.condition.bits:
                self._check_clbit(bit)
        self._ops.append(op)
        return self

    def add_gate(self, gate: Gate, *qubits: int,
                 condition: Optional[ClassicalCondition] = None,
                 tag: str = "") -> "Circuit":
        """Append ``gate`` on ``qubits``; returns self for chaining."""
        return self.append(GateOp(gate, tuple(qubits), condition, tag))

    def measure(self, qubit: int, clbit: int, tag: str = "") -> "Circuit":
        """Append a single-computer measurement (forbidden on ensembles)."""
        return self.append(MeasureOp(qubit, clbit, tag))

    def reset(self, qubit: int, tag: str = "") -> "Circuit":
        """Append a reset (forbidden on ensembles)."""
        return self.append(ResetOp(qubit, tag))

    def extend(self, other: "Circuit",
               qubit_offset: int = 0, clbit_offset: int = 0) -> "Circuit":
        """Append all of ``other``'s operations, shifting registers."""
        qubit_map = {q: q + qubit_offset for q in range(other.num_qubits)}
        clbit_map = {c: c + clbit_offset for c in range(other.num_clbits)}
        for op in other.operations:
            self.append(op.remapped(qubit_map, clbit_map))
        return self

    def compose(self, other: "Circuit",
                qubits: Optional[Sequence[int]] = None,
                clbits: Optional[Sequence[int]] = None) -> "Circuit":
        """Append ``other`` with its registers mapped onto ours.

        ``qubits[i]`` is the qubit of ``self`` that plays the role of
        qubit ``i`` of ``other`` (likewise ``clbits``).  This is how
        gadget circuits (the N gate, special-state preparation, ...)
        are wired into a larger fault-tolerant circuit.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if clbits is None:
            clbits = list(range(other.num_clbits))
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"compose: need {other.num_qubits} qubit targets, "
                f"got {len(qubits)}"
            )
        if len(clbits) != other.num_clbits:
            raise CircuitError(
                f"compose: need {other.num_clbits} clbit targets, "
                f"got {len(clbits)}"
            )
        qubit_map = dict(enumerate(qubits))
        clbit_map = dict(enumerate(clbits))
        for op in other.operations:
            self.append(op.remapped(qubit_map, clbit_map))
        return self

    # -- inspection ---------------------------------------------------

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The operations in program order (read-only view)."""
        return tuple(self._ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def gate_ops(self) -> Iterator[GateOp]:
        """Iterate over just the unitary operations."""
        for op in self._ops:
            if isinstance(op, GateOp):
                yield op

    @property
    def has_measurements(self) -> bool:
        """True when any single-computer measurement or reset appears.

        This is the paper's litmus test: a circuit is runnable on an
        ensemble quantum computer iff this property is False.
        """
        return any(isinstance(op, (MeasureOp, ResetOp)) for op in self._ops)

    @property
    def has_classical_control(self) -> bool:
        """True when any gate is conditioned on classical bits."""
        return any(
            isinstance(op, GateOp) and op.condition is not None
            for op in self._ops
        )

    def is_ensemble_safe(self) -> bool:
        """Whether the circuit can run on an ensemble machine.

        A circuit is ensemble-safe when it contains no single-computer
        measurements, no resets and no classically-controlled gates
        (the classical control values would have to come from a
        measurement of an individual computer).
        """
        return not self.has_measurements and not self.has_classical_control

    def count_gates(self) -> Dict[str, int]:
        """Histogram of gate names (measurements counted as 'measure')."""
        counts: Dict[str, int] = {}
        for op in self._ops:
            if isinstance(op, GateOp):
                key = op.gate.name
            elif isinstance(op, MeasureOp):
                key = "measure"
            else:
                key = "reset"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def depth(self) -> int:
        """Number of moments after ASAP scheduling."""
        return len(self.moments())

    # -- transformation ------------------------------------------------

    def inverse(self) -> "Circuit":
        """The inverse circuit (requires a purely unitary circuit)."""
        if self.has_measurements:
            raise CircuitError("cannot invert a circuit with measurements")
        inverted = Circuit(self.num_qubits, self.num_clbits,
                           name=f"{self.name}_dg" if self.name else "")
        for op in reversed(self._ops):
            assert isinstance(op, GateOp)
            inverted.append(replace(op, gate=op.gate.inverse()))
        return inverted

    def remapped(self, qubit_map: Dict[int, int],
                 num_qubits: Optional[int] = None) -> "Circuit":
        """A copy acting on relabelled qubits."""
        if num_qubits is None:
            num_qubits = max(qubit_map.values()) + 1 if qubit_map else 0
        result = Circuit(num_qubits, self.num_clbits, name=self.name)
        for op in self._ops:
            result.append(op.remapped(qubit_map))
        return result

    def copy(self) -> "Circuit":
        """A shallow copy (operations are immutable, so this is safe)."""
        result = Circuit(self.num_qubits, self.num_clbits, name=self.name)
        result._ops = list(self._ops)
        return result

    # -- scheduling ----------------------------------------------------

    def moments(self) -> List[List[Operation]]:
        """Greedy ASAP partition into moments of disjoint-qubit ops.

        Classical dependencies are respected conservatively: a
        conditioned gate cannot be scheduled before the measurement
        writing its condition bits, and measurements act as barriers on
        their classical bit.
        """
        moments: List[List[Operation]] = []
        qubit_frontier = [0] * self.num_qubits
        clbit_frontier = [0] * self.num_clbits
        for op in self._ops:
            earliest = 0
            for qubit in op.touched_qubits:
                earliest = max(earliest, qubit_frontier[qubit])
            if isinstance(op, GateOp) and op.condition is not None:
                for bit in op.condition.bits:
                    earliest = max(earliest, clbit_frontier[bit])
            while len(moments) <= earliest:
                moments.append([])
            moments[earliest].append(op)
            for qubit in op.touched_qubits:
                qubit_frontier[qubit] = earliest + 1
            if isinstance(op, MeasureOp):
                clbit_frontier[op.clbit] = earliest + 1
        return moments

    def idle_locations(self) -> List[Tuple[int, int]]:
        """(moment_index, qubit) pairs where a qubit sits idle.

        These are the paper's *delay line* fault locations: a qubit
        that has already been touched and will be touched again, but
        does nothing during this moment, can still decohere.
        """
        moments = self.moments()
        first_use = [None] * self.num_qubits  # type: List[Optional[int]]
        last_use = [None] * self.num_qubits  # type: List[Optional[int]]
        busy: List[set] = [set() for _ in moments]
        for index, moment in enumerate(moments):
            for op in moment:
                for qubit in op.touched_qubits:
                    busy[index].add(qubit)
                    if first_use[qubit] is None:
                        first_use[qubit] = index
                    last_use[qubit] = index
        idle: List[Tuple[int, int]] = []
        for qubit in range(self.num_qubits):
            if first_use[qubit] is None:
                continue
            for index in range(first_use[qubit], last_use[qubit] + 1):
                if qubit not in busy[index]:
                    idle.append((index, qubit))
        return idle

    # -- misc ----------------------------------------------------------

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise CircuitError(
                f"qubit index {qubit} out of range [0, {self.num_qubits})"
            )

    def _check_clbit(self, clbit: int) -> None:
        if not 0 <= clbit < self.num_clbits:
            raise CircuitError(
                f"classical bit index {clbit} out of range "
                f"[0, {self.num_clbits})"
            )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Circuit({label} qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, ops={len(self._ops)})"
        )


def concat(*circuits: Circuit) -> Circuit:
    """Concatenate circuits over the same register sizes in sequence."""
    if not circuits:
        raise CircuitError("concat needs at least one circuit")
    num_qubits = max(c.num_qubits for c in circuits)
    num_clbits = max(c.num_clbits for c in circuits)
    result = Circuit(num_qubits, num_clbits, name=circuits[0].name)
    for circuit in circuits:
        result.compose(
            circuit,
            qubits=list(range(circuit.num_qubits)),
            clbits=list(range(circuit.num_clbits)),
        )
    return result
