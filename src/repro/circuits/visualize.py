"""ASCII circuit drawing.

:func:`draw` renders a circuit moment-by-moment as text, one row per
qubit, which is how the examples print the paper's Figures 1-4 for
visual comparison against the published diagrams.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import Circuit, GateOp, MeasureOp, ResetOp

_WIRE = "-"
_CONTROL = "*"


def draw(circuit: Circuit, max_width: int = 0) -> str:
    """Render the circuit as ASCII art.

    Args:
        circuit: the circuit to draw.
        max_width: wrap the drawing after this many characters per row
            (0 disables wrapping).

    Returns:
        A multi-line string with one labelled row per qubit.
    """
    moments = circuit.moments()
    rows: List[List[str]] = [[] for _ in range(circuit.num_qubits)]
    for moment in moments:
        cells = [_WIRE * 3] * circuit.num_qubits
        width = 3
        for op in moment:
            labels = _op_labels(op)
            for qubit, label in labels.items():
                cells[qubit] = label
                width = max(width, len(label))
        for qubit in range(circuit.num_qubits):
            rows[qubit].append(cells[qubit].center(width, _WIRE))
    lines = []
    for qubit, row in enumerate(rows):
        prefix = f"q{qubit:<3}: "
        body = _WIRE.join(row)
        lines.append(prefix + body)
    text = "\n".join(lines)
    if max_width and rows and rows[0]:
        text = _wrap(lines, max_width)
    return text


def _op_labels(op) -> dict:
    if isinstance(op, MeasureOp):
        return {op.qubit: f"M[c{op.clbit}]"}
    if isinstance(op, ResetOp):
        return {op.qubit: "|0>"}
    assert isinstance(op, GateOp)
    name = op.gate.name
    suffix = ""
    if op.condition is not None:
        bits = ",".join(f"c{b}" for b in op.condition.bits)
        suffix = f"?{bits}={op.condition.value}"
    if name == "CNOT" and len(op.qubits) == 2:
        control, target = op.qubits
        return {control: _CONTROL, target: "X" + suffix}
    if name == "CZ" and len(op.qubits) == 2:
        control, target = op.qubits
        return {control: _CONTROL, target: "Z" + suffix}
    if name == "TOFFOLI":
        c1, c2, target = op.qubits
        return {c1: _CONTROL, c2: _CONTROL, target: "X" + suffix}
    if name.startswith("c") and len(op.qubits) >= 2:
        labels = {qubit: _CONTROL for qubit in op.qubits[:-1]}
        labels[op.qubits[-1]] = name[1:] + suffix
        return labels
    if len(op.qubits) == 1:
        return {op.qubits[0]: name + suffix}
    # Generic multi-qubit gate: number the legs.
    return {
        qubit: f"{name}:{index}" + (suffix if index == 0 else "")
        for index, qubit in enumerate(op.qubits)
    }


def _wrap(lines: List[str], max_width: int) -> str:
    wrapped: List[str] = []
    remaining = lines
    while any(len(line) > max_width for line in remaining):
        chunk = [line[:max_width] for line in remaining]
        remaining = [
            line[max_width:] if len(line) > max_width else ""
            for line in remaining
        ]
        wrapped.extend(chunk)
        wrapped.append("")
    wrapped.extend(remaining)
    return "\n".join(line for line in wrapped)
