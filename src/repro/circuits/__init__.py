"""Circuit intermediate representation and Pauli algebra.

Public surface:

* :mod:`repro.circuits.gates` — the gate library (``X``, ``H``,
  ``CNOT``, ``TOFFOLI``, ``sigma_z_power`` ...).
* :class:`repro.circuits.Circuit` — the circuit IR with moments,
  composition and the ensemble-safety predicate.
* :class:`repro.circuits.PauliString` — symplectic Pauli algebra used
  by the fault-propagation analysis.
* :func:`repro.circuits.conjugate_pauli` — Heisenberg-picture fault
  pushing through gates.
* :func:`repro.circuits.draw` — ASCII rendering of circuits.
"""

from repro.circuits import gates, library
from repro.circuits.equivalence import (
    circuit_unitary,
    circuits_equal_up_to_phase,
    embed_operator,
    global_phase_between,
    operators_equal_up_to_phase,
    state_discrepancy,
    vectors_equal_up_to_phase,
)
from repro.circuits.circuit import (
    Circuit,
    ClassicalCondition,
    GateOp,
    MeasureOp,
    Operation,
    ResetOp,
    concat,
)
from repro.circuits.clifford import conjugate_pauli, propagates_to_pauli
from repro.circuits.gates import Gate, get_gate, sigma_z_power
from repro.circuits.pauli import (
    PauliString,
    iter_single_qubit_paulis,
    pauli_basis,
)
from repro.circuits.visualize import draw

__all__ = [
    "Circuit",
    "ClassicalCondition",
    "Gate",
    "GateOp",
    "MeasureOp",
    "Operation",
    "PauliString",
    "ResetOp",
    "circuit_unitary",
    "circuits_equal_up_to_phase",
    "concat",
    "conjugate_pauli",
    "draw",
    "embed_operator",
    "gates",
    "get_gate",
    "global_phase_between",
    "iter_single_qubit_paulis",
    "library",
    "operators_equal_up_to_phase",
    "pauli_basis",
    "propagates_to_pauli",
    "sigma_z_power",
    "state_discrepancy",
    "vectors_equal_up_to_phase",
]
