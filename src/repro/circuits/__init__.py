"""Circuit intermediate representation and Pauli algebra.

Public surface:

* :mod:`repro.circuits.gates` — the gate library (``X``, ``H``,
  ``CNOT``, ``TOFFOLI``, ``sigma_z_power`` ...).
* :class:`repro.circuits.Circuit` — the circuit IR with moments,
  composition and the ensemble-safety predicate.
* :class:`repro.circuits.PauliString` — symplectic Pauli algebra used
  by the fault-propagation analysis.
* :func:`repro.circuits.conjugate_pauli` — Heisenberg-picture fault
  pushing through gates.
* :func:`repro.circuits.draw` — ASCII rendering of circuits.
"""

from repro.circuits import gates, library
from repro.circuits.circuit import (
    Circuit,
    ClassicalCondition,
    GateOp,
    MeasureOp,
    Operation,
    ResetOp,
    concat,
)
from repro.circuits.clifford import conjugate_pauli, propagates_to_pauli
from repro.circuits.gates import Gate, get_gate, sigma_z_power
from repro.circuits.pauli import (
    PauliString,
    iter_single_qubit_paulis,
    pauli_basis,
)
from repro.circuits.visualize import draw

__all__ = [
    "Circuit",
    "ClassicalCondition",
    "Gate",
    "GateOp",
    "MeasureOp",
    "Operation",
    "PauliString",
    "ResetOp",
    "concat",
    "conjugate_pauli",
    "draw",
    "gates",
    "get_gate",
    "iter_single_qubit_paulis",
    "library",
    "pauli_basis",
    "propagates_to_pauli",
    "sigma_z_power",
]
