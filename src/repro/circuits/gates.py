"""Gate library: unitary definitions and metadata.

Every gate used by the paper's constructions is defined here as a
:class:`Gate` instance carrying its unitary matrix, arity, Clifford
metadata and its inverse.  The module-level singletons (``X``, ``H``,
``CNOT``, ``TOFFOLI``, ...) are the vocabulary that circuits are written
in; parametric rotations are produced by the factory functions
(:func:`rz`, :func:`rx`, :func:`ry`, :func:`phase_gate`).

Naming follows the paper: ``S`` is the paper's sigma_z^{1/2} and ``T``
is sigma_z^{1/4} (up to global phase, the standard S and T gates).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import GateError

_ATOL = 1e-10


def _is_unitary(matrix: np.ndarray) -> bool:
    dim = matrix.shape[0]
    return bool(
        matrix.shape == (dim, dim)
        and np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-8)
    )


@dataclass(frozen=True)
class Gate:
    """An immutable quantum gate.

    Attributes:
        name: canonical name used for registry lookup and drawing.
        matrix: unitary matrix of shape (2**num_qubits, 2**num_qubits),
            stored read-only.
        num_qubits: arity of the gate.
        is_clifford: True when the gate maps Pauli strings to Pauli
            strings under conjugation; used by the fault-propagation
            simulator.
        inverse_name: name of the gate implementing the inverse, when
            the inverse is itself a named gate.
        params: parameters for parametric gates (e.g. rotation angles),
            kept so two rz(theta) instances compare equal iff their
            angles match.
    """

    name: str
    matrix: np.ndarray
    num_qubits: int
    is_clifford: bool = False
    inverse_name: Optional[str] = None
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=np.complex128)
        if matrix.shape != (2**self.num_qubits, 2**self.num_qubits):
            raise GateError(
                f"gate {self.name!r}: matrix shape {matrix.shape} does not "
                f"match {self.num_qubits} qubits"
            )
        if not _is_unitary(matrix):
            raise GateError(f"gate {self.name!r}: matrix is not unitary")
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the gate acts on."""
        return 2**self.num_qubits

    def inverse(self) -> "Gate":
        """Return the inverse gate.

        Named inverses (S -> S_DG) are returned from the registry so
        circuit inversion round-trips through recognisable names;
        anything else gets a synthesised ``name_dg`` gate.
        """
        if self.inverse_name is not None:
            registered = GATE_REGISTRY.get(self.inverse_name)
            if registered is not None:
                return registered
        return Gate(
            name=f"{self.name}_dg",
            matrix=self.matrix.conj().T,
            num_qubits=self.num_qubits,
            is_clifford=self.is_clifford,
            inverse_name=self.name,
            params=tuple(-p for p in self.params),
        )

    def controlled(self) -> "Gate":
        """Return the controlled version of this gate (control first).

        This implements the paper's Lambda(U) notation: an extra qubit
        controls the application of the gate.  Well-known results are
        mapped back to named gates (Lambda(X) = CNOT, Lambda(CNOT) =
        TOFFOLI, ...) so circuits stay readable.
        """
        special = _CONTROLLED_NAMES.get(self.name)
        if special is not None:
            registered = GATE_REGISTRY.get(special)
            if registered is not None:
                return registered
        dim = self.dim
        matrix = np.eye(2 * dim, dtype=np.complex128)
        matrix[dim:, dim:] = self.matrix
        return Gate(
            name=f"c{self.name}",
            matrix=matrix,
            num_qubits=self.num_qubits + 1,
            is_clifford=False,
            params=self.params,
        )

    def equals(self, other: "Gate", *, up_to_global_phase: bool = False) -> bool:
        """Whether two gates implement the same unitary."""
        if self.num_qubits != other.num_qubits:
            return False
        if up_to_global_phase:
            return matrices_equal_up_to_phase(self.matrix, other.matrix)
        return bool(np.allclose(self.matrix, other.matrix, atol=_ATOL))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"Gate({self.name}({args}))"
        return f"Gate({self.name})"


def matrices_equal_up_to_phase(a: np.ndarray, b: np.ndarray) -> bool:
    """True when a = e^{i phi} b for some global phase phi."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    # Find the largest entry of b to fix the phase against.
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < _ATOL:
        return bool(np.allclose(a, b, atol=_ATOL))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-8:
        return False
    return bool(np.allclose(a, phase * b, atol=1e-8))


# ---------------------------------------------------------------------------
# Concrete matrices
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)

_I = np.eye(2)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=np.complex128)
_S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
_S_DG = _S.conj().T
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=np.complex128)
_T_DG = _T.conj().T


def _two_qubit(control_first: np.ndarray) -> np.ndarray:
    matrix = np.eye(4, dtype=np.complex128)
    matrix[2:, 2:] = control_first
    return matrix


_CNOT = _two_qubit(_X)
_CZ = _two_qubit(_Z)
_CS = _two_qubit(_S)
_CS_DG = _two_qubit(_S_DG)
_CY = _two_qubit(_Y)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]],
    dtype=np.complex128,
)

_TOFFOLI = np.eye(8, dtype=np.complex128)
_TOFFOLI[6:, 6:] = _X

_CCZ = np.eye(8, dtype=np.complex128)
_CCZ[7, 7] = -1

_FREDKIN = np.eye(8, dtype=np.complex128)
_FREDKIN[4:, 4:] = 0
_FREDKIN[4, 4] = 1
_FREDKIN[7, 7] = 1
_FREDKIN[5, 6] = 1
_FREDKIN[6, 5] = 1


# ---------------------------------------------------------------------------
# Singletons
# ---------------------------------------------------------------------------

I = Gate("I", _I, 1, is_clifford=True, inverse_name="I")
X = Gate("X", _X, 1, is_clifford=True, inverse_name="X")
Y = Gate("Y", _Y, 1, is_clifford=True, inverse_name="Y")
Z = Gate("Z", _Z, 1, is_clifford=True, inverse_name="Z")
H = Gate("H", _H, 1, is_clifford=True, inverse_name="H")
S = Gate("S", _S, 1, is_clifford=True, inverse_name="S_DG")
S_DG = Gate("S_DG", _S_DG, 1, is_clifford=True, inverse_name="S")
T = Gate("T", _T, 1, is_clifford=False, inverse_name="T_DG")
T_DG = Gate("T_DG", _T_DG, 1, is_clifford=False, inverse_name="T")

CNOT = Gate("CNOT", _CNOT, 2, is_clifford=True, inverse_name="CNOT")
CZ = Gate("CZ", _CZ, 2, is_clifford=True, inverse_name="CZ")
CY = Gate("CY", _CY, 2, is_clifford=True, inverse_name="CY")
CS = Gate("CS", _CS, 2, is_clifford=False, inverse_name="CS_DG")
CS_DG = Gate("CS_DG", _CS_DG, 2, is_clifford=False, inverse_name="CS")
SWAP = Gate("SWAP", _SWAP, 2, is_clifford=True, inverse_name="SWAP")

TOFFOLI = Gate("TOFFOLI", _TOFFOLI, 3, is_clifford=False, inverse_name="TOFFOLI")
CCZ = Gate("CCZ", _CCZ, 3, is_clifford=False, inverse_name="CCZ")
FREDKIN = Gate("FREDKIN", _FREDKIN, 3, is_clifford=False, inverse_name="FREDKIN")

#: All built-in gates, keyed by canonical name.
GATE_REGISTRY: Dict[str, Gate] = {
    gate.name: gate
    for gate in (
        I, X, Y, Z, H, S, S_DG, T, T_DG,
        CNOT, CZ, CY, CS, CS_DG, SWAP,
        TOFFOLI, CCZ, FREDKIN,
    )
}

_CONTROLLED_NAMES = {
    "X": "CNOT",
    "Z": "CZ",
    "Y": "CY",
    "S": "CS",
    "S_DG": "CS_DG",
    "CNOT": "TOFFOLI",
    "CZ": "CCZ",
    "SWAP": "FREDKIN",
}

#: Paper aliases: sigma_z^{1/2} is S, sigma_z^{1/4} is T.
SIGMA_Z_HALF = S
SIGMA_Z_QUARTER = T

PAULI_GATES: Dict[str, Gate] = {"I": I, "X": X, "Y": Y, "Z": Z}


def get_gate(name: str) -> Gate:
    """Look up a built-in gate by name.

    Raises:
        GateError: if the name is unknown.
    """
    try:
        return GATE_REGISTRY[name]
    except KeyError:
        raise GateError(f"unknown gate name {name!r}") from None


def rz(theta: float) -> Gate:
    """Rotation about Z: diag(1, e^{i theta}) (phase convention used by
    the paper for sigma_z^{1/2^k} powers)."""
    matrix = np.array(
        [[1, 0], [0, cmath.exp(1j * theta)]], dtype=np.complex128
    )
    clifford = _angle_is_multiple(theta, math.pi / 2)
    return Gate(f"RZ", matrix, 1, is_clifford=clifford, params=(theta,))


def rx(theta: float) -> Gate:
    """Rotation about X by angle theta: exp(-i theta X / 2)."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    matrix = np.array(
        [[cos, -1j * sin], [-1j * sin, cos]], dtype=np.complex128
    )
    return Gate("RX", matrix, 1, params=(theta,))


def ry(theta: float) -> Gate:
    """Rotation about Y by angle theta: exp(-i theta Y / 2)."""
    cos = math.cos(theta / 2.0)
    sin = math.sin(theta / 2.0)
    matrix = np.array([[cos, -sin], [sin, cos]], dtype=np.complex128)
    return Gate("RY", matrix, 1, params=(theta,))


def phase_gate(phi: float) -> Gate:
    """Global-phase-free phase gate diag(1, e^{i phi})."""
    return rz(phi)


def global_phase(phi: float, num_qubits: int = 1) -> Gate:
    """e^{i phi} times the identity on ``num_qubits`` qubits.

    The paper's special-state constructions use unitaries such as
    U = e^{i pi / 4} sigma_z^{-1/2} whose global phase is essential
    (it turns eigenvalue pairs into exactly +1/-1), so a dedicated
    global-phase gate is provided.
    """
    matrix = cmath.exp(1j * phi) * np.eye(2**num_qubits, dtype=np.complex128)
    return Gate("GPHASE", matrix, num_qubits, is_clifford=True, params=(phi,))


def sigma_z_power(exponent: float) -> Gate:
    """sigma_z^exponent = diag(1, e^{i pi exponent}).

    ``sigma_z_power(0.5)`` is the paper's sigma_z^{1/2} (the S gate) and
    ``sigma_z_power(0.25)`` its sigma_z^{1/4} (the T gate).
    """
    if abs(exponent - 0.5) < _ATOL:
        return S
    if abs(exponent - 0.25) < _ATOL:
        return T
    if abs(exponent + 0.5) < _ATOL:
        return S_DG
    if abs(exponent + 0.25) < _ATOL:
        return T_DG
    if abs(exponent - 1.0) < _ATOL:
        return Z
    return rz(math.pi * exponent)


def _angle_is_multiple(theta: float, unit: float) -> bool:
    ratio = theta / unit
    return abs(ratio - round(ratio)) < 1e-9


def kron_all(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of the given matrices, left to right."""
    result = np.array([[1.0]], dtype=np.complex128)
    for matrix in matrices:
        result = np.kron(result, matrix)
    return result
