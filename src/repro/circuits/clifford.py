"""Conjugation of Pauli errors by circuit gates.

Fault-tolerance analysis works in the Heisenberg picture: a Pauli fault
E occurring before a gate U is equivalent to the fault U E U^dagger
occurring after it.  For Clifford gates the conjugate is again a Pauli
string, so faults can be pushed through an entire Clifford circuit in
polynomial time — this is how :mod:`repro.analysis` counts malignant
fault pairs exactly the way the paper prescribes ("the threshold can
easily be calculated by counting the potential places for two errors").

For non-Clifford gates (T, controlled-S, Toffoli) a Pauli does not in
general conjugate to a Pauli.  :func:`conjugate_pauli` returns ``None``
in that case and the caller chooses a policy (the analysis module
treats it conservatively as a potential logical fault on every block
the gate touches).

The conjugation is computed numerically — U P U^dagger is expanded in
the Pauli basis and accepted only if exactly one coefficient survives —
and memoised per (gate, local-Pauli) pair, so correctness does not
depend on hand-maintained tableau rules.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.gates import Gate
from repro.circuits.pauli import PauliString, pauli_basis

_ATOL = 1e-8

# Cache: (gate key, local pauli label, local phase offset) -> result or None
_CACHE: Dict[Tuple[str, Tuple[float, ...], str], Optional[Tuple[str, int]]] = {}


def _gate_key(gate: Gate) -> Tuple[str, Tuple[float, ...]]:
    return (gate.name, tuple(gate.params))


def _conjugate_local(gate: Gate, label: str) -> Optional[Tuple[str, int]]:
    """Conjugate the local Pauli with the given label by ``gate``.

    Returns ``(new_label, phase_exponent)`` with the result equal to
    i^phase_exponent times the canonical operator of ``new_label``, or
    ``None`` when the conjugate is not a Pauli string.
    """
    key = (_gate_key(gate)[0], _gate_key(gate)[1], label)
    if key in _CACHE:
        return _CACHE[key]

    pauli = PauliString.from_label(label)
    conjugated = gate.matrix @ pauli.matrix() @ gate.matrix.conj().T

    result: Optional[Tuple[str, int]] = None
    dim = conjugated.shape[0]
    for candidate in pauli_basis(gate.num_qubits):
        basis_matrix = candidate.matrix()
        coeff = np.trace(basis_matrix.conj().T @ conjugated) / dim
        if abs(coeff) < _ATOL:
            continue
        # More than one surviving coefficient => not a Pauli.
        if result is not None:
            result = None
            break
        phase = _phase_to_exponent(coeff)
        if phase is None:
            result = None
            break
        result = (candidate.label(), phase)
    _CACHE[key] = result
    return result


def _phase_to_exponent(coeff: complex) -> Optional[int]:
    """Map a coefficient to k with coeff == i^k, or None."""
    for exponent in range(4):
        if abs(coeff - 1j**exponent) < _ATOL:
            return exponent
    return None


def conjugate_pauli(gate: Gate, qubits: Sequence[int],
                    pauli: PauliString) -> Optional[PauliString]:
    """Compute U P U^dagger for a gate applied to specific qubits.

    Args:
        gate: the gate U.
        qubits: the register qubits U acts on, in gate order.
        pauli: the Pauli string P over the full register.

    Returns:
        The conjugated Pauli string, or ``None`` when the result is not
        a Pauli (possible only for non-Clifford gates whose support
        overlaps the fault).
    """
    local = pauli.restricted(qubits)
    if local.is_identity:
        return pauli
    local_canonical = local.strip_phase()
    outcome = _conjugate_local(gate, local_canonical.label())
    if outcome is None:
        return None
    new_label, extra_phase = outcome
    replacement = PauliString.from_label(new_label)
    # Rebuild the full string: clear the gate's qubits then install the
    # conjugated factors, preserving the original global phase offset.
    x_bits = list(pauli.x_bits)
    z_bits = list(pauli.z_bits)
    for local_index, register_qubit in enumerate(qubits):
        x_bits[register_qubit] = replacement.x_bits[local_index]
        z_bits[register_qubit] = replacement.z_bits[local_index]
    # Phase bookkeeping: pauli = i^a * (rest (x) local_canonical) where
    # a = pauli.phase_offset() relative to canonical letters.  After
    # conjugation local_canonical -> i^extra * new canonical letters.
    new_string = PauliString(pauli.num_qubits, tuple(x_bits), tuple(z_bits))
    canonical = new_string.strip_phase()
    total_offset = (pauli.phase_offset() + extra_phase) % 4
    return canonical.with_phase(canonical.phase + total_offset)


def propagates_to_pauli(gate: Gate) -> bool:
    """Whether every Pauli conjugates to a Pauli through this gate.

    Equivalent to the gate being Clifford; verified numerically and
    cached, so it is safe to call for synthesised gates whose
    ``is_clifford`` flag was not set.
    """
    if gate.is_clifford:
        return True
    for pauli in pauli_basis(gate.num_qubits):
        if pauli.is_identity:
            continue
        if _conjugate_local(gate, pauli.label()) is None:
            return False
    return True
