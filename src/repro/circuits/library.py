"""Reusable circuit fragments.

These are the standard sub-circuits the paper's constructions are
assembled from: cat-state preparation (used in the special-state
preparation of Fig. 2 and in Shor-style syndrome extraction), fan-out
and parity networks of CNOTs, and basis-state initialisers.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.exceptions import CircuitError


def cat_state_circuit(num_qubits: int) -> Circuit:
    """Prepare (|0...0> + |1...1>)/sqrt(2) from |0...0>.

    Hadamard on the first qubit followed by a CNOT chain.  The paper's
    Fig. 2 consumes one fresh cat state per repetition of the parity
    measurement, so this circuit appears in every special-state
    preparation gadget.
    """
    if num_qubits < 1:
        raise CircuitError("cat state needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"cat{num_qubits}")
    circuit.add_gate(gates.H, 0)
    for qubit in range(1, num_qubits):
        circuit.add_gate(gates.CNOT, qubit - 1, qubit)
    return circuit


def fanout_circuit(num_targets: int) -> Circuit:
    """CNOT from qubit 0 to each of qubits 1..num_targets.

    Copies a computational-basis bit into many targets.  In the
    Heisenberg picture this spreads X errors from the control to all
    targets and collects Z errors from every target onto the control —
    the error-propagation asymmetry at the heart of the paper's
    classical-ancilla trick.
    """
    if num_targets < 1:
        raise CircuitError("fanout needs at least one target")
    circuit = Circuit(num_targets + 1, name=f"fanout{num_targets}")
    for target in range(1, num_targets + 1):
        circuit.add_gate(gates.CNOT, 0, target)
    return circuit


def parity_circuit(num_sources: int) -> Circuit:
    """CNOT from each of qubits 0..num_sources-1 onto the last qubit.

    Computes the parity of the source bits into the target — the
    paper's parity gate P used in Fig. 2.  Note the reverse error
    asymmetry relative to fan-out: one phase error on the target
    back-propagates onto *all* the sources, which is why Fig. 2 uses a
    fresh cat state (whose phase coherence is expendable) as sources.
    """
    if num_sources < 1:
        raise CircuitError("parity needs at least one source")
    circuit = Circuit(num_sources + 1, name=f"parity{num_sources}")
    for source in range(num_sources):
        circuit.add_gate(gates.CNOT, source, num_sources)
    return circuit


def basis_state_circuit(bits: Sequence[int]) -> Circuit:
    """Prepare |b_0 b_1 ... b_{n-1}> from |0...0> with X gates."""
    circuit = Circuit(len(bits), name="basis")
    for qubit, bit in enumerate(bits):
        if bit not in (0, 1):
            raise CircuitError(f"basis bit must be 0 or 1, got {bit}")
        if bit:
            circuit.add_gate(gates.X, qubit)
    return circuit


def bitwise_circuit(gate: "gates.Gate", qubits: Sequence[int],
                    num_qubits: int) -> Circuit:
    """Apply a single-qubit gate bitwise across the listed qubits.

    This is the paper's transversal application pattern: the logical H,
    sigma_z and CNOT on CSS codewords are exactly bitwise physical
    gates, which is what makes them automatically fault tolerant.
    """
    if gate.num_qubits != 1:
        raise CircuitError("bitwise_circuit needs a single-qubit gate")
    circuit = Circuit(num_qubits, name=f"bitwise_{gate.name}")
    for qubit in qubits:
        circuit.add_gate(gate, qubit)
    return circuit


def transversal_two_qubit(gate: "gates.Gate", controls: Sequence[int],
                          targets: Sequence[int],
                          num_qubits: int) -> Circuit:
    """Apply a two-qubit gate transversally between two blocks.

    Pairs ``controls[i]`` with ``targets[i]``; every physical gate
    touches at most one qubit per block, so a single gate fault creates
    at most one error in each block — the sufficient condition for
    fault tolerance reviewed in the paper's Section 3.
    """
    if gate.num_qubits != 2:
        raise CircuitError("transversal_two_qubit needs a two-qubit gate")
    if len(controls) != len(targets):
        raise CircuitError("control and target blocks differ in size")
    if set(controls) & set(targets):
        raise CircuitError(
            "transversal operation requires disjoint blocks (a gate "
            "within one block would let one fault spread inside it)"
        )
    circuit = Circuit(num_qubits, name=f"transversal_{gate.name}")
    for control, target in zip(controls, targets):
        circuit.add_gate(gate, control, target)
    return circuit


def majority_vote_circuit(num_inputs: int) -> Circuit:
    """Reversible 3-input majority vote onto an output qubit.

    For ``num_inputs == 3`` computes MAJ(a,b,c) into the last qubit
    using Toffolis (a AND b) XOR (b AND c) XOR (a AND c).  Majority
    votes over the repeated classical-ancilla bits are how the paper's
    N gate and parity-bit constructions suppress single faults.
    """
    if num_inputs != 3:
        raise CircuitError(
            "reversible majority circuit implemented for 3 inputs; "
            "larger votes are decoded classically via repetition codes"
        )
    circuit = Circuit(4, name="maj3")
    circuit.add_gate(gates.TOFFOLI, 0, 1, 3)
    circuit.add_gate(gates.TOFFOLI, 1, 2, 3)
    circuit.add_gate(gates.TOFFOLI, 0, 2, 3)
    return circuit
