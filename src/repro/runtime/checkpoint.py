"""Crash-safe checkpoint journals for long-running sweeps.

A :class:`CheckpointStore` is a directory of small JSON records that
together let an interrupted campaign resume bit-identically:

* ``header.json`` — the run *fingerprint* (seed, trial counts, chunk
  size, workload name, ...).  A resume whose fingerprint differs from
  the journal's is refused with :class:`~repro.exceptions.
  CheckpointError` — replaying verdicts into a different run would
  silently corrupt its statistics.
* ``<kind>-NNNNNN.json`` — append-only record batches (completed
  evaluation-chunk verdicts, differential-sweep results, ...).
* named state files (``cursor.json``, ``final.json``) — last-writer-
  wins progress markers.

Every file is written atomically (write to a ``.tmp`` sibling, then
``os.replace``) and carries a SHA-256 checksum of its payload, so a
crash mid-write leaves either the old record or the new one — never a
half-written file that parses to wrong data.  A record that is
unreadable, truncated or checksum-poisoned raises
:class:`~repro.exceptions.CheckpointError` (a
:class:`~repro.exceptions.RuntimeIntegrityError`) at load time: the
journal's answer is a correct resume or a typed error, never a wrong
number.

Fault patterns — the engine's cache keys — are serialised structurally
(qubit count, X/Z bit-vectors, phase, injection point) rather than by
pickle, so journals are portable and diffable.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.pauli import PauliString
from repro.exceptions import CheckpointError

#: Default root for run directories (``.repro_runs/<run_id>/``).
DEFAULT_ROOT = ".repro_runs"

#: Journal format version; bumped on incompatible layout changes.
JOURNAL_VERSION = 1

_RECORD_NAME = re.compile(r"^([a-z_]+)-(\d{6})\.json$")


# ---------------------------------------------------------------------------
# Fault-pattern serialisation
# ---------------------------------------------------------------------------

def serialize_pattern(pattern: Sequence[Tuple[PauliString, int]]
                      ) -> List[List[Any]]:
    """Structural JSON form of a canonical fault pattern."""
    return [
        [pauli.num_qubits, list(pauli.x_bits), list(pauli.z_bits),
         pauli.phase, int(after_op)]
        for pauli, after_op in pattern
    ]


def deserialize_pattern(data: Sequence[Sequence[Any]]
                        ) -> Tuple[Tuple[PauliString, int], ...]:
    """Inverse of :func:`serialize_pattern`."""
    faults = []
    for item in data:
        try:
            num_qubits, x_bits, z_bits, phase, after_op = item
            pauli = PauliString(int(num_qubits),
                                tuple(int(b) for b in x_bits),
                                tuple(int(b) for b in z_bits),
                                int(phase))
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed fault-pattern record: {item!r}"
            ) from exc
        faults.append((pauli, int(after_op)))
    return tuple(faults)


# ---------------------------------------------------------------------------
# Atomic JSON records
# ---------------------------------------------------------------------------

def _payload_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _write_atomic_json(path: str, payload: Dict[str, Any]) -> None:
    record = dict(payload)
    record["sha256"] = _payload_digest(payload)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp",
        dir=directory,
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_checked_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint record {path!r} is unreadable or truncated: "
            f"{exc}"
        ) from exc
    if not isinstance(record, dict) or "sha256" not in record:
        raise CheckpointError(
            f"checkpoint record {path!r} is missing its checksum"
        )
    stored = record.pop("sha256")
    if stored != _payload_digest(record):
        raise CheckpointError(
            f"checkpoint record {path!r} failed its integrity check "
            "(truncated, corrupted or poisoned)"
        )
    return record


class CheckpointStore:
    """One run's crash-safe journal directory.

    The store is deliberately dumb: it knows about atomic JSON
    records, checksums and fingerprints, not about what the engine or
    the differential sweep put in them.  Workload-specific record
    kinds (``verdicts``, ``points``, ``circuits``) are namespaced by
    the caller.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)

    @classmethod
    def open_run(cls, run_id: str,
                 root: Optional[str] = None) -> "CheckpointStore":
        """The conventional ``<root>/<run_id>`` layout."""
        return cls(os.path.join(root or DEFAULT_ROOT, run_id))

    def substore(self, name: str) -> "CheckpointStore":
        """A nested store (e.g. one per sweep point)."""
        return CheckpointStore(os.path.join(self.directory, name))

    # -- lifecycle ---------------------------------------------------

    def exists(self) -> bool:
        """Whether this directory already holds a journaled run."""
        return os.path.isfile(self._path("header.json"))

    def clear(self) -> None:
        """Wipe the journal for a fresh (non-resumed) run."""
        if os.path.isdir(self.directory):
            shutil.rmtree(self.directory)

    def _ensure_dir(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    # -- header / fingerprint ---------------------------------------

    def write_header(self, fingerprint: Dict[str, Any]) -> None:
        self._ensure_dir()
        _write_atomic_json(self._path("header.json"), {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
        })

    def load_header(self) -> Optional[Dict[str, Any]]:
        if not self.exists():
            return None
        record = _read_checked_json(self._path("header.json"))
        if record.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"checkpoint {self.directory!r} uses journal version "
                f"{record.get('version')!r}; this build reads "
                f"{JOURNAL_VERSION}"
            )
        return record

    def check_fingerprint(self, fingerprint: Dict[str, Any]) -> None:
        """Refuse to resume a journal recorded by a different run."""
        header = self.load_header()
        if header is None:
            raise CheckpointError(
                f"checkpoint {self.directory!r} has no header to "
                "resume from"
            )
        recorded = header.get("fingerprint")
        if recorded != fingerprint:
            mismatched = sorted(
                key for key in set(recorded or {}) | set(fingerprint)
                if (recorded or {}).get(key) != fingerprint.get(key)
            )
            raise CheckpointError(
                f"checkpoint {self.directory!r} records a different "
                f"run (mismatched fields: {', '.join(mismatched)}); "
                "refusing to splice its verdicts into this one"
            )

    # -- append-only record batches ---------------------------------

    def _record_files(self, kind: str) -> List[Tuple[int, str]]:
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _RECORD_NAME.match(name)
            if match and match.group(1) == kind:
                found.append((int(match.group(2)), self._path(name)))
        return sorted(found)

    def append_record(self, kind: str, payload: Dict[str, Any]) -> int:
        """Journal one batch; returns its sequence number."""
        self._ensure_dir()
        existing = self._record_files(kind)
        sequence = existing[-1][0] + 1 if existing else 0
        record = dict(payload)
        record["kind"] = kind
        record["sequence"] = sequence
        _write_atomic_json(self._path(f"{kind}-{sequence:06d}.json"),
                           record)
        return sequence

    def load_records(self, kind: str) -> List[Dict[str, Any]]:
        """All batches of ``kind`` in append order (checksum-verified)."""
        records = []
        for sequence, path in self._record_files(kind):
            record = _read_checked_json(path)
            if record.get("sequence") != sequence:
                raise CheckpointError(
                    f"checkpoint record {path!r} carries sequence "
                    f"{record.get('sequence')!r}, expected {sequence}"
                )
            records.append(record)
        return records

    # -- named state files ------------------------------------------

    def write_state(self, name: str, payload: Dict[str, Any]) -> None:
        self._ensure_dir()
        _write_atomic_json(self._path(f"{name}.json"), dict(payload))

    def load_state(self, name: str) -> Optional[Dict[str, Any]]:
        path = self._path(f"{name}.json")
        if not os.path.isfile(path):
            return None
        return _read_checked_json(path)

    # -- engine verdict journal -------------------------------------

    def append_verdicts(self,
                        entries: Iterable[
                            Tuple[Sequence[Tuple[PauliString, int]],
                                  bool]]) -> None:
        """Journal one evaluation chunk's (pattern, verdict) pairs."""
        serialised = [[serialize_pattern(pattern), bool(verdict)]
                      for pattern, verdict in entries]
        if serialised:
            self.append_record("verdicts", {"entries": serialised})

    def load_verdicts(self) -> List[Tuple[Tuple[Tuple[PauliString, int],
                                                ...], bool]]:
        """Every journaled (pattern, verdict) pair, in append order."""
        entries = []
        for record in self.load_records("verdicts"):
            for item in record.get("entries", []):
                try:
                    pattern_data, verdict = item
                except (TypeError, ValueError) as exc:
                    raise CheckpointError(
                        f"malformed verdict entry {item!r} in "
                        f"{self.directory!r}"
                    ) from exc
                entries.append((deserialize_pattern(pattern_data),
                                bool(verdict)))
        return entries

    # -- completion marker ------------------------------------------

    def finalize(self, summary: Dict[str, Any]) -> None:
        self.write_state("final", {"complete": True,
                                   "summary": summary})

    def load_final(self) -> Optional[Dict[str, Any]]:
        return self.load_state("final")


def as_store(checkpoint) -> Optional[CheckpointStore]:
    """Coerce the public ``checkpoint=`` argument to a store.

    Accepts ``None``, a :class:`CheckpointStore`, or a path-like
    naming the run directory.
    """
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(os.fspath(checkpoint))
