"""Crash-safe checkpoint journals for long-running sweeps.

A :class:`CheckpointStore` is a directory of small JSON records that
together let an interrupted campaign resume bit-identically:

* ``header.json`` — the run *fingerprint* (seed, trial counts, chunk
  size, workload name, ...).  A resume whose fingerprint differs from
  the journal's is refused with :class:`~repro.exceptions.
  CheckpointError` — replaying verdicts into a different run would
  silently corrupt its statistics.
* ``<kind>-NNNNNN.json`` — append-only record batches (completed
  evaluation-chunk verdicts, differential-sweep results, ...).
* named state files (``cursor.json``, ``final.json``) — last-writer-
  wins progress markers.

Every file is written atomically (write to a ``.tmp`` sibling, then
``os.replace``) and carries a SHA-256 checksum of its payload, so a
crash mid-write leaves either the old record or the new one — never a
half-written file that parses to wrong data.  A record that is
unreadable, truncated or checksum-poisoned raises
:class:`~repro.exceptions.CheckpointError` (a
:class:`~repro.exceptions.RuntimeIntegrityError`) at load time: the
journal's answer is a correct resume or a typed error, never a wrong
number.

Fault patterns — the engine's cache keys — are serialised structurally
(qubit count, X/Z bit-vectors, phase, injection point) rather than by
pickle, so journals are portable and diffable.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import re
import shutil
import tempfile
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.circuits.pauli import PauliString
from repro.exceptions import CheckpointError

#: Default root for run directories (``.repro_runs/<run_id>/``).
DEFAULT_ROOT = ".repro_runs"

#: Journal format version; bumped on incompatible layout changes.
JOURNAL_VERSION = 1

_RECORD_NAME = re.compile(r"^([a-z_]+)-(\d{6})\.json$")

#: Name of the short-held advisory lock serialising record appends.
_APPEND_LOCK = ".append.lock"
#: Name of the long-held advisory lock marking a store's owner.
_OWNER_LOCK = ".owner.lock"


@contextlib.contextmanager
def _flock(path: str, timeout: Optional[float] = None,
           poll: float = 0.02):
    """Advisory exclusive lock on ``path`` (no-op without fcntl).

    ``timeout=None`` blocks until acquired; a finite timeout raises
    :class:`CheckpointError` when the lock stays contended — the
    caller is told another process owns the store instead of silently
    corrupting it.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    handle = open(path, "a+")
    try:
        if timeout is None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        else:
            deadline = time.monotonic() + timeout
            while True:
                try:
                    fcntl.flock(handle.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise CheckpointError(
                            f"could not acquire advisory lock "
                            f"{path!r} within {timeout:g}s; another "
                            f"process holds this checkpoint store"
                        )
                    time.sleep(poll)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()


# ---------------------------------------------------------------------------
# Fault-pattern serialisation
# ---------------------------------------------------------------------------

def serialize_pattern(pattern: Sequence[Tuple[PauliString, int]]
                      ) -> List[List[Any]]:
    """Structural JSON form of a canonical fault pattern."""
    return [
        [pauli.num_qubits, list(pauli.x_bits), list(pauli.z_bits),
         pauli.phase, int(after_op)]
        for pauli, after_op in pattern
    ]


def deserialize_pattern(data: Sequence[Sequence[Any]]
                        ) -> Tuple[Tuple[PauliString, int], ...]:
    """Inverse of :func:`serialize_pattern`."""
    faults = []
    for item in data:
        try:
            num_qubits, x_bits, z_bits, phase, after_op = item
            pauli = PauliString(int(num_qubits),
                                tuple(int(b) for b in x_bits),
                                tuple(int(b) for b in z_bits),
                                int(phase))
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed fault-pattern record: {item!r}"
            ) from exc
        faults.append((pauli, int(after_op)))
    return tuple(faults)


# ---------------------------------------------------------------------------
# Atomic JSON records
# ---------------------------------------------------------------------------

def _payload_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _write_atomic_json(path: str, payload: Dict[str, Any]) -> None:
    record = dict(payload)
    record["sha256"] = _payload_digest(payload)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp",
        dir=directory,
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(record, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_checked_json(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint record {path!r} is unreadable or truncated: "
            f"{exc}"
        ) from exc
    if not isinstance(record, dict) or "sha256" not in record:
        raise CheckpointError(
            f"checkpoint record {path!r} is missing its checksum"
        )
    stored = record.pop("sha256")
    if stored != _payload_digest(record):
        raise CheckpointError(
            f"checkpoint record {path!r} failed its integrity check "
            "(truncated, corrupted or poisoned)"
        )
    return record


class CheckpointStore:
    """One run's crash-safe journal directory.

    The store is deliberately dumb: it knows about atomic JSON
    records, checksums and fingerprints, not about what the engine or
    the differential sweep put in them.  Workload-specific record
    kinds (``verdicts``, ``points``, ``circuits``) are namespaced by
    the caller.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)

    @classmethod
    def open_run(cls, run_id: str,
                 root: Optional[str] = None) -> "CheckpointStore":
        """The conventional ``<root>/<run_id>`` layout."""
        return cls(os.path.join(root or DEFAULT_ROOT, run_id))

    def substore(self, name: str) -> "CheckpointStore":
        """A nested store (e.g. one per sweep point)."""
        return CheckpointStore(os.path.join(self.directory, name))

    def substores(self) -> List[str]:
        """Names of the nested stores this one holds, sorted.

        A directory counts as a substore when it exists at all — a
        crash may have left it empty before its first record landed —
        so resumable merge steps (the sweep coordinator) can
        enumerate exactly the partial state a dead run left behind.
        Lock files and quarantined records never appear here.
        """
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            name for name in os.listdir(self.directory)
            if os.path.isdir(self._path(name))
        )

    # -- lifecycle ---------------------------------------------------

    def exists(self) -> bool:
        """Whether this directory already holds a journaled run."""
        return os.path.isfile(self._path("header.json"))

    def clear(self) -> None:
        """Wipe the journal for a fresh (non-resumed) run.

        Advisory lock files survive the wipe: deleting a lock file
        that another process holds open would let a third process
        create and lock a *new* file of the same name, silently
        yielding two "exclusive" owners.
        """
        if not os.path.isdir(self.directory):
            return
        kept = {_OWNER_LOCK, _APPEND_LOCK}
        for name in os.listdir(self.directory):
            if name in kept:
                continue
            path = self._path(name)
            if os.path.isdir(path):
                shutil.rmtree(path)
            else:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def _ensure_dir(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.directory, name)

    def sweep_stale_tmp(self) -> List[str]:
        """Remove ``*.tmp`` siblings left by a crash mid-write.

        Atomic writes stage into ``<name>.<random>.tmp`` and
        ``os.replace`` over the target; a process killed between the
        two leaves the orphaned staging file behind.  Such orphans are
        never read (records are addressed by exact name), but they
        accumulate and confuse operators, so stores sweep them when a
        run opens.  Returns the removed paths.
        """
        removed = []
        if not os.path.isdir(self.directory):
            return removed
        for name in os.listdir(self.directory):
            if not name.endswith(".tmp"):
                continue
            path = self._path(name)
            try:
                os.unlink(path)
            except OSError:
                continue
            removed.append(path)
        return removed

    @contextlib.contextmanager
    def exclusive(self, timeout: Optional[float] = None):
        """Advisory single-owner lock over this store.

        Two processes replaying and appending to the same substore
        concurrently can interleave sequence numbers and overwrite
        each other's record batches; holding ``exclusive()`` for the
        duration of a run makes the second process wait (or fail
        typed, with a finite ``timeout``) instead.  The lock is
        advisory — cooperating writers (the engine, the certification
        service) opt in — and is released automatically by the kernel
        if the holder dies, so a SIGKILLed owner never wedges the
        store.
        """
        self._ensure_dir()
        with _flock(self._path(_OWNER_LOCK), timeout=timeout):
            yield self

    # -- header / fingerprint ---------------------------------------

    def write_header(self, fingerprint: Dict[str, Any]) -> None:
        self._ensure_dir()
        self.sweep_stale_tmp()
        _write_atomic_json(self._path("header.json"), {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
        })

    def load_header(self) -> Optional[Dict[str, Any]]:
        if not self.exists():
            return None
        self.sweep_stale_tmp()
        record = _read_checked_json(self._path("header.json"))
        if record.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"checkpoint {self.directory!r} uses journal version "
                f"{record.get('version')!r}; this build reads "
                f"{JOURNAL_VERSION}"
            )
        return record

    def check_fingerprint(self, fingerprint: Dict[str, Any]) -> None:
        """Refuse to resume a journal recorded by a different run."""
        header = self.load_header()
        if header is None:
            raise CheckpointError(
                f"checkpoint {self.directory!r} has no header to "
                "resume from"
            )
        recorded = header.get("fingerprint")
        if recorded != fingerprint:
            mismatched = sorted(
                key for key in set(recorded or {}) | set(fingerprint)
                if (recorded or {}).get(key) != fingerprint.get(key)
            )
            raise CheckpointError(
                f"checkpoint {self.directory!r} records a different "
                f"run (mismatched fields: {', '.join(mismatched)}); "
                "refusing to splice its verdicts into this one"
            )

    # -- append-only record batches ---------------------------------

    def _record_files(self, kind: str) -> List[Tuple[int, str]]:
        if not os.path.isdir(self.directory):
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _RECORD_NAME.match(name)
            if match and match.group(1) == kind:
                found.append((int(match.group(2)), self._path(name)))
        return sorted(found)

    def append_record(self, kind: str, payload: Dict[str, Any]) -> int:
        """Journal one batch; returns its sequence number.

        The sequence allocation (list existing, take max + 1, write)
        is serialised under a short advisory lock so two cooperating
        processes appending to the same store can never both claim the
        same number and silently overwrite each other's batch.
        """
        self._ensure_dir()
        with _flock(self._path(_APPEND_LOCK)):
            existing = self._record_files(kind)
            sequence = existing[-1][0] + 1 if existing else 0
            record = dict(payload)
            record["kind"] = kind
            record["sequence"] = sequence
            _write_atomic_json(
                self._path(f"{kind}-{sequence:06d}.json"), record)
        return sequence

    def load_records(self, kind: str,
                     tolerate_tail: bool = False
                     ) -> List[Dict[str, Any]]:
        """All batches of ``kind`` in append order (checksum-verified).

        With ``tolerate_tail`` a corrupt *last* record is quarantined
        (renamed ``<name>.corrupt``) and replay continues without it:
        a torn tail is what a crash racing bit-rot looks like, and the
        caller (the job-queue journal) can recover the lost event by
        re-deriving state — whereas a corrupt record in the *middle*
        of the journal is unambiguous damage and still raises
        :class:`CheckpointError`.
        """
        records = []
        files = self._record_files(kind)
        for position, (sequence, path) in enumerate(files):
            try:
                record = _read_checked_json(path)
                if record.get("sequence") != sequence:
                    raise CheckpointError(
                        f"checkpoint record {path!r} carries sequence "
                        f"{record.get('sequence')!r}, expected "
                        f"{sequence}"
                    )
            except CheckpointError:
                if tolerate_tail and position == len(files) - 1:
                    os.replace(path, path + ".corrupt")
                    break
                raise
            records.append(record)
        return records

    # -- named state files ------------------------------------------

    def write_state(self, name: str, payload: Dict[str, Any]) -> None:
        self._ensure_dir()
        _write_atomic_json(self._path(f"{name}.json"), dict(payload))

    def load_state(self, name: str) -> Optional[Dict[str, Any]]:
        path = self._path(f"{name}.json")
        if not os.path.isfile(path):
            return None
        return _read_checked_json(path)

    # -- engine verdict journal -------------------------------------

    def append_verdicts(self,
                        entries: Iterable[
                            Tuple[Sequence[Tuple[PauliString, int]],
                                  bool]]) -> None:
        """Journal one evaluation chunk's (pattern, verdict) pairs."""
        serialised = [[serialize_pattern(pattern), bool(verdict)]
                      for pattern, verdict in entries]
        if serialised:
            self.append_record("verdicts", {"entries": serialised})

    def load_verdicts(self) -> List[Tuple[Tuple[Tuple[PauliString, int],
                                                ...], bool]]:
        """Every journaled (pattern, verdict) pair, in append order."""
        entries = []
        for record in self.load_records("verdicts"):
            for item in record.get("entries", []):
                try:
                    pattern_data, verdict = item
                except (TypeError, ValueError) as exc:
                    raise CheckpointError(
                        f"malformed verdict entry {item!r} in "
                        f"{self.directory!r}"
                    ) from exc
                entries.append((deserialize_pattern(pattern_data),
                                bool(verdict)))
        return entries

    # -- completion marker ------------------------------------------

    def finalize(self, summary: Dict[str, Any]) -> None:
        self.write_state("final", {"complete": True,
                                   "summary": summary})

    def load_final(self) -> Optional[Dict[str, Any]]:
        return self.load_state("final")


def as_store(checkpoint) -> Optional[CheckpointStore]:
    """Coerce the public ``checkpoint=`` argument to a store.

    Accepts ``None``, a :class:`CheckpointStore`, or a path-like
    naming the run directory.
    """
    if checkpoint is None or isinstance(checkpoint, CheckpointStore):
        return checkpoint
    return CheckpointStore(os.fspath(checkpoint))
