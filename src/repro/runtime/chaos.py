"""Deterministic infrastructure-fault injection.

The analysis engine claims it survives hung workers, killed workers,
out-of-memory simulator runs, transient invariant failures and
corrupted checkpoints.  Claims about recovery are worthless untested
(the paper makes the same point about quantum recovery circuits), so
this module makes every one of those faults *injectable on demand*:

* a :class:`ChaosPlan` lists :class:`ChaosEvent`\\ s keyed by
  evaluation-chunk index and attempt number.  Process-level events
  (``kill``, ``hang``) fire inside pool workers only; exception-level
  events (``oom``, ``simulation_error``, ``verification_error``) fire
  wherever the evaluation runs, including the in-parent quarantine
  path when ``in_parent=True``.
* checkpoint-corruption helpers (:func:`truncate_checkpoint_record`,
  :func:`garble_checkpoint_record`, :func:`poison_checkpoint_verdict`)
  damage journal files the way real crashes and bit-rot do.

Everything is deterministic: events fire on exact (chunk, attempt)
coordinates, never on dice rolls, so the certification suite in
``tests/runtime`` replays each scenario exactly.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.exceptions import SimulationError, VerificationError
from repro.runtime.checkpoint import CheckpointStore

#: Event kinds that act on the worker process itself.
PROCESS_KINDS = ("kill", "hang")
#: Event kinds that act by raising from the evaluation.
EXCEPTION_KINDS = ("oom", "simulation_error", "verification_error")


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault.

    Args:
        kind: one of ``kill`` (SIGKILL the worker mid-chunk), ``hang``
            (sleep past the supervisor deadline), ``oom`` (raise
            ``MemoryError`` from the primary backend),
            ``simulation_error`` (raise
            :class:`~repro.exceptions.SimulationError`), or
            ``verification_error`` (make the invariant hook fail).
        chunk_index: the evaluation chunk to strike.
        attempts: attempt numbers on which to fire; default only the
            first attempt, so supervised retries recover.  ``None``
            fires on every attempt (the quarantine-path stressor).
        in_parent: let exception events fire during in-parent
            (serial or quarantine) evaluation too.  Process events
            never fire in the parent — chaos must not kill the test.
    """

    kind: str
    chunk_index: int
    attempts: Optional[Tuple[int, ...]] = (0,)
    in_parent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in PROCESS_KINDS + EXCEPTION_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")

    def matches(self, chunk_index: int, attempt: int) -> bool:
        if chunk_index != self.chunk_index:
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic set of infrastructure faults to inject.

    The plan is carried into fork-pool workers by inheritance (it
    lives on the evaluation context captured at fork time), so no
    pickling or side-channel is involved.
    """

    events: Tuple[ChaosEvent, ...] = ()
    hang_seconds: float = 3600.0

    @classmethod
    def single(cls, kind: str, chunk_index: int,
               attempts: Optional[Sequence[int]] = (0,),
               in_parent: bool = False,
               hang_seconds: float = 3600.0) -> "ChaosPlan":
        return cls(events=(ChaosEvent(
            kind, chunk_index,
            None if attempts is None else tuple(attempts),
            in_parent,
        ),), hang_seconds=hang_seconds)

    def _active(self, kinds: Sequence[str], chunk_index: int,
                attempt: int, in_worker: bool):
        for event in self.events:
            if event.kind not in kinds:
                continue
            if not event.matches(chunk_index, attempt):
                continue
            if not in_worker and not event.in_parent:
                continue
            yield event

    def on_chunk_start(self, chunk_index: int, attempt: int,
                       in_worker: bool) -> None:
        """Process-level chaos, called as a worker picks up a chunk."""
        for event in self._active(PROCESS_KINDS, chunk_index, attempt,
                                  in_worker):
            if not in_worker:  # pragma: no cover - guarded upstream
                continue
            if event.kind == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif event.kind == "hang":
                time.sleep(self.hang_seconds)

    def primary_backend_error(self, chunk_index: int, attempt: int,
                              in_worker: bool
                              ) -> Optional[BaseException]:
        """Exception to raise instead of running the primary backend."""
        for event in self._active(("oom", "simulation_error"),
                                  chunk_index, attempt, in_worker):
            if event.kind == "oom":
                return MemoryError(
                    f"chaos: simulated OOM on chunk {chunk_index} "
                    f"attempt {attempt}"
                )
            return SimulationError(
                f"chaos: simulated backend failure on chunk "
                f"{chunk_index} attempt {attempt}"
            )
        return None

    def invariant_error(self, chunk_index: int, attempt: int,
                        invariant_attempt: int, in_worker: bool
                        ) -> Optional[VerificationError]:
        """Transient invariant failure (fires on the first invariant
        attempt only, so retry-once recovers)."""
        if invariant_attempt > 0:
            return None
        for _ in self._active(("verification_error",), chunk_index,
                              attempt, in_worker):
            return VerificationError(
                f"chaos: transient invariant failure on chunk "
                f"{chunk_index} attempt {attempt}"
            )
        return None


# ---------------------------------------------------------------------------
# Checkpoint-corruption helpers (used by the certification suite)
# ---------------------------------------------------------------------------

def _pick_record(store: CheckpointStore, kind: str) -> str:
    files = store._record_files(kind)
    if not files:
        raise ValueError(
            f"no {kind!r} records to corrupt in {store.directory!r}"
        )
    return files[0][1]


def truncate_checkpoint_record(store: CheckpointStore,
                               kind: str = "verdicts",
                               keep_bytes: int = 20) -> str:
    """Cut a journal record short, as a crash mid-write would."""
    path = _pick_record(store, kind)
    with open(path, "r+", encoding="utf-8") as handle:
        handle.truncate(keep_bytes)
    return path


def garble_checkpoint_record(store: CheckpointStore,
                             kind: str = "verdicts") -> str:
    """Overwrite a journal record with syntactically broken JSON."""
    path = _pick_record(store, kind)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json!")
    return path


def poison_checkpoint_verdict(store: CheckpointStore) -> str:
    """Flip one journaled verdict without re-signing the record.

    This models silent bit-rot (or a buggy writer) inside the verdict
    cache: the JSON still parses, but the payload no longer matches
    its checksum, so resuming from it must fail the integrity check
    rather than replay the poisoned verdict.
    """
    path = _pick_record(store, "verdicts")
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    entries = record.get("entries", [])
    if not entries:
        raise ValueError(f"no verdict entries to poison in {path!r}")
    entries[0][1] = not entries[0][1]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle)
    return path
