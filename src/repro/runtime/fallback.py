"""Graceful backend degradation for fault-pattern evaluation.

The sparse simulator is the engine's workhorse, but it is also the
component most likely to blow up mid-campaign: a pathological fault
pattern can explode its term count into a ``MemoryError``, or an
unsupported operation can surface as a
:class:`~repro.exceptions.SimulationError`.  Losing a 10-hour sweep to
one chunk is exactly the failure mode the paper's recovery circuits
exist to avoid in hardware, so the software mirrors them:

* :class:`FallbackPolicy` re-evaluates a failing pattern down a
  *degradation ladder* — sparse, then dense statevector, then density
  matrix — converting each fallback's output back to a
  :class:`~repro.simulators.sparse.SparseState` so the caller's
  evaluator and invariant run unchanged.  Verdicts are therefore
  backend-independent (all three are exact simulators of the same
  unitary-plus-Pauli-fault physics); only cost degrades.
* invariant hooks get a *retry-once* shield: a
  :class:`~repro.exceptions.VerificationError` triggers one fresh
  re-simulation before being trusted, separating transient numerics
  (or injected chaos) from reproducible divergence.

Every degradation and transient retry is counted in a
:class:`FallbackRecord` that the engine folds into its
:class:`~repro.analysis.engine.EngineStats` — degraded chunks are
visible in reports, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    RuntimeIntegrityError,
    SimulationError,
    VerificationError,
)
from repro.runtime.chaos import ChaosPlan
from repro.simulators.sparse import SparseState

#: Exception types that trigger a step down the ladder.
DEGRADABLE = (MemoryError, SimulationError)


@dataclass
class FallbackRecord:
    """What the policy had to do to get one chunk's verdicts."""

    degraded: Dict[str, int] = field(default_factory=dict)
    invariant_retries: int = 0

    def note_degraded(self, backend: str) -> None:
        self.degraded[backend] = self.degraded.get(backend, 0) + 1

    def merge(self, other: "FallbackRecord") -> None:
        for backend, count in other.degraded.items():
            self.degraded[backend] = \
                self.degraded.get(backend, 0) + count
        self.invariant_retries += other.invariant_retries


@dataclass(frozen=True)
class FallbackPolicy:
    """The degradation ladder and invariant-retry contract.

    Args:
        ladder: backend names tried in order.  ``sparse`` is the
            primary; ``statevector`` densifies the run (bounded by
            ``max_dense_qubits``); ``density_matrix`` evolves the
            projector and re-extracts the pure state (bounded by
            ``max_density_qubits`` — it is O(4^n)).
        invariant_retries: fresh re-simulations granted to an
            invariant hook before its ``VerificationError`` is
            trusted as a real divergence.
        max_dense_qubits: statevector rung capacity.
        max_density_qubits: density-matrix rung capacity.
    """

    ladder: Tuple[str, ...] = ("sparse", "statevector",
                               "density_matrix")
    invariant_retries: int = 1
    max_dense_qubits: int = 20
    max_density_qubits: int = 10

    def __post_init__(self) -> None:
        unknown = [name for name in self.ladder
                   if name not in ("sparse", "statevector",
                                   "density_matrix")]
        if unknown:
            raise ValueError(
                f"unknown fallback backends: {unknown!r}"
            )

    # -- per-backend simulation -------------------------------------

    def _final_state(self, backend: str, gadget, initial_state,
                     pattern) -> SparseState:
        from repro.ft.gadget import apply_circuit_with_faults

        if backend == "sparse":
            state = initial_state.copy()
            apply_circuit_with_faults(state, gadget.circuit,
                                      list(pattern))
            return state
        if backend == "statevector":
            if initial_state.num_qubits > self.max_dense_qubits:
                raise SimulationError(
                    f"statevector fallback capped at "
                    f"{self.max_dense_qubits} qubits"
                )
            dense = initial_state.to_dense()
            apply_circuit_with_faults(dense, gadget.circuit,
                                      list(pattern))
            return SparseState.from_dense(dense)
        # density_matrix: evolve |psi><psi| exactly, then recover the
        # (unique, unit-eigenvalue) pure state.  The global phase of
        # the extracted eigenvector is arbitrary, which is fine: the
        # engine's evaluators are phase-insensitive by contract.
        from repro.circuits import gates as gate_lib
        from repro.circuits.circuit import GateOp
        from repro.exceptions import FaultToleranceError
        from repro.simulators.density_matrix import DensityMatrix

        if initial_state.num_qubits > self.max_density_qubits:
            raise SimulationError(
                f"density-matrix fallback capped at "
                f"{self.max_density_qubits} qubits"
            )
        rho = DensityMatrix.from_statevector(initial_state.to_dense())

        def apply_pauli(pauli) -> None:
            for qubit in range(pauli.num_qubits):
                x = pauli.x_bits[qubit]
                z = pauli.z_bits[qubit]
                if x and z:
                    rho.apply_gate(gate_lib.Y, [qubit])
                elif x:
                    rho.apply_gate(gate_lib.X, [qubit])
                elif z:
                    rho.apply_gate(gate_lib.Z, [qubit])

        by_point: Dict[int, list] = {}
        for pauli, after_op in pattern:
            by_point.setdefault(after_op, []).append(pauli)
        for pauli in by_point.get(-1, []):
            apply_pauli(pauli)
        for index, op in enumerate(gadget.circuit.operations):
            if not isinstance(op, GateOp) or op.condition is not None:
                raise FaultToleranceError(
                    "gadget circuits must be unconditional and unitary"
                )
            rho.apply_gate(op.gate, op.qubits)
            for pauli in by_point.get(index, []):
                apply_pauli(pauli)
        values, vectors = np.linalg.eigh(rho.matrix)
        return SparseState.from_dense(vectors[:, int(np.argmax(values))])

    def _checked_state(self, backend: str, gadget, initial_state,
                       pattern, invariant, record: FallbackRecord,
                       chaos: Optional[ChaosPlan], chunk_index: int,
                       attempt: int, in_worker: bool) -> SparseState:
        """Simulate on one rung with the invariant retry shield."""
        invariant_attempt = 0
        while True:
            if backend == "sparse" and chaos is not None \
                    and invariant_attempt == 0:
                injected = chaos.primary_backend_error(
                    chunk_index, attempt, in_worker)
                if injected is not None:
                    raise injected
            state = self._final_state(backend, gadget, initial_state,
                                      pattern)
            if invariant is None:
                return state
            try:
                if chaos is not None:
                    injected = chaos.invariant_error(
                        chunk_index, attempt, invariant_attempt,
                        in_worker)
                    if injected is not None:
                        raise injected
                invariant(state)
                return state
            except VerificationError:
                if invariant_attempt >= self.invariant_retries:
                    raise
                invariant_attempt += 1
                record.invariant_retries += 1

    # -- public entry point -----------------------------------------

    def evaluate(self, gadget, initial_state,
                 evaluator: Callable[[SparseState], bool],
                 pattern: Sequence, *,
                 invariant: Optional[
                     Callable[[SparseState], None]] = None,
                 record: Optional[FallbackRecord] = None,
                 chaos: Optional[ChaosPlan] = None,
                 chunk_index: int = 0,
                 attempt: int = 0,
                 in_worker: bool = False) -> bool:
        """One pattern's verdict, degrading down the ladder on error.

        ``MemoryError``/``SimulationError`` step to the next rung;
        exhausting the ladder raises
        :class:`~repro.exceptions.RuntimeIntegrityError` chaining the
        last backend failure.  ``VerificationError`` (a *checked*
        divergence, not a capacity problem) propagates after the
        retry shield — degrading backends cannot launder it.
        """
        if record is None:
            record = FallbackRecord()
        last_error: Optional[BaseException] = None
        for rung, backend in enumerate(self.ladder):
            try:
                state = self._checked_state(
                    backend, gadget, initial_state, pattern,
                    invariant, record, chaos, chunk_index, attempt,
                    in_worker)
            except DEGRADABLE as exc:
                last_error = exc
                continue
            if rung > 0:
                record.note_degraded(backend)
            return bool(evaluator(state))
        raise RuntimeIntegrityError(
            f"every backend in {self.ladder!r} failed for a "
            f"fault pattern of weight {len(tuple(pattern))}"
        ) from last_error
