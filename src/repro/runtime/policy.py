"""The bundle the engine threads through a resilient run.

:class:`RuntimePolicy` groups the three orthogonal resilience
mechanisms — worker supervision, backend fallback and (for the
certification suite) chaos injection — into one object the public
``runtime=`` keyword accepts.  ``RuntimePolicy()`` is the production
default: generous supervision deadlines, the full degradation ladder,
no chaos.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.chaos import ChaosPlan
from repro.runtime.fallback import FallbackPolicy
from repro.runtime.supervisor import SupervisorConfig


@dataclass(frozen=True)
class RuntimePolicy:
    """How a run should survive its own infrastructure.

    Args:
        supervisor: pool supervision knobs (deadlines, retries,
            backoff).
        fallback: the backend degradation ladder; ``None`` disables
            degradation (errors escape to the supervisor's retry
            path instead).
        chaos: deterministic fault injection; production runs leave
            this ``None``.
    """

    supervisor: SupervisorConfig = field(
        default_factory=SupervisorConfig)
    fallback: Optional[FallbackPolicy] = field(
        default_factory=FallbackPolicy)
    chaos: Optional[ChaosPlan] = None


def resolve_policy(runtime: Optional[RuntimePolicy]) -> RuntimePolicy:
    """The engine's single place to default the ``runtime=`` knob."""
    return runtime if runtime is not None else RuntimePolicy()
