"""Supervised fork-pool execution with deadlines, retries, quarantine.

``multiprocessing.Pool`` alone fails the resilience bar in two ways:
a worker that is SIGKILLed mid-task leaves its task unfinished forever
(the pool replaces the process but never re-queues the work), and a
worker stuck in a pathological simulation blocks ``imap`` with no
recourse.  The :class:`Supervisor` closes both holes with one
mechanism — a per-chunk wall-clock deadline:

* every chunk is dispatched with ``apply_async`` and watched; a chunk
  that misses its deadline (hung *or* silently dead worker) triggers
  a pool restart, re-queues innocent in-flight chunks at their current
  attempt, and re-queues the offender with an incremented attempt;
* failed or expired attempts are retried with exponential backoff plus
  deterministic jitter, up to ``max_retries``;
* a chunk that exhausts its retries is **quarantined**: evaluated
  in the parent process as a last resort (a fork-pool pathology cannot
  follow it there).  If even that fails, the run terminates with
  :class:`~repro.exceptions.RuntimeIntegrityError` — a supervised run
  returns complete results or a typed error, never a silent gap;
* ``KeyboardInterrupt`` tears the pool down cleanly and propagates, so
  callers (the engine) can flush a final checkpoint.

The supervisor is workload-agnostic: it schedules integer-indexed
tasks through a picklable ``worker_fn`` and reports what happened in a
:class:`SupervisionReport`.  The analysis engine is its only in-repo
client, but nothing here knows about fault patterns.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import RuntimeIntegrityError


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs.

    The defaults are sized for real campaigns (generous deadline so a
    legitimately heavy chunk is never shot); the chaos suite shrinks
    them to keep fault-injection tests fast.
    """

    chunk_deadline_seconds: float = 600.0
    max_retries: int = 2
    backoff_base_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    poll_interval_seconds: float = 0.02
    seed: int = 0

    def backoff_delay(self, attempt: int,
                      rng: np.random.Generator) -> float:
        """Exponential backoff with jitter before retry ``attempt``."""
        base = self.backoff_base_seconds * \
            self.backoff_factor ** max(attempt - 1, 0)
        return base * (1.0 + self.backoff_jitter * float(rng.random()))


@dataclass
class SupervisionReport:
    """Everything the supervisor had to do beyond plain scheduling."""

    chunks: int = 0
    retries: int = 0
    expired_chunks: int = 0
    worker_errors: int = 0
    pool_restarts: int = 0
    quarantined: List[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (self.retries == 0 and self.expired_chunks == 0
                and self.worker_errors == 0 and not self.quarantined)


@dataclass
class _InFlight:
    handle: Any
    deadline: float
    attempt: int


class Supervisor:
    """Run indexed tasks through a supervised fork pool."""

    def __init__(self, config: Optional[SupervisorConfig] = None
                 ) -> None:
        self.config = config or SupervisorConfig()

    def run(self,
            num_tasks: int,
            make_task: Callable[[int, int], Any],
            worker_fn: Callable[[Any], Any],
            workers: int,
            on_result: Callable[[int, Any], None],
            local_eval: Callable[[int], Any]) -> SupervisionReport:
        """Schedule tasks 0..num_tasks-1 until every one has a result.

        Args:
            make_task: builds the picklable payload for (index,
                attempt) — the attempt number rides along so chaos
                injection and logging can tell retries apart.
            worker_fn: module-level function executed in pool workers.
            workers: pool size (must be >= 1; fork must be available).
            on_result: called exactly once per index, in completion
                order, with the worker's return value.
            local_eval: in-parent fallback used to quarantine a chunk
                that exhausted its retries.
        """
        config = self.config
        report = SupervisionReport(chunks=num_tasks)
        if num_tasks == 0:
            return report
        rng = np.random.default_rng(config.seed)
        context = multiprocessing.get_context("fork")
        pool = context.Pool(processes=workers)
        pending: deque = deque((i, 0) for i in range(num_tasks))
        delayed: List[Tuple[float, int, int]] = []
        inflight: Dict[int, _InFlight] = {}
        remaining = num_tasks

        def _quarantine(index: int, attempt: int,
                        cause: Optional[BaseException]) -> None:
            nonlocal remaining
            report.quarantined.append(index)
            try:
                result = local_eval(index)
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                raise RuntimeIntegrityError(
                    f"chunk {index} failed {attempt} supervised "
                    f"attempt(s) and the in-parent quarantine "
                    f"evaluation also failed; no correct result is "
                    f"available"
                ) from (exc if cause is None else cause)
            on_result(index, result)
            remaining -= 1

        def _requeue(index: int, attempt: int,
                     cause: Optional[BaseException]) -> None:
            next_attempt = attempt + 1
            if next_attempt > config.max_retries:
                _quarantine(index, next_attempt, cause)
                return
            report.retries += 1
            ready_at = time.monotonic() + \
                config.backoff_delay(next_attempt, rng)
            delayed.append((ready_at, index, next_attempt))

        try:
            while remaining > 0:
                now = time.monotonic()
                for entry in list(delayed):
                    if entry[0] <= now:
                        delayed.remove(entry)
                        pending.append((entry[1], entry[2]))
                while pending and len(inflight) < workers:
                    index, attempt = pending.popleft()
                    handle = pool.apply_async(
                        worker_fn, (make_task(index, attempt),))
                    inflight[index] = _InFlight(
                        handle, time.monotonic()
                        + config.chunk_deadline_seconds, attempt)
                finished = [i for i, f in inflight.items()
                            if f.handle.ready()]
                for index in finished:
                    flight = inflight.pop(index)
                    try:
                        result = flight.handle.get()
                    except KeyboardInterrupt:
                        raise
                    except BaseException as exc:
                        report.worker_errors += 1
                        _requeue(index, flight.attempt, exc)
                    else:
                        on_result(index, result)
                        remaining -= 1
                now = time.monotonic()
                expired = [i for i, f in inflight.items()
                           if f.deadline <= now]
                if expired:
                    # A missed deadline means a hung or silently dead
                    # worker; either way the pool's state is suspect.
                    # Restart it, punish the expired chunks with a
                    # retry, and re-queue innocent in-flight chunks at
                    # their current attempt.
                    report.expired_chunks += len(expired)
                    report.pool_restarts += 1
                    pool.terminate()
                    pool.join()
                    pool = context.Pool(processes=workers)
                    for index in list(inflight):
                        flight = inflight.pop(index)
                        if index in expired:
                            _requeue(index, flight.attempt, None)
                        else:
                            pending.appendleft((index, flight.attempt))
                elif not finished and remaining > 0:
                    time.sleep(config.poll_interval_seconds)
        finally:
            pool.terminate()
            pool.join()
        return report
