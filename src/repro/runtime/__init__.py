"""Resilient execution runtime: checkpoint, supervise, degrade, prove.

The paper's thesis is computing reliably on unreliable hardware; this
package applies the same discipline to the *analysis software*: a
threshold campaign must survive hung or killed workers, simulator
out-of-memory, Ctrl-C and half-written files — and must prove it.

* :mod:`repro.runtime.checkpoint` — crash-safe journals
  (:class:`CheckpointStore`): atomic write-tmp-then-rename records
  with integrity checksums and run fingerprints, powering
  ``checkpoint=``/``resume=`` on every engine entry point.
* :mod:`repro.runtime.supervisor` — :class:`Supervisor`: per-chunk
  deadlines over the fork pool, bounded retry with exponential
  backoff + jitter, pool restarts, in-parent quarantine.
* :mod:`repro.runtime.fallback` — :class:`FallbackPolicy`: sparse →
  statevector → density-matrix degradation on ``MemoryError`` /
  ``SimulationError``, and retry-once on ``VerificationError``.
* :mod:`repro.runtime.chaos` — deterministic infrastructure-fault
  injection plus checkpoint-corruption helpers; the certification
  suite in ``tests/runtime`` drives every scenario to "correct result
  or typed :class:`~repro.exceptions.RuntimeIntegrityError`".
* :mod:`repro.runtime.policy` — :class:`RuntimePolicy`, the bundle
  the engine's ``runtime=`` keyword accepts.
"""

from repro.runtime.chaos import (
    ChaosEvent,
    ChaosPlan,
    garble_checkpoint_record,
    poison_checkpoint_verdict,
    truncate_checkpoint_record,
)
from repro.runtime.checkpoint import (
    DEFAULT_ROOT,
    CheckpointStore,
    as_store,
    deserialize_pattern,
    serialize_pattern,
)
from repro.runtime.fallback import FallbackPolicy, FallbackRecord
from repro.runtime.policy import RuntimePolicy, resolve_policy
from repro.runtime.supervisor import (
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
)

__all__ = [
    "ChaosEvent",
    "ChaosPlan",
    "CheckpointStore",
    "DEFAULT_ROOT",
    "FallbackPolicy",
    "FallbackRecord",
    "RuntimePolicy",
    "SupervisionReport",
    "Supervisor",
    "SupervisorConfig",
    "as_store",
    "deserialize_pattern",
    "garble_checkpoint_record",
    "poison_checkpoint_verdict",
    "resolve_policy",
    "serialize_pattern",
    "truncate_checkpoint_record",
]
