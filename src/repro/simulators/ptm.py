"""Pauli-transfer-matrix composition for Pauli-channel-only noise.

In the Pauli basis a density matrix becomes a real vector of
expectation values, a unitary becomes a real orthogonal matrix and a
stochastic Pauli channel becomes a *diagonal* matrix — so a whole
noisy circuit layer composes as one matrix product instead of a Kraus
sum (the quantumsim-style picture).  The engine's sampled-fault paths
don't need this (each trial is a pure state), but the PTM form is the
natural representation for channel-level reasoning: averaging over
fault ensembles, checking that a twirled coherent error really equals
its stochastic counterpart, and cross-validating the batched sparse
path against an exact mixed-state evolution.

Conventions: the n-qubit Pauli basis is ordered by base-4 digits of
the label with qubit 0 as the most significant digit (``I=0, X=1,
Y=2, Z=3``), matching the big-endian qubit convention of every
simulator in :mod:`repro.simulators`.  PTMs act on normalised Pauli
vectors ``x_i = Tr(P_i rho) / sqrt(d)`` so unitary channels are
orthogonal matrices.
"""

from __future__ import annotations

from functools import reduce
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.equivalence import embed_operator
from repro.exceptions import SimulationError
from repro.simulators.channels import KrausChannel, PauliChannel

_LETTERS = "IXYZ"
_SINGLE = {
    "I": np.eye(2, dtype=np.complex128),
    "X": np.array([[0, 1], [1, 0]], dtype=np.complex128),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=np.complex128),
    "Z": np.array([[1, 0], [0, -1]], dtype=np.complex128),
}
_MAX_PTM_QUBITS = 6


def pauli_labels(num_qubits: int) -> List[str]:
    """All 4^n Pauli labels in canonical (base-4, big-endian) order."""
    if num_qubits < 1:
        raise SimulationError("need at least one qubit")
    labels: List[str] = []
    for index in range(4**num_qubits):
        digits = []
        value = index
        for _ in range(num_qubits):
            digits.append(_LETTERS[value % 4])
            value //= 4
        labels.append("".join(reversed(digits)))
    return labels


def pauli_matrix(label: str) -> np.ndarray:
    """The dense matrix of one Pauli label (qubit 0 most significant)."""
    matrix = np.ones((1, 1), dtype=np.complex128)
    for letter in label:
        if letter not in _SINGLE:
            raise SimulationError(f"invalid Pauli letter {letter!r}")
        matrix = np.kron(matrix, _SINGLE[letter])
    return matrix


def pauli_basis(num_qubits: int) -> np.ndarray:
    """Stacked (4^n, d, d) array of the canonical Pauli matrices."""
    _check_width(num_qubits)
    return np.stack([pauli_matrix(label)
                     for label in pauli_labels(num_qubits)])


def ptm_from_unitary(unitary: np.ndarray) -> np.ndarray:
    """R[i, j] = Tr(P_i U P_j U^dag) / d — a real orthogonal matrix."""
    unitary = np.asarray(unitary, dtype=np.complex128)
    dim = unitary.shape[0]
    num_qubits = _qubits_for_dim(dim)
    basis = pauli_basis(num_qubits)
    rotated = unitary @ basis @ unitary.conj().T
    overlap = np.einsum("iab,jba->ij", basis, rotated) / dim
    return np.real_if_close(overlap).real


def ptm_from_kraus(channel: KrausChannel) -> np.ndarray:
    """R[i, j] = sum_k Tr(P_i A_k P_j A_k^dag) / d."""
    dim = 2**channel.num_qubits
    basis = pauli_basis(channel.num_qubits)
    result = np.zeros((dim * dim, dim * dim), dtype=np.complex128)
    for op in channel.operators:
        moved = op @ basis @ op.conj().T
        result += np.einsum("iab,jba->ij", basis, moved)
    return np.real_if_close(result / dim).real


def pauli_channel_ptm(channel: PauliChannel) -> np.ndarray:
    """The diagonal PTM of a stochastic Pauli channel.

    Basis Pauli Q picks up ``sum_P p(P) * sign(P, Q)`` where the sign
    is +1 when P and Q commute and -1 when they anticommute — no Kraus
    sum needed, which is the whole point of the PTM representation for
    Pauli-only noise.
    """
    labels = pauli_labels(channel.num_qubits)
    diagonal = np.full(len(labels), channel.identity_probability)
    for probability, fault in channel.terms:
        signs = np.array(
            [_commutation_sign(fault, label) for label in labels],
            dtype=float,
        )
        diagonal = diagonal + probability * signs
    return np.diag(diagonal)


def gate_ptm(matrix: np.ndarray, qubits: Sequence[int],
             num_qubits: int) -> np.ndarray:
    """PTM of a k-qubit gate embedded into an n-qubit register."""
    _check_width(num_qubits)
    return ptm_from_unitary(
        embed_operator(matrix, list(qubits), num_qubits)
    )


def compose_ptms(ptms: Sequence[np.ndarray]) -> np.ndarray:
    """Compose channel PTMs, first-applied first: R = R_k ... R_2 R_1."""
    ptms = list(ptms)
    if not ptms:
        raise SimulationError("compose_ptms needs at least one PTM")
    return reduce(lambda acc, ptm: ptm @ acc, ptms)


def circuit_ptm(circuit: Circuit,
                channel: Optional[PauliChannel] = None) -> np.ndarray:
    """PTM of a unitary circuit, optionally with a single-qubit Pauli
    channel applied to every touched qubit after each gate (the
    standard circuit-level stochastic noise picture)."""
    _check_width(circuit.num_qubits)
    if circuit.has_measurements:
        raise SimulationError("circuit_ptm handles unitary circuits only")
    pieces: List[np.ndarray] = []
    for op in circuit.operations:
        if not isinstance(op, GateOp) or op.condition is not None:
            raise SimulationError("conditioned gate in unitary context")
        pieces.append(
            gate_ptm(op.gate.matrix, op.qubits, circuit.num_qubits)
        )
        if channel is not None:
            if channel.num_qubits != 1:
                raise SimulationError(
                    "circuit_ptm noise must be a single-qubit channel"
                )
            noise_ptm = pauli_channel_ptm(channel)
            for qubit in op.qubits:
                pieces.append(
                    lift_single_qubit_ptm(noise_ptm, qubit,
                                          circuit.num_qubits)
                )
    if not pieces:
        size = 4**circuit.num_qubits
        return np.eye(size)
    return compose_ptms(pieces)


def lift_single_qubit_ptm(ptm: np.ndarray, qubit: int,
                          num_qubits: int) -> np.ndarray:
    """Embed a single-qubit PTM as I (x) ... (x) R (x) ... (x) I.

    Valid for PTMs whose action factorises over tensor slots (every
    single-qubit channel PTM does); the embedding is a Kronecker
    product in the canonical label order.
    """
    _check_width(num_qubits)
    if not 0 <= qubit < num_qubits:
        raise SimulationError(f"qubit {qubit} out of range")
    identity = np.eye(4)
    factors = [ptm if q == qubit else identity
               for q in range(num_qubits)]
    return reduce(np.kron, factors)


def state_to_pauli_vector(rho: np.ndarray) -> np.ndarray:
    """Normalised Pauli vector x_i = Tr(P_i rho) / sqrt(d)."""
    rho = np.asarray(rho, dtype=np.complex128)
    num_qubits = _qubits_for_dim(rho.shape[0])
    basis = pauli_basis(num_qubits)
    vector = np.einsum("iab,ba->i", basis, rho) / np.sqrt(rho.shape[0])
    return np.real_if_close(vector).real


def pauli_vector_to_state(vector: np.ndarray,
                          num_qubits: int) -> np.ndarray:
    """Inverse of :func:`state_to_pauli_vector`."""
    _check_width(num_qubits)
    basis = pauli_basis(num_qubits)
    dim = 2**num_qubits
    vector = np.asarray(vector, dtype=float)
    if vector.shape != (dim * dim,):
        raise SimulationError(
            f"Pauli vector length {vector.shape} does not match "
            f"{num_qubits} qubits"
        )
    return np.einsum("i,iab->ab", vector, basis) / np.sqrt(dim)


def apply_ptm(ptm: np.ndarray, vector: np.ndarray) -> np.ndarray:
    return np.asarray(ptm) @ np.asarray(vector)


def _commutation_sign(a: str, b: str) -> int:
    """+1 if the Pauli labels commute, -1 if they anticommute."""
    if len(a) != len(b):
        raise SimulationError("label length mismatch")
    anticommutations = sum(
        1 for x, y in zip(a, b)
        if x != "I" and y != "I" and x != y
    )
    return -1 if anticommutations % 2 else 1


def _qubits_for_dim(dim: int) -> int:
    num_qubits = int(round(np.log2(dim)))
    if 2**num_qubits != dim:
        raise SimulationError(f"dimension {dim} is not a power of two")
    _check_width(num_qubits)
    return num_qubits


def _check_width(num_qubits: int) -> None:
    if not 1 <= num_qubits <= _MAX_PTM_QUBITS:
        raise SimulationError(
            f"PTM toolkit supports 1..{_MAX_PTM_QUBITS} qubits, got "
            f"{num_qubits}"
        )
