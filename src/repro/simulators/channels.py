"""Quantum noise channels in Kraus form.

The paper's error model charges a probability p of failure "per gate,
per input bit, and per delay line"; each failure is modelled here as a
Pauli channel.  Channels are used two ways:

* exactly, by the :class:`~repro.simulators.density_matrix.
  DensityMatrix` simulator on small systems;
* stochastically, by the fault-injection engine in
  :mod:`repro.noise.injection`, which samples one Kraus/Pauli term per
  fault location (the standard Monte-Carlo unravelling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError

_ATOL = 1e-8


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators on ``num_qubits`` qubits."""

    name: str
    num_qubits: int
    operators: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        dim = 2**self.num_qubits
        total = np.zeros((dim, dim), dtype=np.complex128)
        frozen: List[np.ndarray] = []
        for op in self.operators:
            op = np.asarray(op, dtype=np.complex128)
            if op.shape != (dim, dim):
                raise SimulationError(
                    f"channel {self.name}: Kraus operator shape {op.shape} "
                    f"does not match {self.num_qubits} qubits"
                )
            total += op.conj().T @ op
            op.setflags(write=False)
            frozen.append(op)
        if not np.allclose(total, np.eye(dim), atol=1e-6):
            raise SimulationError(
                f"channel {self.name}: Kraus operators do not satisfy the "
                "completeness relation"
            )
        object.__setattr__(self, "operators", tuple(frozen))

    def apply_to_density(self, rho: np.ndarray,
                         full_operators: Sequence[np.ndarray]) -> np.ndarray:
        """rho -> sum_k K_k rho K_k^dagger using pre-embedded operators."""
        result = np.zeros_like(rho)
        for op in full_operators:
            result += op @ rho @ op.conj().T
        return result


@dataclass(frozen=True)
class PauliChannel:
    """A stochastic Pauli channel: apply Pauli P_k with probability p_k.

    Attributes:
        name: display name.
        num_qubits: arity.
        terms: list of (probability, pauli-label) pairs; an implicit
            identity term absorbs the remaining probability mass.
    """

    name: str
    num_qubits: int
    terms: Tuple[Tuple[float, str], ...]

    def __post_init__(self) -> None:
        total = 0.0
        for probability, label in self.terms:
            if probability < -_ATOL or probability > 1 + _ATOL:
                raise SimulationError(
                    f"channel {self.name}: invalid probability {probability}"
                )
            if len(label) != self.num_qubits:
                raise SimulationError(
                    f"channel {self.name}: label {label!r} has wrong length"
                )
            total += probability
        if total > 1 + 1e-6:
            raise SimulationError(
                f"channel {self.name}: probabilities sum to {total} > 1"
            )

    @property
    def identity_probability(self) -> float:
        return max(0.0, 1.0 - sum(p for p, _ in self.terms))

    def sample(self, rng: np.random.Generator) -> Optional[str]:
        """Draw one Pauli label, or None for the identity outcome."""
        draw = rng.random()
        accumulated = 0.0
        for probability, label in self.terms:
            accumulated += probability
            if draw < accumulated:
                return label
        return None

    def enumerate_faults(self) -> List[Tuple[float, str]]:
        """All non-identity (probability, label) terms."""
        return [term for term in self.terms if term[1].strip("I")]

    def to_kraus(self) -> KrausChannel:
        """Exact Kraus form of the stochastic Pauli channel."""
        operators: List[np.ndarray] = []
        identity = self.identity_probability
        dim = 2**self.num_qubits
        if identity > _ATOL:
            operators.append(math.sqrt(identity) * np.eye(dim))
        for probability, label in self.terms:
            if probability <= _ATOL:
                continue
            matrix = PauliString.from_label(label).matrix()
            operators.append(math.sqrt(probability) * matrix)
        return KrausChannel(self.name, self.num_qubits, tuple(operators))


def depolarizing(p: float, num_qubits: int = 1) -> PauliChannel:
    """Uniform depolarizing channel of strength p.

    With probability p one of the 4^n - 1 non-identity Paulis is
    applied, each equally likely.  This is the error model used by all
    the paper-style threshold estimates in :mod:`repro.analysis`.
    """
    _check_probability(p)
    labels = _nonidentity_labels(num_qubits)
    share = p / len(labels)
    return PauliChannel(
        f"depolarizing({p})", num_qubits,
        tuple((share, label) for label in labels),
    )


def bit_flip(p: float) -> PauliChannel:
    """X with probability p — the only error a repetition code fights."""
    _check_probability(p)
    return PauliChannel(f"bit_flip({p})", 1, ((p, "X"),))


def phase_flip(p: float) -> PauliChannel:
    """Z with probability p — harmless on the paper's classical ancilla."""
    _check_probability(p)
    return PauliChannel(f"phase_flip({p})", 1, ((p, "Z"),))


def bit_phase_flip(p: float) -> PauliChannel:
    """Y with probability p."""
    _check_probability(p)
    return PauliChannel(f"bit_phase_flip({p})", 1, ((p, "Y"),))


def pauli_xz(px: float, pz: float) -> PauliChannel:
    """Independent-style channel applying X w.p. px and Z w.p. pz
    (single-draw approximation: X, Z or Y = both)."""
    _check_probability(px)
    _check_probability(pz)
    p_y = px * pz
    return PauliChannel(
        f"pauli_xz({px},{pz})", 1,
        ((px * (1 - pz), "X"), (pz * (1 - px), "Z"), (p_y, "Y")),
    )


def dephasing(p: float) -> KrausChannel:
    """Full dephasing interpolation: rho -> (1-p) rho + p diag(rho).

    At p = 1 this is the complete phase-randomisation the paper invokes
    for "fully-quantum teleportation", where control qubits dephase
    before being used.
    """
    _check_probability(p)
    zero = np.array([[1, 0], [0, 0]], dtype=np.complex128)
    one = np.array([[0, 0], [0, 1]], dtype=np.complex128)
    operators = (
        math.sqrt(1 - p) * np.eye(2),
        math.sqrt(p) * zero,
        math.sqrt(p) * one,
    )
    return KrausChannel(f"dephasing({p})", 1, operators)


def over_rotation(axis: str, theta: float) -> KrausChannel:
    """Coherent over-rotation: the unitary exp(-i theta/2 P_axis).

    A systematic calibration error — every application of the affected
    gate rotates each touched qubit a little too far.  The channel has
    a single Kraus operator (it is unitary, hence trivially CPTP); it
    is *not* a stochastic Pauli channel, which is exactly why
    :class:`repro.noise.structured.CoherentOverRotationModel` routes
    through the density-matrix / state-vector backends instead of the
    Pauli sampling engine.  Its Pauli twirl is
    :func:`twirled_over_rotation`.
    """
    factories = {"X": gates.rx, "Y": gates.ry, "Z": gates.rz}
    if axis not in factories:
        raise SimulationError(
            f"over-rotation axis must be X, Y or Z, got {axis!r}"
        )
    matrix = factories[axis](theta).matrix
    return KrausChannel(f"over_rotation({axis},{theta})", 1, (matrix,))


def twirled_over_rotation(axis: str, theta: float) -> PauliChannel:
    """Pauli twirl of :func:`over_rotation`: P_axis w.p. sin^2(theta/2).

    Twirling discards the coherent (off-diagonal) part of the error,
    keeping only its incoherent weight — the standard stochastic
    approximation whose gap from the exact unitary channel measures the
    cost of coherence.
    """
    if axis not in ("X", "Y", "Z"):
        raise SimulationError(
            f"over-rotation axis must be X, Y or Z, got {axis!r}"
        )
    probability = math.sin(theta / 2.0) ** 2
    return PauliChannel(
        f"twirled_over_rotation({axis},{theta})", 1,
        ((probability, axis),),
    )


def amplitude_damping(gamma: float) -> KrausChannel:
    """Energy relaxation with decay probability gamma."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=np.complex128)
    return KrausChannel(f"amplitude_damping({gamma})", 1, (k0, k1))


def _nonidentity_labels(num_qubits: int) -> List[str]:
    letters = "IXYZ"
    labels: List[str] = []
    for index in range(4**num_qubits):
        label = []
        value = index
        for _ in range(num_qubits):
            label.append(letters[value % 4])
            value //= 4
        text = "".join(label)
        if text.strip("I"):
            labels.append(text)
    return labels


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"probability {p} outside [0, 1]")
