"""Dense state-vector simulation.

:class:`StateVector` stores the amplitudes of an n-qubit register in
big-endian order (qubit 0 is the most significant bit of the index, so
``state[0b10]`` on two qubits is the amplitude of |1>|0>).  Gates are
applied by tensor contraction, which keeps the cost at
O(2^n * 2^k) per k-qubit gate.

Qubit allocation and release (:meth:`StateVector.allocate`,
:meth:`StateVector.release`) let fault-tolerant gadgets use fresh
ancilla blocks and drop them once they are verifiably disentangled,
keeping Steane-code simulations inside a laptop's memory budget.

:class:`StatevectorSimulator` executes full circuits, including
single-computer measurements and classically-conditioned gates — the
operations an *ensemble* machine forbids — so it doubles as the
reference "single quantum computer" the paper contrasts the ensemble
model against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import (
    Circuit,
    GateOp,
    MeasureOp,
    ResetOp,
)
from repro.circuits.gates import Gate
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError

_ATOL = 1e-9


class StateVector:
    """Amplitudes of a pure n-qubit state with mutable register size."""

    def __init__(self, num_qubits: int,
                 amplitudes: Optional[np.ndarray] = None) -> None:
        if num_qubits < 0:
            raise SimulationError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        if amplitudes is None:
            data = np.zeros(2**num_qubits, dtype=np.complex128)
            data[0] = 1.0
        else:
            data = np.asarray(amplitudes, dtype=np.complex128).reshape(-1)
            if data.shape[0] != 2**num_qubits:
                raise SimulationError(
                    f"amplitude vector has length {data.shape[0]}, "
                    f"expected {2**num_qubits}"
                )
            norm = np.linalg.norm(data)
            if abs(norm - 1.0) > 1e-6:
                raise SimulationError(
                    f"state vector is not normalised (norm {norm:.6f})"
                )
        self._data = data

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_basis_state(cls, bits: Sequence[int]) -> "StateVector":
        """|b0 b1 ... b_{n-1}> with qubit 0 the leftmost bit."""
        index = 0
        for bit in bits:
            index = (index << 1) | (bit & 1)
        state = cls(len(bits))
        state._data[0] = 0.0
        state._data[index] = 1.0
        return state

    @classmethod
    def from_amplitudes(cls, amplitudes: Sequence[complex]) -> "StateVector":
        data = np.asarray(amplitudes, dtype=np.complex128)
        num_qubits = int(round(math.log2(data.shape[0])))
        if 2**num_qubits != data.shape[0]:
            raise SimulationError("amplitude length is not a power of two")
        norm = np.linalg.norm(data)
        if norm < _ATOL:
            raise SimulationError("cannot normalise the zero vector")
        return cls(num_qubits, data / norm)

    def copy(self) -> "StateVector":
        clone = StateVector(self.num_qubits)
        clone._data = self._data.copy()
        return clone

    # -- access -----------------------------------------------------------

    @property
    def amplitudes(self) -> np.ndarray:
        """Read-only view of the amplitude vector."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    def amplitude(self, bits: Sequence[int]) -> complex:
        """Amplitude of the computational basis state |b0...b_{n-1}>."""
        index = 0
        for bit in bits:
            index = (index << 1) | (bit & 1)
        return complex(self._data[index])

    # -- unitary evolution -------------------------------------------------

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply a gate in place to the listed qubits (gate order)."""
        self.apply_matrix(gate.matrix, qubits)

    def apply_matrix(self, matrix: np.ndarray,
                     qubits: Sequence[int]) -> None:
        """Apply a unitary matrix to the listed qubits in place."""
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        for qubit in qubits:
            self._check_qubit(qubit)
        if len(set(qubits)) != k:
            raise SimulationError(f"duplicate qubits in {qubits}")
        n = self.num_qubits
        tensor = self._data.reshape((2,) * n)
        gate_tensor = matrix.reshape((2,) * (2 * k))
        # Contract the gate's input legs with the state's qubit axes.
        moved = np.tensordot(gate_tensor, tensor,
                             axes=(list(range(k, 2 * k)), list(qubits)))
        # tensordot puts the k output legs first; restore axis order.
        order = list(qubits) + [q for q in range(n) if q not in qubits]
        inverse = np.argsort(order)
        self._data = np.transpose(moved, inverse).reshape(-1)

    def apply_pauli(self, pauli: PauliString) -> None:
        """Apply a Pauli string (fault injection fast-path)."""
        if pauli.num_qubits != self.num_qubits:
            raise SimulationError("PauliString size mismatch")
        from repro.circuits import gates as gate_lib

        for qubit in pauli.support():
            kind = pauli.kind_at(qubit)
            self.apply_gate(gate_lib.PAULI_GATES[kind], [qubit])
        offset = pauli.phase_offset()
        if offset:
            self._data *= 1j**offset

    def apply_circuit(self, circuit: Circuit,
                      qubits: Optional[Sequence[int]] = None) -> None:
        """Apply a measurement-free circuit, optionally remapped.

        Args:
            circuit: a unitary circuit.
            qubits: register qubits playing the role of the circuit's
                qubits 0..n-1 (identity mapping when omitted).
        """
        if circuit.has_measurements:
            raise SimulationError(
                "apply_circuit only handles unitary circuits; use "
                "StatevectorSimulator.run for measurements"
            )
        if qubits is None:
            mapping = list(range(circuit.num_qubits))
        else:
            mapping = list(qubits)
            if len(mapping) != circuit.num_qubits:
                raise SimulationError("qubit mapping size mismatch")
        for op in circuit.operations:
            assert isinstance(op, GateOp)
            if op.condition is not None:
                raise SimulationError(
                    "classically conditioned gate in unitary context"
                )
            self.apply_gate(op.gate, [mapping[q] for q in op.qubits])

    # -- measurement and readout -------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis state."""
        return np.abs(self._data) ** 2

    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        """P(measuring ``qubit`` yields ``outcome``)."""
        self._check_qubit(qubit)
        axis = qubit
        tensor = self.probabilities().reshape((2,) * self.num_qubits)
        sliced = np.take(tensor, outcome, axis=axis)
        return float(np.sum(sliced))

    def expectation_z(self, qubit: int) -> float:
        """<Z_qubit> — this is what an ensemble readout reports."""
        return (self.probability_of_outcome(qubit, 0)
                - self.probability_of_outcome(qubit, 1))

    def expectation_pauli(self, pauli: PauliString) -> complex:
        """<psi| P |psi> for an arbitrary Pauli string."""
        scratch = self.copy()
        scratch.apply_pauli(pauli)
        return complex(np.vdot(self._data, scratch._data))

    def measure(self, qubit: int,
                rng: Optional[np.random.Generator] = None) -> int:
        """Projective measurement with collapse; returns the outcome."""
        if rng is None:
            rng = np.random.default_rng()
        p_one = self.probability_of_outcome(qubit, 1)
        outcome = int(rng.random() < p_one)
        self.project(qubit, outcome)
        return outcome

    def project(self, qubit: int, outcome: int) -> float:
        """Project onto |outcome> of ``qubit`` and renormalise.

        Returns the probability of that outcome (useful for
        postselection).  Raises if the outcome has zero probability.
        """
        self._check_qubit(qubit)
        tensor = self._data.reshape((2,) * self.num_qubits)
        keep = np.take(tensor, outcome, axis=qubit)
        norm = np.linalg.norm(keep)
        if norm < _ATOL:
            raise SimulationError(
                f"projection of qubit {qubit} onto |{outcome}> has zero "
                "probability"
            )
        other = np.zeros_like(keep)
        parts = [keep / norm, other] if outcome == 0 else [other, keep / norm]
        self._data = np.stack(parts, axis=qubit).reshape(-1)
        return float(norm**2)

    def sample_counts(self, shots: int,
                      rng: Optional[np.random.Generator] = None
                      ) -> Dict[str, int]:
        """Sample complete basis-state bitstrings without collapse."""
        if rng is None:
            rng = np.random.default_rng()
        probs = self.probabilities()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        counts: Dict[str, int] = {}
        for outcome in outcomes:
            key = format(int(outcome), f"0{self.num_qubits}b")
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- register management ------------------------------------------------

    def allocate(self, count: int = 1) -> List[int]:
        """Append ``count`` fresh |0> qubits; returns their indices."""
        if count < 1:
            raise SimulationError("allocate needs a positive count")
        new_indices = list(range(self.num_qubits, self.num_qubits + count))
        expanded = np.zeros(2**count, dtype=np.complex128)
        expanded[0] = 1.0
        self._data = np.kron(self._data, expanded)
        self.num_qubits += count
        return new_indices

    def release(self, qubits: Sequence[int]) -> None:
        """Remove qubits that are deterministically |0>.

        The fault-tolerant gadgets discard syndrome and scratch blocks
        only after uncomputing them; this check makes an incorrectly
        uncomputed ancilla a loud failure instead of silent leakage.
        """
        for qubit in sorted(set(qubits), reverse=True):
            self._check_qubit(qubit)
            if self.probability_of_outcome(qubit, 1) > 1e-7:
                raise SimulationError(
                    f"cannot release qubit {qubit}: it is not in |0> "
                    f"(P(1)={self.probability_of_outcome(qubit, 1):.3e})"
                )
            tensor = self._data.reshape((2,) * self.num_qubits)
            kept = np.take(tensor, 0, axis=qubit)
            self._data = kept.reshape(-1)
            norm = np.linalg.norm(self._data)
            self._data /= norm
            self.num_qubits -= 1

    # -- comparison -----------------------------------------------------------

    def inner(self, other: "StateVector") -> complex:
        """<self|other>."""
        if self.num_qubits != other.num_qubits:
            raise SimulationError("inner: size mismatch")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        return abs(self.inner(other)) ** 2

    def equals(self, other: "StateVector", *,
               up_to_global_phase: bool = True, atol: float = 1e-7) -> bool:
        """State equality, by default ignoring global phase."""
        if self.num_qubits != other.num_qubits:
            return False
        if up_to_global_phase:
            return bool(abs(1.0 - self.fidelity(other)) < atol)
        return bool(np.allclose(self._data, other._data, atol=atol))

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range [0, {self.num_qubits})"
            )

    def __repr__(self) -> str:
        return f"StateVector(num_qubits={self.num_qubits})"


@dataclass
class SimulationResult:
    """Outcome of running a circuit on one simulated computer."""

    state: StateVector
    classical_bits: List[int] = field(default_factory=list)

    def classical_value(self, bits: Sequence[int]) -> int:
        """Little-endian integer value of the listed classical bits."""
        value = 0
        for position, bit_index in enumerate(bits):
            value |= (self.classical_bits[bit_index] & 1) << position
        return value


class StatevectorSimulator:
    """Executes circuits — measurements included — on one computer.

    This models a *single* quantum computer, the setting standard fault
    tolerance was designed for.  The ensemble machine in
    :mod:`repro.ensemble` wraps many of these and removes the readout
    capabilities the paper says an ensemble lacks.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit,
            initial_state: Optional[StateVector] = None) -> SimulationResult:
        """Run the circuit once, sampling measurement outcomes."""
        if initial_state is None:
            state = StateVector(circuit.num_qubits)
        else:
            state = initial_state.copy()
            if state.num_qubits != circuit.num_qubits:
                raise SimulationError(
                    "initial state size does not match circuit"
                )
        classical = [0] * circuit.num_clbits
        for op in circuit.operations:
            if isinstance(op, GateOp):
                if op.condition is None or op.condition.is_satisfied(classical):
                    state.apply_gate(op.gate, op.qubits)
            elif isinstance(op, MeasureOp):
                classical[op.clbit] = state.measure(op.qubit, self._rng)
            elif isinstance(op, ResetOp):
                outcome = state.measure(op.qubit, self._rng)
                if outcome:
                    from repro.circuits import gates as gate_lib

                    state.apply_gate(gate_lib.X, [op.qubit])
            else:  # pragma: no cover - exhaustive over Operation
                raise SimulationError(f"unknown operation {op!r}")
        return SimulationResult(state=state, classical_bits=classical)


def run_unitary(circuit: Circuit,
                initial_state: Optional[StateVector] = None) -> StateVector:
    """Apply a measurement-free circuit and return the output state."""
    if initial_state is None:
        state = StateVector(circuit.num_qubits)
    else:
        state = initial_state.copy()
    state.apply_circuit(circuit)
    return state
