"""Vectorized batched trial evaluation over a stacked sparse state.

Monte Carlo threshold estimates run thousands of *near-identical*
small circuits: the same gadget, the same initial state, only the
injected Pauli fault pattern differs from trial to trial.  The serial
engine pays the full per-gate Python dispatch cost once per trial.
:class:`BatchedState` amortises that cost across a whole batch by
stacking B trials into **one** :class:`~repro.simulators.sparse.
SparseState`:

* the batch axis is encoded as ``ceil(log2(B))`` extra *lane* qubits
  appended after the data qubits, so a trial's basis index becomes
  ``(data_index << lane_bits) | lane``;
* gates address data qubits with their usual labels and are applied
  *once* for the whole stack — every vectorised numpy kernel in
  :class:`SparseState` (bit twiddles, phase multiplies, lexsort
  merges) now sweeps B trials per Python-level call;
* per-trial fault patterns are injected with :meth:`BatchedState.
  apply_pauli_lanes`, a masked Pauli application that touches only the
  selected lanes.

Because lanes occupy the *least significant* bits, sorting by the
combined index orders terms by data index first and lane second, and
``numpy``'s stable lexsort keeps equal keys in arrival order — so each
lane's term subsequence evolves through exactly the same floating
point operations, in exactly the same order, as a serial
:class:`SparseState` run of that trial alone.  :meth:`BatchedState.
extract_lane` therefore recovers **bit-identical** amplitudes, which
is what lets the engine swap the batched path in without perturbing
verdict streams, checkpoints or SPRT decision sequences (certified by
``tests/simulators/test_batched_equivalence.py``).

Faults that land at the same circuit point are applied in canonical
pattern order — sorted by ``(x_bits, z_bits, phase)`` and occurrence —
matching :func:`repro.analysis.engine.canonical_pattern`.  Patterns
already in canonical order (everything the engine evaluates) thus
replay the serial operation sequence exactly; non-canonical patterns
get an equivalent state up to the global phase of commuting same-point
Paulis past each other.

The stacked register must fit the :class:`SparseState` width limit
(192 qubits); oversized batches raise
:class:`~repro.exceptions.SimulationError`, which the engine's
fallback ladder catches to degrade gracefully to the serial path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.gates import Gate
from repro.circuits.pauli import PauliString
from repro.exceptions import FaultToleranceError, SimulationError
from repro.simulators.sparse import SparseState, _columns_for

_WORD = 64

#: Evaluation-path markers shared with the engine's pattern cache and
#: checkpoint fingerprints.
SERIAL_PATH = "serial"
BATCHED_PATH = "batched"


def _right_shifted_columns(matrix: np.ndarray, shift: int,
                           cols_out: int) -> np.ndarray:
    """Vectorised multi-word right shift of a uint64 column matrix.

    The mirror image of :meth:`SparseState._shifted_columns`; used to
    strip the lane bits off extracted trial indices.
    """
    terms, cols_in = matrix.shape
    out = np.zeros((terms, cols_out), dtype=np.uint64)
    word_shift, bit_shift = divmod(shift, _WORD)
    for col in range(cols_out):
        source = col + word_shift
        if source < cols_in:
            if bit_shift:
                out[:, col] = matrix[:, source] >> np.uint64(bit_shift)
                if source + 1 < cols_in:
                    out[:, col] |= matrix[:, source + 1] << np.uint64(
                        _WORD - bit_shift
                    )
            else:
                out[:, col] = matrix[:, source]
    return out


class BatchedState:
    """B stacked trials of an n-qubit pure state in one sparse register.

    All B lanes start as copies of ``initial``; :meth:`apply_gate`
    advances the whole stack at once, :meth:`apply_pauli_lanes` injects
    per-trial faults, and :meth:`extract_lane` recovers one trial as a
    plain :class:`SparseState` with bit-identical amplitudes to a
    serial run of that trial.
    """

    def __init__(self, initial: SparseState, batch: int) -> None:
        if batch < 1:
            raise SimulationError(
                f"batch size must be >= 1, got {batch}"
            )
        self.num_qubits = initial.num_qubits
        self.batch = batch
        self.lane_bits = (batch - 1).bit_length()
        total = self.num_qubits + self.lane_bits
        # SparseState.__init__ enforces the 192-qubit width cap; an
        # oversized stack surfaces as SimulationError, which callers
        # treat as "not batchable" and fall back to the serial path.
        inner = SparseState(total)
        shifted = SparseState._shifted_columns(
            initial._indices, self.lane_bits, inner._cols
        )
        terms = initial.num_terms
        # Lane-major tiling: lane 0's terms first, then lane 1's, ...
        # so each lane's subsequence starts in the serial term order.
        stacked = np.tile(shifted, (batch, 1))
        lanes = np.repeat(
            np.arange(batch, dtype=np.uint64), terms
        )
        stacked[:, 0] |= lanes
        inner._indices = stacked
        inner._amplitudes = np.tile(initial._amplitudes, batch)
        self._state = inner
        self._lane_mask = np.uint64((1 << self.lane_bits) - 1)

    # -- plumbing ---------------------------------------------------------

    @property
    def num_terms(self) -> int:
        return self._state.num_terms

    def _lane_ids(self) -> np.ndarray:
        """The lane index of each stacked term (int64 vector)."""
        return (self._state._indices[:, 0] & self._lane_mask).astype(
            np.int64
        )

    def _check_qubit(self, qubit: int) -> None:
        # The inner register is wider than the logical one; guard here
        # so no gate can ever address a lane bit.
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range [0, {self.num_qubits})"
            )

    # -- evolution --------------------------------------------------------

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply one gate to every lane (data qubits keep their labels)."""
        for qubit in qubits:
            self._check_qubit(qubit)
        self._state.apply_gate(gate, qubits)

    def apply_circuit(self, circuit: Circuit) -> None:
        """Apply a unitary, unconditional circuit to every lane."""
        if circuit.has_measurements:
            raise SimulationError(
                "batched evolution handles unitary circuits only"
            )
        if circuit.num_qubits > self.num_qubits:
            raise SimulationError(
                f"circuit spans {circuit.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        for op in circuit.operations:
            if not isinstance(op, GateOp) or op.condition is not None:
                raise SimulationError(
                    "conditioned gate in unitary context"
                )
            self.apply_gate(op.gate, op.qubits)

    def apply_pauli_lanes(self, pauli: PauliString,
                          lanes: Sequence[int]) -> None:
        """Apply one Pauli fault to the listed lanes only.

        Mirrors :meth:`SparseState.apply_pauli` operation for
        operation (X: index flip; Y: ``1j * (1 - 2 bit)`` phase then
        flip; Z: ``1 - 2 bit`` phase; then the string's phase offset),
        restricted to terms whose lane is selected — so a selected
        lane's amplitudes see the identical float sequence a serial
        ``apply_pauli`` would produce, and unselected lanes are
        untouched.
        """
        if pauli.num_qubits != self.num_qubits:
            raise SimulationError("PauliString size mismatch")
        lane_list = list(lanes)
        for lane in lane_list:
            if not 0 <= lane < self.batch:
                raise SimulationError(
                    f"lane {lane} out of range [0, {self.batch})"
                )
        table = np.zeros(self.batch, dtype=bool)
        table[lane_list] = True
        selected = table[self._lane_ids()]
        if not selected.any():
            return
        state = self._state
        for qubit in pauli.support():
            kind = pauli.kind_at(qubit)
            if kind == "X":
                state._flip_where(selected, qubit)
            elif kind == "Y":
                bit = state._bit(qubit)
                factor = 1j * (1.0 - 2.0 * bit)
                state._amplitudes[selected] = (
                    state._amplitudes[selected] * factor[selected]
                )
                state._flip_where(selected, qubit)
            elif kind == "Z":
                factor = 1.0 - 2.0 * state._bit(qubit)
                state._amplitudes[selected] = (
                    state._amplitudes[selected] * factor[selected]
                )
        offset = pauli.phase_offset()
        if offset:
            state._amplitudes[selected] = (
                state._amplitudes[selected] * (1j**offset)
            )

    # -- extraction -------------------------------------------------------

    def extract_lane(self, lane: int) -> SparseState:
        """One trial's state, bit-identical to its serial evolution."""
        if not 0 <= lane < self.batch:
            raise SimulationError(
                f"lane {lane} out of range [0, {self.batch})"
            )
        selected = self._lane_ids() == lane
        if not selected.any():
            raise SimulationError(
                f"lane {lane} collapsed to zero in the stacked state"
            )
        result = SparseState(self.num_qubits)
        result._indices = _right_shifted_columns(
            self._state._indices[selected], self.lane_bits, result._cols
        )
        result._amplitudes = self._state._amplitudes[selected].copy()
        return result

    def extract_all(self) -> List[SparseState]:
        return [self.extract_lane(lane) for lane in range(self.batch)]

    def __repr__(self) -> str:
        return (
            f"BatchedState(num_qubits={self.num_qubits}, "
            f"batch={self.batch}, terms={self.num_terms})"
        )


Fault = Tuple[PauliString, int]
FaultPattern = Tuple[Fault, ...]

_PauliKey = Tuple[int, int, int]


def _group_faults(
    patterns: Sequence[FaultPattern],
) -> Dict[int, List[Tuple[PauliString, List[int]]]]:
    """Group the stacked patterns' faults by circuit point.

    Returns ``{after_op: [(pauli, lanes), ...]}`` where each entry is
    one Pauli applied to the lanes that contain it; repeated identical
    faults within one pattern become separate occurrence entries so
    multiplicity is preserved.  Entries are ordered by ``(x_bits,
    z_bits, phase, occurrence)`` — the within-point order of
    :func:`repro.analysis.engine.canonical_pattern` — so canonical
    patterns replay their serial fault sequence exactly.
    """
    grouped: Dict[int, Dict[Tuple[_PauliKey, int],
                            Tuple[PauliString, List[int]]]] = {}
    for lane, pattern in enumerate(patterns):
        seen: Dict[Tuple[int, _PauliKey], int] = {}
        for pauli, after_op in pattern:
            key = (pauli.x_bits, pauli.z_bits, pauli.phase)
            occurrence = seen.get((after_op, key), 0)
            seen[(after_op, key)] = occurrence + 1
            bucket = grouped.setdefault(after_op, {})
            entry = bucket.get((key, occurrence))
            if entry is None:
                bucket[(key, occurrence)] = (pauli, [lane])
            else:
                entry[1].append(lane)
    return {
        point: [entry for _, entry in sorted(bucket.items())]
        for point, bucket in grouped.items()
    }


def apply_circuit_with_fault_patterns(
    state: BatchedState, circuit: Circuit,
    patterns: Sequence[FaultPattern],
) -> None:
    """Run ``circuit`` on every lane, injecting pattern i into lane i.

    The batched analogue of :func:`repro.ft.gadget.
    apply_circuit_with_faults`: point ``-1`` faults first, then each
    gate followed by the faults scheduled after it.
    """
    if len(patterns) != state.batch:
        raise SimulationError(
            f"{len(patterns)} patterns for a batch of {state.batch}"
        )
    grouped = _group_faults(patterns)
    for pauli, lanes in grouped.get(-1, []):
        state.apply_pauli_lanes(pauli, lanes)
    for index, op in enumerate(circuit.operations):
        if not isinstance(op, GateOp) or op.condition is not None:
            raise FaultToleranceError(
                "gadget circuits must be unconditional and unitary"
            )
        state.apply_gate(op.gate, op.qubits)
        for pauli, lanes in grouped.get(index, []):
            state.apply_pauli_lanes(pauli, lanes)


def evaluate_fault_patterns_batched(
    gadget, initial_state: SparseState, evaluator,
    patterns: Sequence[FaultPattern],
    invariant: Optional[object] = None,
) -> List[bool]:
    """Evaluate a batch of fault patterns in one stacked simulation.

    Returns one verdict per pattern, in order, each computed on the
    extracted per-lane final state — bit-identical to
    :func:`repro.analysis.engine.evaluate_fault_pattern` run serially
    on the same (canonical) pattern.
    """
    patterns = list(patterns)
    if not patterns:
        return []
    state = BatchedState(initial_state, len(patterns))
    apply_circuit_with_fault_patterns(state, gadget.circuit, patterns)
    verdicts: List[bool] = []
    for lane in range(len(patterns)):
        final = state.extract_lane(lane)
        if invariant is not None:
            invariant(final)
        verdicts.append(bool(evaluator(final)))
    return verdicts
