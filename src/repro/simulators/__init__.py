"""Simulation backends.

Three complementary engines:

* :class:`~repro.simulators.statevector.StateVector` /
  :class:`~repro.simulators.statevector.StatevectorSimulator` — exact
  pure-state simulation of one computer (supports the measurements an
  ensemble machine forbids).
* :class:`~repro.simulators.density_matrix.DensityMatrix` — exact mixed
  states for small registers; the natural picture of an ensemble.
* :class:`~repro.simulators.pauli_tracker.PauliPropagator` —
  Heisenberg-picture fault propagation for paper-style error counting.

Two accelerators ride on top:

* :class:`~repro.simulators.batched.BatchedState` — B Monte Carlo
  trials stacked into one sparse register, advanced by one vectorised
  kernel call per gate yet bit-identical per lane to a serial run.
* :mod:`~repro.simulators.ptm` — Pauli-transfer-matrix composition
  for Pauli-channel-only noise (channels compose as matrix products).
"""

from repro.simulators.batched import (
    BatchedState,
    apply_circuit_with_fault_patterns,
    evaluate_fault_patterns_batched,
)
from repro.simulators.channels import (
    KrausChannel,
    PauliChannel,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    dephasing,
    pauli_xz,
    phase_flip,
)
from repro.simulators.density_matrix import (
    DensityMatrix,
    DensityMatrixSimulator,
)
from repro.simulators.pauli_tracker import PauliPropagator, PropagatedFault
from repro.simulators.sparse import SparseState
from repro.simulators.statevector import (
    SimulationResult,
    StatevectorSimulator,
    StateVector,
    run_unitary,
)

__all__ = [
    "BatchedState",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "KrausChannel",
    "PauliChannel",
    "PauliPropagator",
    "PropagatedFault",
    "SimulationResult",
    "SparseState",
    "StateVector",
    "StatevectorSimulator",
    "amplitude_damping",
    "apply_circuit_with_fault_patterns",
    "bit_flip",
    "bit_phase_flip",
    "dephasing",
    "depolarizing",
    "evaluate_fault_patterns_batched",
    "pauli_xz",
    "phase_flip",
    "run_unitary",
]
