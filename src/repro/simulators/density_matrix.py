"""Density-matrix simulation for small registers.

The ensemble model is naturally a density-matrix picture: the state of
"the ensemble" is the average state of its members, and an ensemble
readout of qubit q is exactly tr(rho Z_q).  This simulator is used for

* exact noise-channel evolution on few-qubit systems,
* the dephasing step of fully-quantum teleportation (Sec. 2 of the
  paper), which has no pure-state description, and
* cross-checking the Monte-Carlo fault injector against exact channel
  evolution.

Cost is O(4^n), so it is reserved for n <= ~10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Circuit, GateOp, MeasureOp, ResetOp
from repro.circuits.gates import Gate
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError
from repro.simulators.channels import KrausChannel, PauliChannel
from repro.simulators.statevector import StateVector

_ATOL = 1e-9


class DensityMatrix:
    """A mixed state rho on n qubits (big-endian index convention)."""

    def __init__(self, num_qubits: int,
                 matrix: Optional[np.ndarray] = None) -> None:
        if num_qubits < 0:
            raise SimulationError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        dim = 2**num_qubits
        if matrix is None:
            rho = np.zeros((dim, dim), dtype=np.complex128)
            rho[0, 0] = 1.0
        else:
            rho = np.asarray(matrix, dtype=np.complex128)
            if rho.shape != (dim, dim):
                raise SimulationError(
                    f"density matrix shape {rho.shape} does not match "
                    f"{num_qubits} qubits"
                )
            trace = np.trace(rho).real
            if abs(trace - 1.0) > 1e-6:
                raise SimulationError(f"trace {trace:.6f} is not 1")
        self._rho = rho

    @classmethod
    def from_statevector(cls, state: StateVector) -> "DensityMatrix":
        amplitudes = state.amplitudes
        return cls(state.num_qubits, np.outer(amplitudes,
                                              amplitudes.conj()))

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        dim = 2**num_qubits
        return cls(num_qubits, np.eye(dim, dtype=np.complex128) / dim)

    @property
    def matrix(self) -> np.ndarray:
        view = self._rho.view()
        view.setflags(write=False)
        return view

    def copy(self) -> "DensityMatrix":
        return DensityMatrix(self.num_qubits, self._rho.copy())

    # -- evolution ---------------------------------------------------------

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        full = self._embed(gate.matrix, qubits)
        self._rho = full @ self._rho @ full.conj().T

    def apply_circuit(self, circuit: Circuit) -> None:
        """Apply a unitary (measurement-free, condition-free) circuit."""
        for op in circuit.operations:
            if not isinstance(op, GateOp) or op.condition is not None:
                raise SimulationError(
                    "DensityMatrix.apply_circuit handles unitary "
                    "circuits only"
                )
            self.apply_gate(op.gate, op.qubits)

    def apply_kraus(self, channel: KrausChannel,
                    qubits: Sequence[int]) -> None:
        full_ops = [self._embed(op, qubits) for op in channel.operators]
        result = np.zeros_like(self._rho)
        for op in full_ops:
            result += op @ self._rho @ op.conj().T
        self._rho = result

    def apply_pauli_channel(self, channel: PauliChannel,
                            qubits: Sequence[int]) -> None:
        self.apply_kraus(channel.to_kraus(), qubits)

    def dephase(self, qubit: int) -> None:
        """Completely remove coherences of one qubit.

        This is the operation the fully-quantum teleportation protocol
        applies to its control qubits before they steer the correction:
        after dephasing, using them as controls is equivalent to the
        measurement-and-classical-control of standard teleportation,
        yet no individual-computer measurement ever happens.
        """
        z = self._embed(np.array([[1, 0], [0, -1]], dtype=np.complex128),
                        [qubit])
        self._rho = 0.5 * (self._rho + z @ self._rho @ z)

    # -- readout -------------------------------------------------------------

    def expectation_z(self, qubit: int) -> float:
        """tr(rho Z_q): the ensemble signal for qubit q."""
        z = self._embed(np.array([[1, 0], [0, -1]], dtype=np.complex128),
                        [qubit])
        return float(np.trace(self._rho @ z).real)

    def expectation_pauli(self, pauli: PauliString) -> complex:
        if pauli.num_qubits != self.num_qubits:
            raise SimulationError("PauliString size mismatch")
        return complex(np.trace(self._rho @ pauli.matrix()))

    def probabilities(self) -> np.ndarray:
        return np.clip(np.diag(self._rho).real, 0.0, 1.0)

    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        probs = self.probabilities().reshape((2,) * self.num_qubits)
        return float(np.sum(np.take(probs, outcome, axis=qubit)))

    def measure(self, qubit: int,
                rng: Optional[np.random.Generator] = None) -> int:
        """Projective measurement with collapse."""
        if rng is None:
            rng = np.random.default_rng()
        p_one = self.probability_of_outcome(qubit, 1)
        outcome = int(rng.random() < p_one)
        self.project(qubit, outcome)
        return outcome

    def project(self, qubit: int, outcome: int) -> float:
        projector = np.zeros((2, 2), dtype=np.complex128)
        projector[outcome, outcome] = 1.0
        full = self._embed(projector, [qubit])
        unnormalised = full @ self._rho @ full
        probability = float(np.trace(unnormalised).real)
        if probability < _ATOL:
            raise SimulationError(
                f"projection of qubit {qubit} onto |{outcome}> has zero "
                "probability"
            )
        self._rho = unnormalised / probability
        return probability

    def partial_trace(self, keep: Sequence[int]) -> "DensityMatrix":
        """Trace out every qubit not listed in ``keep``."""
        keep = list(keep)
        n = self.num_qubits
        tensor = self._rho.reshape((2,) * (2 * n))
        trace_out = [q for q in range(n) if q not in keep]
        for offset, qubit in enumerate(sorted(trace_out)):
            axis = qubit - offset
            tensor = np.trace(tensor, axis1=axis,
                              axis2=axis + (n - offset))
        k = len(keep)
        matrix = tensor.reshape(2**k, 2**k)
        # Reorder kept qubits into the requested order.
        current = sorted(keep)
        if current != keep:
            order = [current.index(q) for q in keep]
            tensor = matrix.reshape((2,) * (2 * k))
            perm = order + [k + axis for axis in order]
            tensor = np.transpose(tensor, perm)
            matrix = tensor.reshape(2**k, 2**k)
        return DensityMatrix(k, matrix)

    def purity(self) -> float:
        return float(np.trace(self._rho @ self._rho).real)

    def fidelity_with_pure(self, state: StateVector) -> float:
        """<psi| rho |psi>."""
        amplitudes = state.amplitudes
        return float(np.real(amplitudes.conj() @ self._rho @ amplitudes))

    def _embed(self, matrix: np.ndarray,
               qubits: Sequence[int]) -> np.ndarray:
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError("operator shape mismatch")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise SimulationError(f"qubit {qubit} out of range")
        n = self.num_qubits
        gate_tensor = matrix.reshape((2,) * (2 * k))
        # Contract the gate's input legs with the identity's row axes;
        # the result's axes are [gate outputs (gate order), remaining
        # rows (ascending), all columns (ascending, untouched)].
        op = np.tensordot(gate_tensor,
                          np.eye(2**n).reshape((2,) * (2 * n)),
                          axes=(list(range(k, 2 * k)), list(qubits)))
        order = list(qubits) + [q for q in range(n) if q not in qubits]
        inverse = list(np.argsort(order))
        perm = inverse + list(range(n, 2 * n))
        op = np.transpose(op, perm)
        return op.reshape(2**n, 2**n)


class DensityMatrixSimulator:
    """Circuit execution on density matrices, with optional noise.

    Args:
        noise: an optional per-operation Pauli channel applied after
            every gate on the gate's qubits (a crude uniform model;
            the structured model lives in :mod:`repro.noise`).
        seed: RNG seed for measurements.
    """

    def __init__(self, noise: Optional[PauliChannel] = None,
                 seed: Optional[int] = None) -> None:
        self._noise = noise
        self._rng = np.random.default_rng(seed)

    def run(self, circuit: Circuit,
            initial: Optional[DensityMatrix] = None) -> "DensityMatrixRun":
        if initial is None:
            rho = DensityMatrix(circuit.num_qubits)
        else:
            rho = initial.copy()
        classical = [0] * circuit.num_clbits
        for op in circuit.operations:
            if isinstance(op, GateOp):
                if op.condition is None or op.condition.is_satisfied(classical):
                    rho.apply_gate(op.gate, op.qubits)
                    self._maybe_noise(rho, op.qubits)
            elif isinstance(op, MeasureOp):
                classical[op.clbit] = rho.measure(op.qubit, self._rng)
            elif isinstance(op, ResetOp):
                outcome = rho.measure(op.qubit, self._rng)
                if outcome:
                    from repro.circuits import gates as gate_lib

                    rho.apply_gate(gate_lib.X, [op.qubit])
            else:  # pragma: no cover
                raise SimulationError(f"unknown operation {op!r}")
        return DensityMatrixRun(rho, classical)

    def _maybe_noise(self, rho: DensityMatrix,
                     qubits: Sequence[int]) -> None:
        if self._noise is None:
            return
        for qubit in qubits:
            if self._noise.num_qubits == 1:
                rho.apply_pauli_channel(self._noise, [qubit])


class DensityMatrixRun:
    """Result bundle from :class:`DensityMatrixSimulator.run`."""

    def __init__(self, state: DensityMatrix,
                 classical_bits: List[int]) -> None:
        self.state = state
        self.classical_bits = classical_bits
