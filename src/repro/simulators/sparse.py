"""Sparse state-vector simulation for large, low-entanglement circuits.

The fault-tolerant gadgets of the paper act on several Steane-code
blocks at once — the measurement-free Toffoli of Fig. 4 spans more
than 150 physical qubits, hopeless for a dense state vector.  But
their states stay *sparse in the computational basis*: code words are
superpositions of at most 2^k basis states, and after preparation the
gadgets use only basis-permutation gates (X, CNOT, Toffoli) and
diagonal phase gates (Z, S, T, CZ, CS, CCZ) plus the occasional H.
:class:`SparseState` stores (basis index, amplitude) pairs in numpy
arrays and applies

* permutation gates as vectorised bit twiddling on the index array,
* diagonal gates as vectorised phase multiplication,
* branching gates (H, arbitrary unitaries) by splitting each term and
  re-merging duplicates,

so the cost per gate is O(active terms), independent of qubit count.
Pauli faults, expectation values and projective measurements are all
supported, which makes exhaustive Steane-scale fault injection exact
and fast.

Indices are stored as a (terms, columns) uint64 matrix: one column up
to 64 qubits, two columns to 128, three to 192 — every operation stays
fully vectorised at any width.  Qubit q maps to bit position
``num_qubits - 1 - q`` counted from the least-significant bit of
column 0 (so the convention matches :class:`~repro.simulators.
statevector.StateVector`: qubit 0 is the most significant bit).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.gates import Gate
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError

_ATOL = 1e-12
_PRUNE = 1e-14
_MAX_QUBITS = 192
_WORD = 64
_ONE = np.uint64(1)


def _columns_for(num_qubits: int) -> int:
    return max(1, (num_qubits + _WORD - 1) // _WORD)


class SparseState:
    """A pure state stored as sparse (index, amplitude) arrays."""

    def __init__(self, num_qubits: int,
                 indices: Optional[np.ndarray] = None,
                 amplitudes: Optional[np.ndarray] = None) -> None:
        if num_qubits < 0 or num_qubits > _MAX_QUBITS:
            raise SimulationError(
                f"SparseState supports 0..{_MAX_QUBITS} qubits, got "
                f"{num_qubits}"
            )
        self.num_qubits = num_qubits
        self._cols = _columns_for(num_qubits)
        if indices is None:
            self._indices = np.zeros((1, self._cols), dtype=np.uint64)
            self._amplitudes = np.ones(1, dtype=np.complex128)
        else:
            self._indices = self._coerce_matrix(indices)
            self._amplitudes = np.asarray(amplitudes, dtype=np.complex128)
            if self._indices.shape[0] != self._amplitudes.shape[0]:
                raise SimulationError("indices/amplitudes shape mismatch")
            self._merge()
            norm = np.linalg.norm(self._amplitudes)
            if abs(norm - 1.0) > 1e-6:
                raise SimulationError(
                    f"state not normalised (norm {norm:.6f})"
                )

    # -- index plumbing ---------------------------------------------------

    def _coerce_matrix(self, values) -> np.ndarray:
        array = np.asarray(values)
        if array.ndim == 2 and array.dtype == np.uint64 \
                and array.shape[1] == self._cols:
            return array
        return self._index_array([int(v) for v in np.ravel(values)])

    def _index_array(self, values: Sequence[int]) -> np.ndarray:
        """Build the (terms, cols) matrix from Python integers."""
        matrix = np.zeros((len(values), self._cols), dtype=np.uint64)
        mask = (1 << _WORD) - 1
        for row, value in enumerate(values):
            value = int(value)
            for col in range(self._cols):
                matrix[row, col] = np.uint64(value & mask)
                value >>= _WORD
        return matrix

    def _position(self, qubit: int) -> Tuple[int, np.uint64, np.uint64]:
        """(column, shift, mask) of a qubit's bit."""
        pos = self.num_qubits - 1 - qubit
        col, shift = divmod(pos, _WORD)
        return col, np.uint64(shift), _ONE << np.uint64(shift)

    def _bit(self, qubit: int) -> np.ndarray:
        """The value of ``qubit`` in each term (int64 vector of 0/1)."""
        col, shift, _ = self._position(qubit)
        return ((self._indices[:, col] >> shift) & _ONE).astype(np.int64)

    def _flip_where(self, condition: np.ndarray, qubit: int) -> None:
        """XOR the qubit's bit into terms where condition == 1."""
        col, _, mask = self._position(qubit)
        self._indices[:, col] ^= condition.astype(np.uint64) * mask

    def _flip_all(self, qubit: int) -> None:
        col, _, mask = self._position(qubit)
        self._indices[:, col] ^= mask

    @staticmethod
    def _shifted_columns(matrix: np.ndarray, shift: int,
                         cols_out: int) -> np.ndarray:
        """Vectorised multi-word left shift of a column matrix."""
        terms, cols_in = matrix.shape
        out = np.zeros((terms, cols_out), dtype=np.uint64)
        word_shift, bit_shift = divmod(shift, _WORD)
        for col in range(cols_in):
            target = col + word_shift
            if target < cols_out:
                if bit_shift:
                    out[:, target] |= matrix[:, col] << np.uint64(bit_shift)
                else:
                    out[:, target] |= matrix[:, col]
            if bit_shift and target + 1 < cols_out:
                out[:, target + 1] |= matrix[:, col] >> np.uint64(
                    _WORD - bit_shift
                )
        return out

    def iter_ints(self) -> Iterator[int]:
        """Yield each term's basis index as a Python integer."""
        if self._cols == 1:
            for value in self._indices[:, 0]:
                yield int(value)
            return
        for row in self._indices:
            value = 0
            for col in range(self._cols - 1, -1, -1):
                value = (value << _WORD) | int(row[col])
            yield value

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_basis_state(cls, bits: Sequence[int]) -> "SparseState":
        index = 0
        for bit in bits:
            index = (index << 1) | (int(bit) & 1)
        state = cls(len(bits))
        state._indices = state._index_array([index])
        state._amplitudes = np.ones(1, dtype=np.complex128)
        return state

    @classmethod
    def from_terms(cls, num_qubits: int,
                   terms: Dict[int, complex]) -> "SparseState":
        """Build from {basis index: amplitude}; normalises."""
        if not terms:
            raise SimulationError("from_terms needs at least one term")
        amplitudes = np.array(list(terms.values()), dtype=np.complex128)
        norm = np.linalg.norm(amplitudes)
        if norm < _ATOL:
            raise SimulationError("cannot normalise the zero vector")
        state = cls(num_qubits)
        state._indices = state._index_array(list(terms.keys()))
        state._amplitudes = amplitudes / norm
        state._merge()
        return state

    @classmethod
    def from_dense(cls, dense) -> "SparseState":
        """Convert a :class:`StateVector` (or amplitude array)."""
        amplitudes = np.asarray(
            getattr(dense, "amplitudes", dense), dtype=np.complex128
        )
        num_qubits = int(round(math.log2(amplitudes.shape[0])))
        nonzero = np.nonzero(np.abs(amplitudes) > _PRUNE)[0]
        state = cls(num_qubits)
        state._indices = state._index_array(nonzero.tolist())
        state._amplitudes = amplitudes[nonzero]
        return state

    def copy(self) -> "SparseState":
        clone = SparseState(self.num_qubits)
        clone._indices = self._indices.copy()
        clone._amplitudes = self._amplitudes.copy()
        return clone

    # -- inspection -----------------------------------------------------------

    @property
    def num_terms(self) -> int:
        return int(self._indices.shape[0])

    def terms(self) -> Dict[int, complex]:
        return {index: complex(amplitude)
                for index, amplitude in zip(self.iter_ints(),
                                            self._amplitudes)}

    def to_dense(self):
        """Dense :class:`StateVector` (small registers only)."""
        from repro.simulators.statevector import StateVector

        if self.num_qubits > 26:
            raise SimulationError(
                f"refusing to densify {self.num_qubits} qubits"
            )
        dense = np.zeros(2**self.num_qubits, dtype=np.complex128)
        for index, amplitude in zip(self.iter_ints(), self._amplitudes):
            dense[index] = amplitude
        return StateVector(self.num_qubits, dense)

    # -- gate application --------------------------------------------------------

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> None:
        """Apply a gate, using a fast path when one exists."""
        for qubit in qubits:
            self._check_qubit(qubit)
        if len(set(qubits)) != len(qubits):
            raise SimulationError(f"duplicate qubits {qubits}")
        name = gate.name
        if name == "I":
            return
        if name == "X":
            self._flip_all(qubits[0])
        elif name == "Z":
            self._amplitudes = self._amplitudes * (
                1.0 - 2.0 * self._bit(qubits[0])
            )
        elif name == "Y":
            bit = self._bit(qubits[0])
            self._amplitudes = self._amplitudes * (1j * (1.0 - 2.0 * bit))
            self._flip_all(qubits[0])
        elif name in ("S", "S_DG", "T", "T_DG", "RZ", "GPHASE"):
            self._apply_diagonal_single(gate, qubits[0])
        elif name == "CNOT":
            self._flip_where(self._bit(qubits[0]), qubits[1])
        elif name == "CZ":
            both = self._bit(qubits[0]) * self._bit(qubits[1])
            self._amplitudes = self._amplitudes * (1.0 - 2.0 * both)
        elif name in ("CS", "CS_DG"):
            both = self._bit(qubits[0]) * self._bit(qubits[1])
            phase = 1j if name == "CS" else -1j
            factor = np.where(both == 1, phase, 1.0 + 0.0j)
            self._amplitudes = self._amplitudes * factor
        elif name == "SWAP":
            differ = self._bit(qubits[0]) ^ self._bit(qubits[1])
            self._flip_where(differ, qubits[0])
            self._flip_where(differ, qubits[1])
        elif name == "TOFFOLI":
            both = self._bit(qubits[0]) * self._bit(qubits[1])
            self._flip_where(both, qubits[2])
        elif name == "CCZ":
            triple = (self._bit(qubits[0]) * self._bit(qubits[1])
                      * self._bit(qubits[2]))
            self._amplitudes = self._amplitudes * (1.0 - 2.0 * triple)
        elif name == "FREDKIN":
            differ = self._bit(qubits[0]) * (
                self._bit(qubits[1]) ^ self._bit(qubits[2])
            )
            self._flip_where(differ, qubits[1])
            self._flip_where(differ, qubits[2])
        elif name == "H":
            self._apply_hadamard(qubits[0])
        else:
            self._apply_generic(gate.matrix, qubits)

    def _apply_diagonal_single(self, gate: Gate, qubit: int) -> None:
        diagonal = np.diag(gate.matrix)
        if not np.allclose(gate.matrix, np.diag(diagonal), atol=_ATOL):
            self._apply_generic(gate.matrix, [qubit])
            return
        bit = self._bit(qubit)
        factor = np.where(bit == 1, diagonal[1], diagonal[0])
        self._amplitudes = self._amplitudes * factor

    def _apply_hadamard(self, qubit: int) -> None:
        bit = self._bit(qubit)
        sq2 = 1.0 / math.sqrt(2.0)
        # H: |b> -> (|0> + (-1)^b |1>)/sqrt2.  The same-index component
        # keeps sign (+ for b=0, - for b=1); the flipped component is
        # always +.
        stay_amp = self._amplitudes * sq2 * (1.0 - 2.0 * bit)
        flip_amp = self._amplitudes * sq2
        flipped = self._indices.copy()
        col, _, mask = self._position(qubit)
        flipped[:, col] ^= mask
        self._indices = np.concatenate([self._indices, flipped], axis=0)
        self._amplitudes = np.concatenate([stay_amp, flip_amp])
        self._merge()

    def _apply_generic(self, matrix: np.ndarray,
                       qubits: Sequence[int]) -> None:
        k = len(qubits)
        if matrix.shape != (2**k, 2**k):
            raise SimulationError("matrix shape mismatch")
        # Local value of each term (big-endian over the listed qubits).
        local = np.zeros(self.num_terms, dtype=np.int64)
        for qubit in qubits:
            local = (local << 1) | self._bit(qubit)
        base = self._indices.copy()
        for qubit in qubits:
            col, _, mask = self._position(qubit)
            base[:, col] &= ~mask
        pieces_idx: List[np.ndarray] = []
        pieces_amp: List[np.ndarray] = []
        for out_value in range(2**k):
            coeffs = matrix[out_value, local]
            active = np.abs(coeffs) > _PRUNE
            if not np.any(active):
                continue
            out_index = base[active].copy()
            for position, qubit in enumerate(qubits):
                if (out_value >> (k - 1 - position)) & 1:
                    col, _, mask = self._position(qubit)
                    out_index[:, col] |= mask
            pieces_idx.append(out_index)
            pieces_amp.append(self._amplitudes[active] * coeffs[active])
        if not pieces_idx:
            raise SimulationError("gate produced the zero state")
        self._indices = np.concatenate(pieces_idx, axis=0)
        self._amplitudes = np.concatenate(pieces_amp)
        self._merge()

    def apply_pauli(self, pauli: PauliString) -> None:
        if pauli.num_qubits != self.num_qubits:
            raise SimulationError("PauliString size mismatch")
        from repro.circuits import gates as gate_lib

        for qubit in pauli.support():
            self.apply_gate(gate_lib.PAULI_GATES[pauli.kind_at(qubit)],
                            [qubit])
        offset = pauli.phase_offset()
        if offset:
            self._amplitudes = self._amplitudes * (1j**offset)

    def apply_circuit(self, circuit: Circuit,
                      qubits: Optional[Sequence[int]] = None) -> None:
        if circuit.has_measurements:
            raise SimulationError(
                "apply_circuit handles unitary circuits only"
            )
        if qubits is None:
            mapping = list(range(circuit.num_qubits))
        else:
            mapping = list(qubits)
            if len(mapping) != circuit.num_qubits:
                raise SimulationError("qubit mapping size mismatch")
        for op in circuit.operations:
            assert isinstance(op, GateOp)
            if op.condition is not None:
                raise SimulationError("conditioned gate in unitary context")
            self.apply_gate(op.gate, [mapping[q] for q in op.qubits])

    def xor_row_masks(self, masks: Sequence[int]) -> None:
        """XOR a per-term Python-int mask into each basis index.

        Used by the ideal-recovery evaluator to apply per-branch
        corrections as one vectorised basis permutation.
        """
        if len(masks) != self.num_terms:
            raise SimulationError("need one mask per term")
        mask_matrix = self._index_array(masks)
        self._indices = self._indices ^ mask_matrix
        self._merge()

    def _merge(self) -> None:
        """Combine duplicate indices and prune negligible terms.

        Row deduplication goes through :func:`numpy.lexsort` over the
        uint64 columns plus a run-length reduction — orders of
        magnitude faster than ``np.unique(axis=0)``, whose void-view
        argsort dominates wide-register simulations.
        """
        if self.num_terms > 1:
            if self._cols == 1:
                unique, inverse = np.unique(self._indices[:, 0],
                                            return_inverse=True)
                if unique.shape[0] != self._indices.shape[0]:
                    summed = np.zeros(unique.shape[0],
                                      dtype=np.complex128)
                    np.add.at(summed, inverse, self._amplitudes)
                    self._indices = unique.reshape(-1, 1)
                    self._amplitudes = summed
            else:
                order = np.lexsort(
                    tuple(self._indices[:, col]
                          for col in range(self._cols))
                )
                sorted_idx = self._indices[order]
                sorted_amp = self._amplitudes[order]
                boundary = np.any(sorted_idx[1:] != sorted_idx[:-1],
                                  axis=1)
                if boundary.all():
                    self._indices = sorted_idx
                    self._amplitudes = sorted_amp
                else:
                    group = np.concatenate(
                        [[0], np.cumsum(boundary)]
                    )
                    count = int(group[-1]) + 1
                    summed = np.zeros(count, dtype=np.complex128)
                    np.add.at(summed, group, sorted_amp)
                    first = np.concatenate([[True], boundary])
                    self._indices = sorted_idx[first]
                    self._amplitudes = summed
        keep = np.abs(self._amplitudes) > _PRUNE
        if not np.all(keep):
            self._indices = self._indices[keep]
            self._amplitudes = self._amplitudes[keep]
        if self.num_terms == 0:
            raise SimulationError("state collapsed to zero")

    # -- readout -----------------------------------------------------------------

    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        self._check_qubit(qubit)
        mask = self._bit(qubit) == outcome
        return float(np.sum(np.abs(self._amplitudes[mask]) ** 2))

    def expectation_z(self, qubit: int) -> float:
        signs = 1.0 - 2.0 * self._bit(qubit)
        return float(np.sum(signs * np.abs(self._amplitudes) ** 2))

    def expectation_pauli(self, pauli: PauliString) -> complex:
        scratch = self.copy()
        scratch.apply_pauli(pauli)
        return self.inner(scratch)

    def project(self, qubit: int, outcome: int) -> float:
        keep = self._bit(qubit) == outcome
        probability = float(np.sum(np.abs(self._amplitudes[keep]) ** 2))
        if probability < _ATOL:
            raise SimulationError(
                f"projection of qubit {qubit} onto |{outcome}> has zero "
                "probability"
            )
        self._indices = self._indices[keep]
        self._amplitudes = self._amplitudes[keep] / math.sqrt(probability)
        return probability

    def measure(self, qubit: int,
                rng: Optional[np.random.Generator] = None) -> int:
        if rng is None:
            rng = np.random.default_rng()
        p_one = self.probability_of_outcome(qubit, 1)
        outcome = int(rng.random() < p_one)
        self.project(qubit, outcome)
        return outcome

    # -- register management --------------------------------------------------------

    def allocate(self, count: int = 1) -> List[int]:
        """Append ``count`` fresh |0> qubits (indices shift left)."""
        if count < 1:
            raise SimulationError("allocate needs a positive count")
        if self.num_qubits + count > _MAX_QUBITS:
            raise SimulationError(
                f"register would exceed {_MAX_QUBITS} qubits"
            )
        new = list(range(self.num_qubits, self.num_qubits + count))
        self.num_qubits += count
        new_cols = _columns_for(self.num_qubits)
        self._indices = self._shifted_columns(self._indices, count,
                                              new_cols)
        self._cols = new_cols
        return new

    def release(self, qubits: Sequence[int]) -> None:
        """Remove qubits that are deterministically |0> (vectorised)."""
        for qubit in sorted(set(qubits), reverse=True):
            self._check_qubit(qubit)
            if self.probability_of_outcome(qubit, 1) > 1e-9:
                raise SimulationError(
                    f"cannot release qubit {qubit}: not in |0>"
                )
            pos = self.num_qubits - 1 - qubit
            col, bit = divmod(pos, _WORD)
            matrix = self._indices
            cols = self._cols
            # Low part: bits strictly below the removed position.
            low = matrix.copy()
            low[:, col] &= np.uint64((1 << bit) - 1)
            low[:, col + 1:] = 0
            # High part: bits above, shifted right by one overall.
            high = matrix.copy()
            high[:, col] &= ~np.uint64((1 << (bit + 1)) - 1)
            high[:, :col] = 0
            shifted = np.zeros_like(high)
            for j in range(cols):
                shifted[:, j] = high[:, j] >> _ONE
                if j + 1 < cols:
                    shifted[:, j] |= (high[:, j + 1] & _ONE) \
                        << np.uint64(_WORD - 1)
            self.num_qubits -= 1
            new_cols = _columns_for(self.num_qubits)
            combined = shifted | low
            self._indices = combined[:, :new_cols]
            self._cols = new_cols
            self._merge()
            norm = np.linalg.norm(self._amplitudes)
            self._amplitudes = self._amplitudes / norm

    def keep_only(self, qubits: Sequence[int]) -> None:
        """Project every other qubit onto its dominant outcome and
        drop it, keeping the listed qubits in the given order.

        One vectorised repacking pass instead of per-qubit
        project/release cycles — the fast path for simulation-side
        garbage collection of exhausted ancilla registers.  Only valid
        when the kept qubits are (to numerical accuracy) disentangled
        from the dropped ones; with entanglement present the kept
        state is the post-selected branch.
        """
        keep = list(qubits)
        if len(set(keep)) != len(keep):
            raise SimulationError("duplicate qubits in keep_only")
        keep_set = set(keep)
        for qubit in range(self.num_qubits):
            if qubit in keep_set:
                continue
            outcome = int(self.probability_of_outcome(qubit, 1) > 0.5)
            self.project(qubit, outcome)
        new_count = len(keep)
        new_cols = _columns_for(new_count)
        new_indices = np.zeros((self.num_terms, new_cols),
                               dtype=np.uint64)
        for position, qubit in enumerate(keep):
            bit_pos = new_count - 1 - position
            col, bit = divmod(bit_pos, _WORD)
            new_indices[:, col] |= self._bit(qubit).astype(np.uint64) \
                << np.uint64(bit)
        self.num_qubits = new_count
        self._cols = new_cols
        self._indices = new_indices
        self._merge()
        norm = np.linalg.norm(self._amplitudes)
        self._amplitudes = self._amplitudes / norm

    # -- comparison -------------------------------------------------------------------

    def inner(self, other: "SparseState") -> complex:
        if self.num_qubits != other.num_qubits:
            raise SimulationError("inner: size mismatch")
        mine = {index: amplitude
                for index, amplitude in zip(self.iter_ints(),
                                            self._amplitudes)}
        total = 0.0 + 0.0j
        for index, amplitude in zip(other.iter_ints(),
                                    other._amplitudes):
            conjugate = mine.get(index)
            if conjugate is not None:
                total += np.conj(conjugate) * amplitude
        return complex(total)

    def fidelity(self, other: "SparseState") -> float:
        return abs(self.inner(other)) ** 2

    def equals(self, other: "SparseState", *,
               up_to_global_phase: bool = True, atol: float = 1e-7) -> bool:
        if self.num_qubits != other.num_qubits:
            return False
        if up_to_global_phase:
            return bool(abs(1.0 - self.fidelity(other)) < atol)
        difference = self.terms()
        for index, amplitude in other.terms().items():
            difference[index] = difference.get(index, 0.0) - amplitude
        return all(abs(v) < atol for v in difference.values())

    def _packed_values(self, qubits: Sequence[int]) -> np.ndarray:
        """Per-term big-endian value of the listed qubits (vectorised,
        requires len(qubits) <= 63)."""
        if len(qubits) > 63:
            raise SimulationError("packed value limited to 63 qubits")
        values = np.zeros(self.num_terms, dtype=np.int64)
        for qubit in qubits:
            values = (values << 1) | self._bit(qubit)
        return values

    def block_overlap(self, block_qubits: Sequence[int],
                      block_state: "SparseState") -> float:
        """<psi| (|phi><phi|_block (x) I_rest) |psi>.

        The figure of merit for gadget outputs: it equals 1 exactly
        when the listed block is in the pure state ``block_state`` and
        is disentangled from everything else (junk registers may stay
        arbitrarily entangled among themselves).
        """
        if block_state.num_qubits != len(block_qubits):
            raise SimulationError("block state size mismatch")
        for qubit in block_qubits:
            self._check_qubit(qubit)
        phi = {index: complex(amplitude)
               for index, amplitude in zip(block_state.iter_ints(),
                                           block_state._amplitudes)}
        block_values = self._packed_values(block_qubits)
        # Rest key: the full index with the block bits cleared.
        rest = self._indices.copy()
        for qubit in block_qubits:
            col, _, mask = self._position(qubit)
            rest[:, col] &= ~mask
        coefficients = np.array(
            [phi.get(int(value), 0.0) for value in block_values],
            dtype=np.complex128,
        )
        contributing = coefficients != 0.0
        if not np.any(contributing):
            return 0.0
        rest = rest[contributing]
        weights = (np.conj(coefficients[contributing])
                   * self._amplitudes[contributing])
        order = np.lexsort(
            tuple(rest[:, col] for col in range(rest.shape[1]))
        )
        rest = rest[order]
        weights = weights[order]
        if rest.shape[0] > 1:
            boundary = np.any(rest[1:] != rest[:-1], axis=1)
            group = np.concatenate([[0], np.cumsum(boundary)])
        else:
            group = np.zeros(1, dtype=np.int64)
        sums = np.zeros(int(group[-1]) + 1, dtype=np.complex128)
        np.add.at(sums, group, weights)
        return float(np.sum(np.abs(sums) ** 2))

    def tensor(self, other: "SparseState") -> "SparseState":
        """self (x) other (other's qubits appended after self's)."""
        total_qubits = self.num_qubits + other.num_qubits
        result = SparseState(total_qubits)
        shift = other.num_qubits
        if result._cols == 1:
            left = self._indices[:, 0].astype(np.uint64)[:, None] \
                << np.uint64(shift)
            combined = left | other._indices[:, 0][None, :]
            amplitude_grid = (self._amplitudes[:, None]
                              * other._amplitudes[None, :])
            result._indices = combined.reshape(-1, 1)
            result._amplitudes = amplitude_grid.reshape(-1)
            return result
        # Wide case: shift our columns into place, widen the other's,
        # then broadcast-OR the two column matrices.
        left = self._shifted_columns(self._indices, shift, result._cols)
        right = np.zeros((other.num_terms, result._cols),
                         dtype=np.uint64)
        right[:, :other._cols] = other._indices
        combined = left[:, None, :] | right[None, :, :]
        amplitude_grid = (self._amplitudes[:, None]
                          * other._amplitudes[None, :])
        result._indices = combined.reshape(-1, result._cols)
        result._amplitudes = amplitude_grid.reshape(-1)
        return result

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range [0, {self.num_qubits})"
            )

    def __repr__(self) -> str:
        return (
            f"SparseState(num_qubits={self.num_qubits}, "
            f"terms={self.num_terms})"
        )
