"""Pauli fault propagation through circuits (Heisenberg picture).

Given a circuit and a Pauli fault inserted at some point, this module
computes the equivalent Pauli error at the end of the circuit by
conjugating through every later gate.  For Clifford circuits the result
is exact; at non-Clifford gates (Toffoli, controlled-S, T) a Pauli may
conjugate to a non-Pauli, and the propagator then applies the
*conservative* policy: every qubit the gate touches is marked "wild" —
it may carry an arbitrary error from that point on.  Wildness is
contagious: any later gate touching a wild qubit makes all its qubits
wild.

This over-approximation is exactly what is needed for the paper-style
fault counting: a fault combination is declared benign only when its
propagated error (including wild qubits) is correctable, so the
malignant-pair counts of :mod:`repro.analysis` are upper bounds, and
the derived thresholds are lower bounds — the safe direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.clifford import conjugate_pauli
from repro.circuits.pauli import PauliString
from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class PropagatedFault:
    """The end-of-circuit image of an injected Pauli fault.

    Attributes:
        pauli: the propagated Pauli error on the non-wild qubits (its
            factors on wild qubits are meaningless and set to I).
        wild_qubits: qubits whose error is unknown because the fault
            passed non-trivially through a non-Clifford gate.
    """

    pauli: PauliString
    wild_qubits: FrozenSet[int] = frozenset()

    @property
    def is_trivial(self) -> bool:
        """No residual error at all."""
        return self.pauli.is_identity and not self.wild_qubits

    def x_support(self) -> Set[int]:
        """Qubits possibly carrying a bit error (wild counts as yes)."""
        support = {
            q for q in range(self.pauli.num_qubits) if self.pauli.x_bits[q]
        }
        return support | set(self.wild_qubits)

    def z_support(self) -> Set[int]:
        """Qubits possibly carrying a phase error (wild counts as yes)."""
        support = {
            q for q in range(self.pauli.num_qubits) if self.pauli.z_bits[q]
        }
        return support | set(self.wild_qubits)

    def support(self) -> Set[int]:
        return self.x_support() | self.z_support()

    def combine(self, other: "PropagatedFault") -> "PropagatedFault":
        """Union of two propagated faults (for multi-fault events)."""
        return PropagatedFault(
            pauli=self.pauli * other.pauli,
            wild_qubits=self.wild_qubits | other.wild_qubits,
        )


class PauliPropagator:
    """Propagates Pauli faults through one fixed circuit.

    Args:
        circuit: a measurement-free circuit (the paper's gadgets all
            are — that is the point).
        strict: when True, hitting a non-Clifford gate raises
            :class:`AnalysisError` instead of going wild.
    """

    def __init__(self, circuit: Circuit, strict: bool = False) -> None:
        self._gate_ops: List[GateOp] = []
        for op in circuit.operations:
            if not isinstance(op, GateOp):
                raise AnalysisError(
                    "PauliPropagator requires a measurement-free circuit"
                )
            self._gate_ops.append(op)
        self._num_qubits = circuit.num_qubits
        self._strict = strict

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def num_ops(self) -> int:
        return len(self._gate_ops)

    def propagate(self, fault: PauliString,
                  after_op: int = -1) -> PropagatedFault:
        """Push a fault occurring just after op index ``after_op``.

        ``after_op = -1`` means the fault sits on the circuit inputs.
        """
        if fault.num_qubits != self._num_qubits:
            raise AnalysisError("fault size does not match circuit")
        pauli = fault
        wild: Set[int] = set()
        for index in range(after_op + 1, len(self._gate_ops)):
            op = self._gate_ops[index]
            touches_wild = any(q in wild for q in op.qubits)
            local = pauli.restricted(op.qubits)
            if touches_wild:
                # Contagion: the gate can turn the unknown error into
                # anything on all its qubits.
                wild.update(op.qubits)
                pauli = _clear_qubits(pauli, op.qubits)
                continue
            if local.is_identity:
                continue
            conjugated = conjugate_pauli(op.gate, op.qubits, pauli)
            if conjugated is None:
                if self._strict:
                    raise AnalysisError(
                        f"fault {pauli!r} does not stay Pauli through "
                        f"{op.gate.name} on {op.qubits}"
                    )
                wild.update(op.qubits)
                pauli = _clear_qubits(pauli, op.qubits)
                continue
            pauli = conjugated
        return PropagatedFault(pauli=pauli, wild_qubits=frozenset(wild))

    def propagate_many(self, faults: Sequence[Tuple[PauliString, int]]
                       ) -> PropagatedFault:
        """Propagate several (fault, after_op) events and combine them.

        Multi-fault combination by Pauli multiplication is exact for
        Clifford circuits; with wild qubits it stays a sound
        over-approximation.
        """
        result = PropagatedFault(PauliString.identity(self._num_qubits))
        for fault, after_op in faults:
            result = result.combine(self.propagate(fault, after_op))
        return result


def _clear_qubits(pauli: PauliString, qubits: Sequence[int]) -> PauliString:
    x_bits = list(pauli.x_bits)
    z_bits = list(pauli.z_bits)
    for qubit in qubits:
        x_bits[qubit] = 0
        z_bits[qubit] = 0
    cleared = PauliString(pauli.num_qubits, tuple(x_bits), tuple(z_bits))
    return cleared.strip_phase()
