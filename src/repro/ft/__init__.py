"""Measurement-free fault-tolerant computation — the paper's core.

Public surface:

* :func:`~repro.ft.ngate.build_n_gadget` and
  :class:`~repro.ft.ngate.NGateBuilder` — the quantum-to-classical
  controlled-NOT (Eq. 1 / Fig. 1).
* :func:`~repro.ft.special_states.build_special_state_gadget` with
  :func:`~repro.ft.special_states.t_state_spec` /
  :func:`~repro.ft.special_states.and_state_spec` — measurement-free
  eigenvector preparation (Fig. 2).
* :func:`~repro.ft.t_gadget.build_t_gadget` — measurement-free
  sigma_z^{1/4} (Fig. 3).
* :func:`~repro.ft.toffoli_gadget.build_toffoli_gadget` —
  measurement-free Toffoli (Fig. 4).
* :func:`~repro.ft.recovery.build_recovery_gadget` — measurement-free
  error recovery (Sec. 5).
* :mod:`repro.ft.transversal` — the bitwise logical gate layer.
* :mod:`repro.ft.baselines` — the measurement-based protocols being
  replaced.
* :mod:`repro.ft.conditions` — structural fault-tolerance checks.
* :mod:`repro.ft.ideal_recovery` — the evaluator's perfect decoder.
"""

from repro.ft import (
    baselines,
    classical_logic,
    conditions,
    ideal_recovery,
    transversal,
)
from repro.ft.gadget import Gadget, Register, RegisterAllocator
from repro.ft.ideal_recovery import (
    apply_perfect_recovery,
    recovered_block_overlap,
)
from repro.ft.ngate import NGateBuilder, build_n_gadget
from repro.ft.processor import LogicalProcessor
from repro.ft.recovery import (
    build_full_recovery,
    build_recovery_gadget,
    recovery_ancilla_state,
)
from repro.ft.special_states import (
    SpecialStateSpec,
    and_state_spec,
    build_special_state_gadget,
    sparse_coset_state,
    sparse_logical_state,
    special_state_input,
    t_state_spec,
)
from repro.ft.t_gadget import (
    build_t_gadget,
    expected_t_output,
    psi0_state,
    t_gadget_inputs,
)
from repro.ft.toffoli_gadget import (
    and_resource_state,
    build_toffoli_gadget,
    expected_toffoli_output,
    run_toffoli_gadget,
)

__all__ = [
    "Gadget",
    "LogicalProcessor",
    "NGateBuilder",
    "Register",
    "RegisterAllocator",
    "SpecialStateSpec",
    "and_resource_state",
    "and_state_spec",
    "apply_perfect_recovery",
    "baselines",
    "build_full_recovery",
    "build_n_gadget",
    "build_recovery_gadget",
    "build_special_state_gadget",
    "build_t_gadget",
    "build_toffoli_gadget",
    "classical_logic",
    "conditions",
    "expected_t_output",
    "expected_toffoli_output",
    "ideal_recovery",
    "psi0_state",
    "recovered_block_overlap",
    "recovery_ancilla_state",
    "run_toffoli_gadget",
    "sparse_coset_state",
    "sparse_logical_state",
    "special_state_input",
    "t_gadget_inputs",
    "t_state_spec",
    "transversal",
]
