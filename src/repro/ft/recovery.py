"""Measurement-free error recovery (paper Sec. 5).

Standard (Steane-style) error correction extracts the syndrome into an
encoded ancilla block, *measures* it, runs a classical decoder on the
outcome and applies the indicated Pauli correction.  On an ensemble
machine the measurement is impossible; the paper's prescription:

    "the ancilla qubits need not be measured ... The state of the
    ancilla qubits can be first copied onto a classical repetition
    code using the N gate.  Now classical reversible computation can
    be performed on the repetition code and then a control operation
    can be performed on the quantum data to correct for the errors."

Implemented here for one CSS block and one error species at a time:

X-error recovery (``error_type="X"``):
    1. ancilla block in |+>_L; transversal CNOT data -> ancilla.  Per
       branch the ancilla now holds a uniformly random codeword XOR
       the data's bit-error pattern — its Hamming syndrome is the
       data's X-error syndrome and nothing else (the random codeword
       hides the logical value, so no unintended "measurement" of the
       data happens).
    2. extract ONE master copy of the syndrome bits from the ancilla
       (CNOTs along the parity-check rows);
    3. per data position p: fan the master syndrome out into a
       *private* copy, decode it with reversible classical logic into
       an indicator bit ind_p = [syndrome == column p] (private
       scratch bit included), and apply CNOT(ind_p -> data_p).

The layout encodes two hard-won fault-tolerance lessons, both caught
by this library's exhaustive single-fault sweeps rather than by hand:

* extracting a fresh syndrome *from the ancilla* per position is NOT
  fault tolerant — an ancilla bit error arising mid-way through the
  sequential extractions makes the copies disagree, and inconsistent
  copies can fire two different wrong corrections from one fault;
* decoding all indicators directly off one shared syndrome register
  is not fault tolerant either — a single decode-gate fault can
  corrupt a shared syndrome bit *and* the in-flight indicator chain
  together, again firing two corrections.

With one master extraction plus per-indicator private copies, any
single fault yields at most one firing indicator: a fanout fault
corrupts the master and exactly one private copy, and because
parity-check columns are distinct, the corrupted private copy and the
corrupted master can each match at most one pattern — and never two
different ones.  Private scratch bits are equally load-bearing (a
dirty shared scratch would corrupt every later indicator).

Z-error recovery (``error_type="Z"``): the CSS-dual procedure —
ancilla in |0>_L, transversal CNOT ancilla -> data (data phase errors
copy onto the ancilla), bitwise H on the ancilla (phases become bits),
then the same per-position syndrome/decode machinery driving CZ
corrections.

Phase errors picked up by the classical section never reach the data:
every interaction from the classical side is a control leg.  The
decoder itself is plain NOT/CNOT/Toffoli logic — no quantum fault
tolerance needed beyond bit-error discipline (the paper's closing
point in Sec. 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft.gadget import Gadget, RegisterAllocator, maybe_optimize
from repro.ft.special_states import sparse_logical_state
from repro.simulators.sparse import SparseState

ERROR_TYPES = ("X", "Z")


def _append_indicator(circuit: Circuit, syndrome: Sequence[int],
                      pattern: Sequence[int], scratch: int,
                      indicator: int) -> None:
    """indicator ^= [syndrome bits == pattern], via X-conjugated ANDs.

    For a 3-bit syndrome: X-conjugate the 0-literals, Toffoli the
    first two bits into the scratch, Toffoli (scratch, third) into the
    indicator, then uncompute.  For fewer bits the chain degenerates.
    """
    zero_literals = [s for s, want in zip(syndrome, pattern) if not want]
    for bit in zero_literals:
        circuit.add_gate(gates.X, bit)
    if len(syndrome) == 1:
        circuit.add_gate(gates.CNOT, syndrome[0], indicator)
    elif len(syndrome) == 2:
        circuit.add_gate(gates.TOFFOLI, syndrome[0], syndrome[1],
                         indicator)
    elif len(syndrome) == 3:
        circuit.add_gate(gates.TOFFOLI, syndrome[0], syndrome[1], scratch)
        circuit.add_gate(gates.TOFFOLI, scratch, syndrome[2], indicator)
        circuit.add_gate(gates.TOFFOLI, syndrome[0], syndrome[1], scratch)
    else:
        raise FaultToleranceError(
            f"indicator decode implemented for <=3 syndrome bits, "
            f"got {len(syndrome)}"
        )
    for bit in zero_literals:
        circuit.add_gate(gates.X, bit)


def build_recovery_gadget(code: CssCode, error_type: str = "X",
                          optimize=False) -> Gadget:
    """Build the Sec. 5 measurement-free recovery gadget for one block.

    Registers:
        ``data``     - the protected block (input/output);
        ``ancilla``  - the encoded syndrome-extraction block (input:
                       |+>_L for X recovery, |0>_L for Z recovery);
        ``syndrome_<p>`` - per-position fresh syndrome copy;
        ``scratch_<p>``  - per-position decode scratch;
        ``indicator_<p>``- per-position correction control bit.

    ``optimize`` behaves as in :func:`repro.ft.ngate.build_n_gadget`.
    """
    if error_type not in ERROR_TYPES:
        raise FaultToleranceError(
            f"error_type must be one of {ERROR_TYPES}"
        )
    checks = code.classical_code.parity_check
    num_checks = int(checks.shape[0])
    alloc = RegisterAllocator()
    data = alloc.block("data", code.n, role="data")
    ancilla = alloc.block("ancilla", code.n, role="quantum_ancilla")
    syndrome = alloc.block("syndrome", num_checks, role="work") \
        if num_checks else None
    copies: List = []
    scratches: List = []
    indicators: List = []
    if num_checks:
        for position in range(code.n):
            copies.append(alloc.block(f"copy_{position}", num_checks,
                                      role="work"))
            scratches.append(alloc.block(f"scratch_{position}", 1,
                                         role="scratch"))
            indicators.append(alloc.block(f"indicator_{position}", 1,
                                          role="classical_ancilla"))
    circuit = Circuit(alloc.num_qubits,
                      name=f"recovery_{error_type}[{code.name}]")
    # 1. Syndrome transfer onto the encoded ancilla.
    if error_type == "X":
        for position in range(code.n):
            circuit.add_gate(gates.CNOT, data.qubits[position],
                             ancilla.qubits[position])
    else:
        for position in range(code.n):
            circuit.add_gate(gates.CNOT, ancilla.qubits[position],
                             data.qubits[position])
        for position in range(code.n):
            circuit.add_gate(gates.H, ancilla.qubits[position])
    # 2. One syndrome copy (CNOTs along each parity-check row).
    if num_checks:
        for row in range(num_checks):
            for source in np.nonzero(checks[row])[0]:
                circuit.add_gate(gates.CNOT,
                                 ancilla.qubits[int(source)],
                                 syndrome.qubits[row])
    # 3. Per-position private copy, indicator decode, correction.
    for index in range(len(indicators)):
        position = index
        private = copies[index].qubits
        for row in range(num_checks):
            circuit.add_gate(gates.CNOT, syndrome.qubits[row],
                             private[row])
        # The indicator pattern: the syndrome of a single error at
        # this position (column of the parity-check matrix).
        pattern = [int(checks[row][position]) for row in range(num_checks)]
        if not any(pattern):
            raise FaultToleranceError(
                f"position {position} is not detected by any check"
            )
        _append_indicator(circuit, list(private), pattern,
                          scratches[index].qubits[0],
                          indicators[index].qubits[0])
        correction_gate = gates.CNOT if error_type == "X" else gates.CZ
        circuit.add_gate(correction_gate, indicators[index].qubits[0],
                         data.qubits[position])
    gadget = Gadget(
        name=circuit.name,
        circuit=circuit,
        registers=alloc.registers,
        data_blocks=("data",),
        output_blocks=("data",),
        notes=(
            "Measurement-free error recovery (paper Sec. 5): syndrome "
            "copied classically, decoded by reversible logic, and "
            "applied as classically controlled Pauli corrections."
        ),
    )
    return maybe_optimize(gadget, optimize)


def recovery_ancilla_state(code: CssCode, error_type: str) -> SparseState:
    """The encoded ancilla input: |+>_L for X recovery, |0>_L for Z."""
    if error_type == "X":
        return sparse_logical_state(code, {(0,): 1.0, (1,): 1.0})
    return sparse_logical_state(code, {(0,): 1.0})


def build_full_recovery(code: CssCode) -> List[Gadget]:
    """Both recovery passes, to be applied in sequence (X then Z)."""
    return [build_recovery_gadget(code, "X"),
            build_recovery_gadget(code, "Z")]


def run_recovery(state_block: SparseState, code: CssCode,
                 error_types: Sequence[str] = ("X", "Z"),
                 faults_per_gadget: Optional[Dict[str, list]] = None
                 ) -> SparseState:
    """Apply measurement-free recovery passes to a single-block state.

    Returns the full gadget output of the final pass restricted back
    to a fresh single-block state via overlap-preserving embedding:
    the data block stays at qubits 0..n-1 of each gadget, so callers
    typically inspect the returned state's first n qubits.
    """
    from repro.ft.gadget import apply_circuit_with_faults

    current = state_block
    for error_type in error_types:
        gadget = build_recovery_gadget(code, error_type)
        blocks = {
            "data": current if current.num_qubits == code.n else None,
            "ancilla": recovery_ancilla_state(code, error_type),
        }
        if blocks["data"] is None:
            raise FaultToleranceError(
                "run_recovery chains single-block states only"
            )
        state = gadget.initial_state(blocks)
        faults = (faults_per_gadget or {}).get(error_type, [])
        apply_circuit_with_faults(state, gadget.circuit, faults)
        # Project the data block out for the next pass via the junk-
        # tracing overlap machinery: here we instead keep the full
        # state only on the last pass; intermediate passes require the
        # data block to be disentangled, which ideal runs guarantee.
        current = _extract_block(state, gadget.qubits("data"))
    return current


def _extract_block(state: SparseState, block: Sequence[int]) -> SparseState:
    """Extract a block that is (approximately) disentangled from junk.

    Raises when the block is significantly entangled — callers doing
    fault injection should evaluate with block overlaps instead.
    """
    # Collapse junk by projecting each junk qubit onto its dominant
    # outcome; for a disentangled block this leaves it untouched.
    scratch = state.copy()
    junk = [q for q in range(state.num_qubits) if q not in set(block)]
    for qubit in junk:
        p_one = scratch.probability_of_outcome(qubit, 1)
        scratch.project(qubit, int(p_one > 0.5))
    ordered = sorted(junk, reverse=True)
    for qubit in ordered:
        outcome_prob = scratch.probability_of_outcome(qubit, 1)
        if outcome_prob > 0.5:
            scratch.apply_gate(gates.X, [qubit])
        scratch.release([qubit])
    # Reorder if the block was not contiguous from 0 (it always is for
    # recovery gadgets, whose data block is allocated first).
    if list(block) != list(range(len(block))):
        raise FaultToleranceError("block extraction expects leading block")
    return scratch
