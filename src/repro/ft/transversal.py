"""Transversal (bitwise) logical gates on CSS codes.

The paper's Sec. 3: for CSS codes, logical H, sigma_z and CNOT are
achieved by performing the same gate bitwise, "while the bit-wise
sigma_z^{1/2} yields a sigma_z^{-1/2} logical gate, hence requires an
additional step of bit-wise sigma_z to yield the desired logical gate."

That sign flip is a property of the code's coset weights mod 4, so this
module computes it per code (:func:`bitwise_s_phase`) instead of
hard-coding the Steane behaviour: on the Steane code bitwise S acts as
logical S^dagger (|1>_L-coset weights are 3 mod 4), on the trivial code
as logical S.  The same analysis chooses the physical two-qubit gate
(CS or CS^dagger) implementing a *classically controlled* logical S —
the gate the measurement-free sigma_z^{1/4} gadget hangs off its
classical ancilla.

All circuits here are transversal: each physical gate touches at most
one qubit per block, so one gate fault produces at most one error per
block — the sufficient condition for fault tolerance.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError


def support_positions(code: CssCode) -> List[int]:
    """Positions of the logical X/Z support vector."""
    return [int(q) for q in np.nonzero(code.logical_support)[0]]


def logical_x_circuit(code: CssCode) -> Circuit:
    """Logical X: physical X on the logical support."""
    circuit = Circuit(code.n, name="logical_X")
    for qubit in support_positions(code):
        circuit.add_gate(gates.X, qubit)
    return circuit


def logical_z_circuit(code: CssCode) -> Circuit:
    """Logical Z: physical Z on the logical support."""
    circuit = Circuit(code.n, name="logical_Z")
    for qubit in support_positions(code):
        circuit.add_gate(gates.Z, qubit)
    return circuit


def logical_h_circuit(code: CssCode) -> Circuit:
    """Logical H: physical H on every qubit (CSS self-dual case)."""
    circuit = Circuit(code.n, name="logical_H")
    for qubit in range(code.n):
        circuit.add_gate(gates.H, qubit)
    return circuit


def coset_weights_mod4(code: CssCode) -> tuple:
    """(w0, w1): weights mod 4 of the |0>_L and |1>_L cosets.

    Raises:
        FaultToleranceError: if weights within a coset are not uniform
            mod 4 (then bitwise S is not a logical operation at all).
    """
    dual_words = code._enumerate_dual_words()  # internal, stable
    shift = code.logical_support
    zero_weights = {int(np.sum(word)) % 4 for word in dual_words}
    one_weights = {
        int(np.sum((word + shift) % 2)) % 4 for word in dual_words
    }
    if len(zero_weights) != 1 or len(one_weights) != 1:
        raise FaultToleranceError(
            f"{code.name}: coset weights not uniform mod 4; bitwise S "
            "does not preserve the code space"
        )
    return zero_weights.pop(), one_weights.pop()


def bitwise_s_phase(code: CssCode) -> complex:
    """The phase bitwise S applies to |1>_L (relative to |0>_L).

    +i means bitwise S *is* logical S; -i means it is logical S^dagger
    (the paper's Steane-code case).
    """
    w0, w1 = coset_weights_mod4(code)
    if w0 != 0:
        raise FaultToleranceError(
            f"{code.name}: |0>_L coset weight {w0} mod 4 != 0; bitwise "
            "S adds a relative phase within the code space"
        )
    phase = 1j**w1
    if phase not in (1j, -1j):
        raise FaultToleranceError(
            f"{code.name}: bitwise S acts as diag(1, {phase}); it "
            "implements neither logical S nor logical S^dagger"
        )
    return phase


def logical_s_circuit(code: CssCode) -> Circuit:
    """Logical S = diag(1, i)_L, built from bitwise S or S^dagger."""
    gate = gates.S if bitwise_s_phase(code) == 1j else gates.S_DG
    circuit = Circuit(code.n, name="logical_S")
    for qubit in range(code.n):
        circuit.add_gate(gate, qubit)
    return circuit


def logical_s_dagger_circuit(code: CssCode) -> Circuit:
    """Logical S^dagger = diag(1, -i)_L."""
    gate = gates.S_DG if bitwise_s_phase(code) == 1j else gates.S
    circuit = Circuit(code.n, name="logical_S_DG")
    for qubit in range(code.n):
        circuit.add_gate(gate, qubit)
    return circuit


def controlled_s_physical_gate(code: CssCode) -> gates.Gate:
    """Physical two-qubit gate whose bitwise application from a
    classical control block realises a controlled logical S.

    For the Steane code this is CS^dagger (since bitwise S^dagger is
    logical S); for the trivial code it is CS.
    """
    return gates.CS if bitwise_s_phase(code) == 1j else gates.CS_DG


def controlled_s_dagger_physical_gate(code: CssCode) -> gates.Gate:
    """Physical gate for a bitwise controlled logical S^dagger
    (= sigma_z^{-1/2}, the factor in the |psi_0> eigenoperator)."""
    return gates.CS_DG if bitwise_s_phase(code) == 1j else gates.CS


def logical_cnot_circuit(code: CssCode) -> Circuit:
    """Transversal CNOT between two blocks (control 0..n-1)."""
    circuit = Circuit(2 * code.n, name="logical_CNOT")
    for qubit in range(code.n):
        circuit.add_gate(gates.CNOT, qubit, code.n + qubit)
    return circuit


def logical_cz_circuit(code: CssCode) -> Circuit:
    """Transversal CZ between two blocks.

    Valid for codes whose dual-coset inner products vanish (C^perp
    self-orthogonal and logical support of odd self-overlap) — the
    shipped codes qualify; the property is verified in the test-suite.
    """
    circuit = Circuit(2 * code.n, name="logical_CZ")
    for qubit in range(code.n):
        circuit.add_gate(gates.CZ, qubit, code.n + qubit)
    return circuit


# ---------------------------------------------------------------------------
# Classically controlled logical operations (the paper's Sec. 4.2 point:
# a classical repetition block can control bitwise operations on quantum
# data, and phase errors can never flow from control to data).
# ---------------------------------------------------------------------------

def add_controlled_logical_x(circuit: Circuit, code: CssCode,
                             control_block: Sequence[int],
                             data_block: Sequence[int]) -> None:
    """Bitwise controlled-X: classical bit i drives data qubit i.

    Applies logical X when the control block is |1...1>, identity when
    |0...0>.  Only the logical-support positions need gates.
    """
    _check_blocks(code, control_block, data_block)
    for position in support_positions(code):
        circuit.add_gate(gates.CNOT, control_block[position],
                         data_block[position])


def add_controlled_logical_z(circuit: Circuit, code: CssCode,
                             control_block: Sequence[int],
                             data_block: Sequence[int]) -> None:
    """Bitwise controlled-Z from a classical block."""
    _check_blocks(code, control_block, data_block)
    for position in support_positions(code):
        circuit.add_gate(gates.CZ, control_block[position],
                         data_block[position])


def add_controlled_logical_s(circuit: Circuit, code: CssCode,
                             control_block: Sequence[int],
                             data_block: Sequence[int]) -> None:
    """Bitwise controlled logical S from a classical block.

    This is exactly the operation the naive measurement-delaying
    strategy cannot build fault tolerantly (the catch-22 of footnote 3:
    a quantum-controlled S^{1/1} needs the very gate being built).
    With a *classical* control block it is just a bitwise two-qubit
    gate, and phase errors cannot flow control -> data.
    """
    _check_blocks(code, control_block, data_block)
    gate = controlled_s_physical_gate(code)
    for position in range(code.n):
        circuit.add_gate(gate, control_block[position],
                         data_block[position])


def add_controlled_logical_cnot(circuit: Circuit, code: CssCode,
                                control_block: Sequence[int],
                                data_control: Sequence[int],
                                data_target: Sequence[int]) -> None:
    """Classically controlled logical CNOT: bitwise Toffolis.

    The physical gate is a Toffoli with one leg on the classical block
    — precisely the gate Shor's construction needed a measurement for,
    made harmless because the classical leg cannot pass phase errors on.
    """
    _check_blocks(code, control_block, data_control)
    _check_blocks(code, control_block, data_target)
    for position in range(code.n):
        circuit.add_gate(gates.TOFFOLI, control_block[position],
                         data_control[position], data_target[position])


def add_controlled_logical_cz(circuit: Circuit, code: CssCode,
                              control_block: Sequence[int],
                              data_a: Sequence[int],
                              data_b: Sequence[int]) -> None:
    """Classically controlled logical CZ: bitwise CCZ gates."""
    _check_blocks(code, control_block, data_a)
    _check_blocks(code, control_block, data_b)
    for position in range(code.n):
        circuit.add_gate(gates.CCZ, control_block[position],
                         data_a[position], data_b[position])


def _check_blocks(code: CssCode, *blocks: Sequence[int]) -> None:
    seen: set = set()
    for block in blocks:
        if len(block) != code.n:
            raise FaultToleranceError(
                f"block size {len(block)} != code length {code.n}"
            )
        overlap = seen & set(block)
        if overlap:
            raise FaultToleranceError(
                f"blocks overlap on qubits {sorted(overlap)}; transversal "
                "operations need disjoint blocks"
            )
        seen |= set(block)
