"""Structural fault-tolerance checks.

The paper's Sec. 3 sufficient condition: operate on code blocks only
bitwise/transversally, so a single gate fault produces at most one
error per block.  :func:`check_transversal_structure` certifies a
gadget circuit against that condition mechanically; every gadget in
the library passes it (see the test-suite), which together with the
exhaustive single-fault sweeps gives both the structural and the
behavioural side of the fault-tolerance argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.circuits.circuit import Circuit, GateOp
from repro.exceptions import FaultToleranceError
from repro.ft.gadget import Gadget


@dataclass(frozen=True)
class TransversalityViolation:
    """A gate touching one protected block more than once."""

    op_index: int
    gate_name: str
    block: str
    qubits: Tuple[int, ...]


def check_transversal_structure(gadget: Gadget,
                                protected_roles: Sequence[str] =
                                ("data", "quantum_ancilla")
                                ) -> List[TransversalityViolation]:
    """Find gates touching any protected block at >1 qubit.

    Classical-ancilla, cat and scratch registers are exempt: multiple
    legs there cannot spread errors beyond what their own redundancy
    absorbs (bit errors stay bitwise; phase errors are irrelevant).

    Returns the violations (empty list = structurally fault tolerant).
    """
    qubit_block: Dict[int, str] = {}
    for register in gadget.registers.values():
        if register.role in protected_roles:
            for qubit in register.qubits:
                qubit_block[qubit] = register.name
    violations: List[TransversalityViolation] = []
    for index, op in enumerate(gadget.circuit.operations):
        if not isinstance(op, GateOp):
            raise FaultToleranceError("gadget circuits must be unitary")
        touched: Dict[str, int] = {}
        for qubit in op.qubits:
            block = qubit_block.get(qubit)
            if block is None:
                continue
            touched[block] = touched.get(block, 0) + 1
        for block, count in touched.items():
            if count > 1:
                violations.append(TransversalityViolation(
                    op_index=index, gate_name=op.gate.name, block=block,
                    qubits=op.qubits,
                ))
    return violations


def assert_fault_tolerant_structure(gadget: Gadget) -> None:
    """Raise with a readable report when the structure check fails."""
    violations = check_transversal_structure(gadget)
    if violations:
        lines = [
            f"  op {v.op_index} ({v.gate_name} on {v.qubits}) touches "
            f"block {v.block} more than once"
            for v in violations[:10]
        ]
        raise FaultToleranceError(
            f"gadget {gadget.name} violates the transversality "
            f"condition:\n" + "\n".join(lines)
        )


def classical_control_only(gadget: Gadget) -> bool:
    """Whether classical-ancilla qubits are only ever *control* legs.

    The paper's key invariant: phase errors cannot flow from the
    classical ancilla to quantum data because the classical side never
    appears as the target of an entangling gate with the data.  For
    the gate set used by the gadgets (CNOT/Toffoli targets last, all
    other multi-qubit gates diagonal), it suffices that a classical
    qubit is never the *target* leg of a CNOT/Toffoli whose controls
    include data-block qubits.
    """
    roles: Dict[int, str] = {}
    for register in gadget.registers.values():
        for qubit in register.qubits:
            roles[qubit] = register.role
    for op in gadget.circuit.operations:
        assert isinstance(op, GateOp)
        if op.gate.name not in ("CNOT", "TOFFOLI"):
            continue
        target = op.qubits[-1]
        controls = op.qubits[:-1]
        if roles.get(target) == "classical_ancilla" and any(
                roles.get(q) == "data" for q in controls):
            return False
    return True
