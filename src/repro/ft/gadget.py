"""Gadget framework: circuits with named register blocks.

A fault-tolerant *gadget* is a measurement-free circuit acting on named
blocks — encoded data blocks, quantum ancilla blocks, classical
(repetition-basis) ancilla blocks, cat-state blocks, scratch bits.
:class:`Gadget` bundles the flat circuit with its register map so
simulators, fault injectors and the analysis module can all address
"the data block" instead of raw qubit indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.pauli import PauliString
from repro.exceptions import FaultToleranceError
from repro.simulators.sparse import SparseState


@dataclass(frozen=True)
class Register:
    """A named, ordered set of qubit indices inside a gadget circuit."""

    name: str
    qubits: Tuple[int, ...]
    role: str = "work"  # 'data' | 'quantum_ancilla' | 'classical_ancilla'
    #                     | 'cat' | 'scratch' | 'output' | 'work'

    @property
    def size(self) -> int:
        return len(self.qubits)


class RegisterAllocator:
    """Sequentially hands out qubit indices for named registers."""

    def __init__(self) -> None:
        self._next = 0
        self._registers: Dict[str, Register] = {}

    def block(self, name: str, size: int, role: str = "work") -> Register:
        if name in self._registers:
            raise FaultToleranceError(f"register {name!r} already allocated")
        register = Register(
            name=name,
            qubits=tuple(range(self._next, self._next + size)),
            role=role,
        )
        self._next += size
        self._registers[name] = register
        return register

    @property
    def num_qubits(self) -> int:
        return self._next

    @property
    def registers(self) -> Dict[str, Register]:
        return dict(self._registers)


@dataclass
class Gadget:
    """A measurement-free circuit plus its register map.

    Attributes:
        name: display name (e.g. 'ngate[steane,r=3]').
        circuit: the flat circuit over all registers.
        registers: register name -> :class:`Register`.
        data_blocks: names of registers holding protected logical data
            whose errors must stay correctable.
        output_blocks: names of registers carrying the gadget's result.
    """

    name: str
    circuit: Circuit
    registers: Dict[str, Register]
    data_blocks: Tuple[str, ...] = ()
    output_blocks: Tuple[str, ...] = ()
    notes: str = ""

    def register(self, name: str) -> Register:
        try:
            return self.registers[name]
        except KeyError:
            raise FaultToleranceError(
                f"gadget {self.name} has no register {name!r}; available: "
                f"{sorted(self.registers)}"
            ) from None

    def qubits(self, name: str) -> Tuple[int, ...]:
        return self.register(name).qubits

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    def initial_state(self, block_states: Dict[str, SparseState]
                      ) -> SparseState:
        """Tensor the given block states (|0...0> elsewhere).

        Registers must be contiguous and in allocation order, which
        :class:`RegisterAllocator` guarantees.
        """
        ordered = sorted(self.registers.values(), key=lambda r: r.qubits[0])
        state: Optional[SparseState] = None
        covered = 0
        for register in ordered:
            if register.qubits[0] != covered:
                raise FaultToleranceError(
                    f"register {register.name} is not contiguous"
                )
            covered = register.qubits[-1] + 1
            if register.name in block_states:
                piece = block_states[register.name]
                if piece.num_qubits != register.size:
                    raise FaultToleranceError(
                        f"state for {register.name} has "
                        f"{piece.num_qubits} qubits, expected "
                        f"{register.size}"
                    )
                piece = piece.copy()
            else:
                piece = SparseState(register.size)
            state = piece if state is None else state.tensor(piece)
        unknown = set(block_states) - set(self.registers)
        if unknown:
            raise FaultToleranceError(
                f"unknown blocks {sorted(unknown)} for gadget {self.name}"
            )
        if state is None:
            raise FaultToleranceError("gadget has no registers")
        return state

    def run(self, block_states: Optional[Dict[str, SparseState]] = None,
            faults: Optional[Sequence[Tuple[PauliString, int]]] = None
            ) -> SparseState:
        """Execute the gadget, optionally with injected Pauli faults.

        Args:
            block_states: initial states per register (default |0..0>).
            faults: (pauli, after_op) pairs; after_op = -1 injects
                before the first operation.
        """
        state = self.initial_state(block_states or {})
        apply_circuit_with_faults(state, self.circuit, faults or [])
        return state

    def block_overlap(self, state: SparseState, block: str,
                      expected: SparseState) -> float:
        """Overlap of one register with an expected pure block state."""
        return state.block_overlap(self.qubits(block), expected)


def apply_circuit_with_faults(state: SparseState, circuit: Circuit,
                              faults: Sequence[Tuple[PauliString, int]]
                              ) -> None:
    """Apply a unitary circuit to a sparse state with faults inserted."""
    from repro.circuits.circuit import GateOp

    by_point: Dict[int, List[PauliString]] = {}
    for pauli, after_op in faults:
        by_point.setdefault(after_op, []).append(pauli)
    for pauli in by_point.get(-1, []):
        state.apply_pauli(pauli)
    for index, op in enumerate(circuit.operations):
        if not isinstance(op, GateOp) or op.condition is not None:
            raise FaultToleranceError(
                "gadget circuits must be unconditional and unitary"
            )
        state.apply_gate(op.gate, op.qubits)
        for pauli in by_point.get(index, []):
            state.apply_pauli(pauli)


def maybe_optimize(gadget: Gadget, optimize) -> Gadget:
    """Resolve a gadget constructor's ``optimize=`` knob.

    ``False``/``None`` returns the gadget untouched; ``True`` runs the
    canonical qubit-preserving pipeline; a
    :class:`~repro.optimize.PassPipeline` is used as-is (it must
    preserve qubits).  Shared by the :mod:`repro.ft` constructors so
    their knob stays one keyword.
    """
    if optimize is False or optimize is None:
        return gadget
    from repro.optimize.pipeline import _resolve_pipeline, optimize_gadget

    return optimize_gadget(gadget, _resolve_pipeline(optimize, gadget=True))
