"""The N gate: quantum-to-classical controlled-NOT (paper Sec. 4.1-4.2).

The N operation (Eq. 1) copies the *logical basis* of an encoded
quantum ancilla onto a classical ancilla in the repetition basis:

    |0>_L (x) |0...0>  ->  |0>_L (x) |0...0>
    |0>_L (x) |1...1>  ->  |0>_L (x) |1...1>
    |1>_L (x) |0...0>  ->  |1>_L (x) |1...1>
    |1>_L (x) |1...1>  ->  |1>_L (x) |0...0>

It replaces the measurement of an encoded ancilla: where the standard
protocol measures every physical qubit and classically corrects the
outcome (Hamming-correct, then take the parity — paper Sec. 4.1), N
performs that very computation coherently.

The building block is N_1 (Fig. 1), producing ONE corrected classical
bit:

1. *Syndrome check bits*: one fresh |0> bit per Hamming parity check,
   each computed by CNOTs from the quantum ancilla.  These prevent a
   single pre-existing bit error in the quantum ancilla from
   corrupting the classical bit — without them that one error would
   flip every produced bit and defeat the redundancy.
2. *Raw parity bit*: CNOTs from all n positions of the quantum ancilla
   (the all-ones vector is the logical-Z readout).
3. *Correction*: parity ^= OR(syndrome bits) — under the single-fault
   assumption a nonzero syndrome means exactly one bit error, and any
   single bit error flips the all-ones parity.

Two full-N variants are provided, both machine-checked against every
single fault:

* ``variant="direct"`` (default; the Fig. 1 caption's prescription —
  "the operations on the last bit have to be repeated to generate
  multiple target bits"): N_1 is repeated once per classical-ancilla
  output bit, with fresh syndrome/scratch bits each time.  Any single
  fault corrupts at most one output bit, which the downstream bitwise
  controlled-U converts into at most one (correctable) data error.
* ``variant="voted"`` (the Sec. 4.2 efficiency note: repeat N_1 only
  2k+1 times, majority-vote, then copy into n bits): implemented with
  per-output *private copies* of the 2k+1 parity bits.  The obvious
  implementation — vote once and fan the result out — has two single
  points of failure this library's exhaustive sweeps catch: a fault on
  the voted bit before fan-out corrupts every copy, and a fault on a
  majority Toffoli corrupts two of the three shared voters at once.
  Fanning out each voter first (errors stay confined to one voter
  column) and voting separately into each output restores fault
  tolerance.

Error-flow guarantees (all machine-checked in the test-suite):

* phase errors flow from the classical side into the quantum ancilla
  but never onward into quantum data (the classical ancilla only ever
  serves as a *control*);
* no single fault anywhere (input, gate, delay line) produces more
  than one wrong classical output bit or an uncorrectable
  quantum-ancilla bit error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import classical_logic
from repro.ft.gadget import (
    Gadget,
    Register,
    RegisterAllocator,
    maybe_optimize,
)


def readout_vector(code: CssCode) -> np.ndarray:
    """The all-ones logical-Z readout vector, validated for the code.

    The Fig. 1 correction rule "flip the parity iff the syndrome is
    nonzero" relies on *every* single bit error flipping the readout
    parity, which forces the all-ones vector.  It must be a codeword of
    the classical code (so error-free branches leave the syndrome
    clean) outside the dual (so it reads the logical bit).
    """
    ones = np.ones(code.n, dtype=np.uint8)
    if not code.classical_code.is_codeword(ones):
        raise FaultToleranceError(
            f"{code.name}: all-ones is not a classical codeword; the "
            "Fig. 1 N gate construction does not apply"
        )
    from repro.codes import gf2

    dual = code.classical_code.parity_check
    if dual.shape[0] and gf2.row_space_contains(dual, ones):
        raise FaultToleranceError(
            f"{code.name}: all-ones lies in the dual code, so its "
            "parity carries no logical information"
        )
    return ones


def default_repetitions(code: CssCode) -> int:
    """The paper's 2k+1 prescription (3 for Steane, 1 for trivial)."""
    return 2 * code.correctable_errors + 1


def append_n1(circuit: Circuit, code: CssCode,
              quantum_block: Sequence[int],
              syndrome_bits: Sequence[int],
              parity_bit: int,
              scratch_bit: Optional[int]) -> None:
    """Append one N_1 sub-circuit (Fig. 1) to an existing circuit.

    Args:
        circuit: destination circuit.
        quantum_block: the n encoded-ancilla qubits.
        syndrome_bits: fresh |0> bits, one per parity-check row.
        parity_bit: fresh |0> bit receiving the corrected parity.
        scratch_bit: fresh scratch for the 3-input OR (None when there
            are fewer than 3 parity checks).
    """
    checks = code.classical_code.parity_check
    if len(syndrome_bits) != checks.shape[0]:
        raise FaultToleranceError(
            f"need {checks.shape[0]} syndrome bits, got "
            f"{len(syndrome_bits)}"
        )
    # 1. Syndrome extraction: CNOTs along each parity-check row.
    for row_index in range(checks.shape[0]):
        for position in np.nonzero(checks[row_index])[0]:
            circuit.add_gate(gates.CNOT, quantum_block[int(position)],
                             syndrome_bits[row_index])
    # 2. Raw parity along the all-ones readout vector.
    for position in np.nonzero(readout_vector(code))[0]:
        circuit.add_gate(gates.CNOT, quantum_block[int(position)],
                         parity_bit)
    # 3. Correction: flip the parity iff the syndrome is nonzero.
    if len(syndrome_bits):
        if len(syndrome_bits) == 3 and scratch_bit is None:
            raise FaultToleranceError("3-check OR needs a scratch bit")
        classical_logic.or_into(
            circuit, list(syndrome_bits), parity_bit,
            scratch_bit if scratch_bit is not None else -1,
        )


class NGateBuilder:
    """Appends complete N gates into a host circuit's register space.

    Used by the sigma_z^{1/4} and Toffoli gadgets, which embed one or
    more N gates; the stand-alone experiment gadget is
    :func:`build_n_gadget`.
    """

    def __init__(self, code: CssCode, variant: str = "direct",
                 repetitions: Optional[int] = None) -> None:
        if variant not in ("direct", "voted"):
            raise FaultToleranceError(
                f"unknown N variant {variant!r}; pick 'direct' or 'voted'"
            )
        self.code = code
        self.variant = variant
        self.repetitions = (default_repetitions(code)
                            if repetitions is None else repetitions)
        if variant == "voted" and self.repetitions not in (1, 3):
            raise FaultToleranceError(
                "voted variant implemented for 1 or 3 repetitions "
                "(majority network degree)"
            )
        self.checks = int(code.classical_code.parity_check.shape[0])
        if self.checks > 3:
            raise FaultToleranceError(
                f"{code.name} has {self.checks} parity checks; the "
                "3-input OR correction box covers at most 3"
            )
        readout_vector(code)  # validate up front

    def ancilla_blocks(self, alloc: RegisterAllocator, prefix: str,
                       output_width: Optional[int] = None) -> dict:
        """Allocate this N gate's internal registers under a prefix."""
        output_width = self.code.n if output_width is None else output_width
        stages = (output_width if self.variant == "direct"
                  else self.repetitions)
        blocks = {"stages": stages, "output_width": output_width}
        if self.checks:
            blocks["syndromes"] = [
                alloc.block(f"{prefix}syndrome_{stage}", self.checks,
                            role="work")
                for stage in range(stages)
            ]
        else:
            blocks["syndromes"] = [None] * stages
        if self.checks == 3:
            blocks["scratches"] = [
                alloc.block(f"{prefix}scratch_{stage}", 1, role="scratch")
                for stage in range(stages)
            ]
        else:
            blocks["scratches"] = [None] * stages
        if self.variant == "voted":
            blocks["parity"] = alloc.block(f"{prefix}parity",
                                           self.repetitions, role="work")
            blocks["copies"] = [
                alloc.block(f"{prefix}copies_{rep}", output_width,
                            role="work")
                for rep in range(self.repetitions)
            ]
        return blocks

    def append(self, circuit: Circuit, quantum_block: Sequence[int],
               classical_block: Sequence[int], blocks: dict) -> None:
        """Append the N gate using pre-allocated internal registers."""
        if len(classical_block) != blocks["output_width"]:
            raise FaultToleranceError("classical block width mismatch")
        if self.variant == "direct":
            for stage, output_bit in enumerate(classical_block):
                self._append_stage(circuit, quantum_block, blocks, stage,
                                   output_bit)
            return
        # Voted variant: 2k+1 corrected parities, fanned-out private
        # copies, then an independent majority into each output bit.
        parity = blocks["parity"].qubits
        for rep in range(self.repetitions):
            self._append_stage(circuit, quantum_block, blocks, rep,
                               parity[rep])
        for rep in range(self.repetitions):
            copies = blocks["copies"][rep].qubits
            for copy_bit in copies:
                circuit.add_gate(gates.CNOT, parity[rep], copy_bit)
        for position, output_bit in enumerate(classical_block):
            voters = [blocks["copies"][rep].qubits[position]
                      for rep in range(self.repetitions)]
            classical_logic.majority_into(circuit, voters, output_bit)

    def _append_stage(self, circuit: Circuit,
                      quantum_block: Sequence[int], blocks: dict,
                      stage: int, parity_bit: int) -> None:
        syndrome = blocks["syndromes"][stage]
        scratch = blocks["scratches"][stage]
        append_n1(
            circuit, self.code, quantum_block,
            syndrome.qubits if syndrome is not None else (),
            parity_bit,
            scratch.qubits[0] if scratch is not None else None,
        )


def build_n_gadget(code: CssCode,
                   variant: str = "direct",
                   repetitions: Optional[int] = None,
                   output_width: Optional[int] = None,
                   optimize=False) -> Gadget:
    """Build the stand-alone N gadget (the Fig. 1 experiment).

    Registers:
        ``quantum``  - the encoded ancilla block (n qubits, input);
        ``classical`` - the classical-ancilla output block;
        plus the variant's internal syndrome/scratch/parity registers.

    ``optimize`` (``False`` | ``True`` | a qubit-preserving
    :class:`~repro.optimize.PassPipeline`) rewrites the circuit
    through the certified optimizer; registers and qubit numbering are
    unchanged, only the operation list (and hence the fault-location
    count) shrinks.
    """
    builder = NGateBuilder(code, variant=variant, repetitions=repetitions)
    alloc = RegisterAllocator()
    quantum = alloc.block("quantum", code.n, role="quantum_ancilla")
    classical = alloc.block(
        "classical", code.n if output_width is None else output_width,
        role="classical_ancilla",
    )
    blocks = builder.ancilla_blocks(alloc, prefix="",
                                    output_width=classical.size)
    circuit = Circuit(alloc.num_qubits,
                      name=f"N[{code.name},{variant}]")
    builder.append(circuit, quantum.qubits, classical.qubits, blocks)
    gadget = Gadget(
        name=circuit.name,
        circuit=circuit,
        registers=alloc.registers,
        data_blocks=("quantum",),
        output_blocks=("classical",),
        notes=(
            "Quantum-to-classical CNOT (paper Eq. 1 / Fig. 1): copies "
            "the logical basis of the encoded ancilla onto a "
            "repetition-basis classical ancilla without measurement."
        ),
    )
    return maybe_optimize(gadget, optimize)


def classical_majority_value(bits: Sequence[int]) -> int:
    """Majority decode of a classical-ancilla bit pattern."""
    ones = sum(int(b) & 1 for b in bits)
    if 2 * ones == len(bits):
        raise FaultToleranceError("tied majority on classical ancilla")
    return int(2 * ones > len(bits))
