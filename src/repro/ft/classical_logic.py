"""Reversible classical logic sub-circuits.

The paper's constructions repeatedly need small reversible classical
computations performed coherently: OR of syndrome bits into the raw
parity bit (Fig. 1's correction box), majority votes over repeated
ancilla bits, and AND of classical ancilla blocks (the Toffoli gadget's
m1*m2 correction).  These run on "classical" qubits — repetition-basis
blocks or single check bits — where only bit errors matter, which is
exactly why plain NOT/CNOT/Toffoli circuits suffice (paper Sec. 5).

Fault-structure note: every function here writes each output bit with
its own gates from the shared inputs, never by fanning out a single
computed bit.  A fan-out of one freshly computed bit would be a single
point of failure (one fault corrupting every copy); recomputing per
output keeps single faults confined to single output bits.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.exceptions import FaultToleranceError


def xor_into(circuit: Circuit, sources: Sequence[int], target: int) -> None:
    """target ^= XOR(sources) via CNOTs."""
    for source in sources:
        circuit.add_gate(gates.CNOT, source, target)


def or_into(circuit: Circuit, sources: Sequence[int], target: int,
            scratch: int) -> None:
    """target ^= OR(sources) for up to three sources.

    Uses the inclusion-exclusion expansion
    OR(a,b,c) = a + b + c + ab + ac + bc + abc  (mod 2),
    with one scratch bit for the triple product (computed and exactly
    uncomputed, so the scratch is reusable and always returns to its
    input value even in the presence of source-bit errors).
    """
    sources = list(sources)
    if not 1 <= len(sources) <= 3:
        raise FaultToleranceError(
            f"or_into supports 1..3 sources, got {len(sources)}"
        )
    if scratch in sources or scratch == target:
        raise FaultToleranceError("scratch bit overlaps operands")
    for source in sources:
        circuit.add_gate(gates.CNOT, source, target)
    for first, second in combinations(sources, 2):
        circuit.add_gate(gates.TOFFOLI, first, second, target)
    if len(sources) == 3:
        a, b, c = sources
        circuit.add_gate(gates.TOFFOLI, a, b, scratch)
        circuit.add_gate(gates.TOFFOLI, scratch, c, target)
        circuit.add_gate(gates.TOFFOLI, a, b, scratch)


def majority_into(circuit: Circuit, sources: Sequence[int],
                  target: int) -> None:
    """target ^= MAJ(sources) for one or three sources.

    MAJ(a,b,c) = ab + bc + ac (mod 2): three Toffolis, no scratch.
    The r = 1 case (trivial code, k = 0) degenerates to a plain copy.
    Larger odd repetition counts would need higher-degree symmetric
    polynomials; the paper's 2k+1 prescription with the shipped codes
    (k <= 1) never requires them.
    """
    sources = list(sources)
    if target in sources:
        raise FaultToleranceError("majority target overlaps sources")
    if len(sources) == 1:
        circuit.add_gate(gates.CNOT, sources[0], target)
        return
    if len(sources) == 3:
        for first, second in combinations(sources, 2):
            circuit.add_gate(gates.TOFFOLI, first, second, target)
        return
    raise FaultToleranceError(
        f"majority_into supports 1 or 3 sources, got {len(sources)}"
    )


def and_blocks_into(circuit: Circuit, block_a: Sequence[int],
                    block_b: Sequence[int],
                    block_out: Sequence[int]) -> None:
    """Bitwise AND of two classical blocks into a third (Toffolis).

    On repetition-basis inputs |m1...m1>, |m2...m2> this computes the
    repetition encoding of m1 AND m2; a single faulty Toffoli corrupts
    exactly one output position (paper Sec. 5: classical reversible
    computation carried out directly on the repetition code).
    """
    if not len(block_a) == len(block_b) == len(block_out):
        raise FaultToleranceError("AND blocks must have equal size")
    for a, b, out in zip(block_a, block_b, block_out):
        circuit.add_gate(gates.TOFFOLI, a, b, out)


def not_block(circuit: Circuit, block: Sequence[int]) -> None:
    """Bitwise NOT of a classical block."""
    for qubit in block:
        circuit.add_gate(gates.X, qubit)


def xor_blocks_into(circuit: Circuit, source: Sequence[int],
                    target: Sequence[int]) -> None:
    """Bitwise XOR of one classical block into another (CNOTs)."""
    if len(source) != len(target):
        raise FaultToleranceError("XOR blocks must have equal size")
    for s, t in zip(source, target):
        circuit.add_gate(gates.CNOT, s, t)
