"""Measurement-free fault-tolerant Toffoli (paper Sec. 4.5 / Fig. 4).

Shor's FOCS'96 fault-tolerant Toffoli teleports the gate off the
resource state |AND> = (|000> + |010> + |100> + |111>)_L / 2, using
three measurements whose outcomes condition Clifford corrections —
including a classically controlled CNOT, i.e. a Toffoli, the original
catch-22.  The paper's Fig. 4 replaces each measurement with an N gate
and hangs every correction off the resulting *classical* ancilla
blocks, where the controlled-CNOT becomes a bitwise physical Toffoli
with its control leg on repetition-basis bits that cannot pass phase
errors back.

Construction (blocks A, B, C hold |AND>; x, y, z are the data blocks;
all logical operations are transversal):

    1. CNOT_L(A -> x); CNOT_L(B -> y); CNOT_L(z -> C)
    2. H_L on z
    3. N(x -> m1); N(y -> m2); N(z -> m3)      [classical ancillas]
    4. corrections controlled by the classical blocks, in order:
       a. phase:  Lambda_{m3}(Z_L on C)            [bitwise CZ]
                  Lambda_{m3}(CZ_L on A,B)         [bitwise CCZ]
       b. bits:   Lambda_{m2}(CNOT_L A -> C)       [bitwise Toffoli]
                  Lambda_{m1}(CNOT_L B -> C)       [bitwise Toffoli]
                  m12 := m1 AND m2                 [bitwise Toffoli,
                                                    classical only]
                  Lambda_{m12}(X_L on C)           [bitwise CNOT]
       c. flips:  Lambda_{m1}(X_L on A); Lambda_{m2}(X_L on B)

Derivation sketch: after step 3, branch (m1, m2, m3) holds
A = x(+)m1, B = y(+)m2, C = A.B (+) z with phase (-1)^{z m3}.  Since
z = C (+) A.B, the phase is cancelled by (-1)^{m3 C} (Z_L on C) times
(-1)^{m3 A B} (CZ_L on A,B); the bit corrections add
m2.A (+) m1.B (+) m1.m2 to C turning it into x.y (+) z, and the final
flips restore A = x, B = y.  Every branch then carries the same
Toffoli_L|x, y, z>, so the ABC blocks factor out of the junk — the
tensor-product structure Fig. 4's caption notes.

The original data blocks and classical ancillas end as junk; the A, B,
C blocks carry the result.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import classical_logic, transversal
from repro.ft.gadget import Gadget, RegisterAllocator, maybe_optimize
from repro.ft.ngate import NGateBuilder
from repro.ft.special_states import sparse_logical_state
from repro.simulators.sparse import SparseState


def and_resource_state(code: CssCode) -> SparseState:
    """|AND> over three blocks (the Fig. 2-prepared resource)."""
    half = 0.5 + 0.0j
    return sparse_logical_state(
        code,
        {(0, 0, 0): half, (0, 1, 0): half, (1, 0, 0): half,
         (1, 1, 1): half},
    )


def build_toffoli_gadget(code: CssCode, n_variant: str = "direct",
                         repetitions: Optional[int] = None,
                         optimize=False) -> Gadget:
    """Build the Fig. 4 gadget.

    ``optimize`` behaves as in :func:`repro.ft.ngate.build_n_gadget`.

    Registers:
        ``and_a``/``and_b``/``and_c`` - the |AND> blocks (inputs;
            carry the result: |x>, |y>, |z (+) xy>);
        ``data_x``/``data_y``/``data_z`` - the data blocks (consumed);
        ``m1``/``m2``/``m3`` - classical ancillas written by the N
            gates;
        ``m12`` - classical AND of m1 and m2 (bitwise Toffoli);
        plus three sets of embedded-N syndrome/scratch registers.
    """
    builder = NGateBuilder(code, variant=n_variant,
                           repetitions=repetitions)
    alloc = RegisterAllocator()
    and_a = alloc.block("and_a", code.n, role="data")
    and_b = alloc.block("and_b", code.n, role="data")
    and_c = alloc.block("and_c", code.n, role="data")
    # The x/y/z blocks are consumed: after their N gates they never
    # act on the result blocks again, so (like the psi block of
    # Fig. 3) phase errors on them are "of no consequence" and they
    # carry the quantum-ancilla role.
    data_x = alloc.block("data_x", code.n, role="quantum_ancilla")
    data_y = alloc.block("data_y", code.n, role="quantum_ancilla")
    data_z = alloc.block("data_z", code.n, role="quantum_ancilla")
    m1 = alloc.block("m1", code.n, role="classical_ancilla")
    m2 = alloc.block("m2", code.n, role="classical_ancilla")
    m3 = alloc.block("m3", code.n, role="classical_ancilla")
    m12 = alloc.block("m12", code.n, role="classical_ancilla")
    n_blocks = {
        name: builder.ancilla_blocks(alloc, prefix=f"{name}_")
        for name in ("n1", "n2", "n3")
    }

    circuit = Circuit(alloc.num_qubits,
                      name=f"toffoli_gadget[{code.name},{n_variant}]")
    # 1. Entangle the data with the |AND> resource.
    for position in range(code.n):
        circuit.add_gate(gates.CNOT, and_a.qubits[position],
                         data_x.qubits[position])
    for position in range(code.n):
        circuit.add_gate(gates.CNOT, and_b.qubits[position],
                         data_y.qubits[position])
    for position in range(code.n):
        circuit.add_gate(gates.CNOT, data_z.qubits[position],
                         and_c.qubits[position])
    # 2. X-basis rotation of the z data block.
    for position in range(code.n):
        circuit.add_gate(gates.H, data_z.qubits[position])
    # 3. The three N gates.
    builder.append(circuit, data_x.qubits, m1.qubits, n_blocks["n1"])
    builder.append(circuit, data_y.qubits, m2.qubits, n_blocks["n2"])
    builder.append(circuit, data_z.qubits, m3.qubits, n_blocks["n3"])
    # 4a. Phase corrections (diagonal; use pre-flip block values).
    transversal.add_controlled_logical_z(circuit, code, m3.qubits,
                                         and_c.qubits)
    transversal.add_controlled_logical_cz(circuit, code, m3.qubits,
                                          and_a.qubits, and_b.qubits)
    # 4b. Bit corrections on C (before the A/B flips).
    transversal.add_controlled_logical_cnot(circuit, code, m2.qubits,
                                            and_a.qubits, and_c.qubits)
    transversal.add_controlled_logical_cnot(circuit, code, m1.qubits,
                                            and_b.qubits, and_c.qubits)
    classical_logic.and_blocks_into(circuit, m1.qubits, m2.qubits,
                                    m12.qubits)
    transversal.add_controlled_logical_x(circuit, code, m12.qubits,
                                         and_c.qubits)
    # 4c. Restore A and B.
    transversal.add_controlled_logical_x(circuit, code, m1.qubits,
                                         and_a.qubits)
    transversal.add_controlled_logical_x(circuit, code, m2.qubits,
                                         and_b.qubits)
    gadget = Gadget(
        name=circuit.name,
        circuit=circuit,
        registers=alloc.registers,
        data_blocks=("and_a", "and_b", "and_c"),
        output_blocks=("and_a", "and_b", "and_c"),
        notes=(
            "Measurement-free fault-tolerant Toffoli (paper Fig. 4): "
            "Shor's |AND>-teleportation with the three measurements "
            "replaced by N gates and all corrections driven bitwise "
            "by classical repetition-basis ancillas."
        ),
    )
    return maybe_optimize(gadget, optimize)


def toffoli_inputs(gadget: Gadget, code: CssCode,
                   data_x: SparseState, data_y: SparseState,
                   data_z: SparseState) -> Dict[str, SparseState]:
    """Input block map: data states plus a fresh |AND> resource."""
    for state in (data_x, data_y, data_z):
        if state.num_qubits != code.n:
            raise FaultToleranceError("data state size mismatch")
    resource = and_resource_state(code)
    # Split the 3-block resource into the gadget's registers is not
    # possible (it is entangled); pass it combined via and_a..and_c by
    # tensoring at initial-state build time.  Gadget.initial_state only
    # takes per-register states, so we express |AND> through a single
    # combined register trick: return it under a reserved key handled
    # by toffoli_initial_state instead.
    return {
        "__and__": resource,
        "data_x": data_x, "data_y": data_y, "data_z": data_z,
    }


def toffoli_initial_state(gadget: Gadget, code: CssCode,
                          blocks: Dict[str, SparseState]) -> SparseState:
    """Build the gadget input with the entangled |AND> resource.

    ``blocks`` uses the :func:`toffoli_inputs` convention: the
    reserved ``"__and__"`` key holds the 3-block resource spanning
    and_a, and_b, and_c (which the register allocator laid out first
    and contiguously).
    """
    resource = blocks.get("__and__")
    if resource is None:
        raise FaultToleranceError("missing '__and__' resource state")
    expected_qubits = (gadget.qubits("and_a") + gadget.qubits("and_b")
                       + gadget.qubits("and_c"))
    if expected_qubits != tuple(range(3 * code.n)):
        raise FaultToleranceError(
            "AND blocks are not the leading contiguous registers"
        )
    state = resource.copy()
    ordered = sorted(gadget.registers.values(), key=lambda r: r.qubits[0])
    for register in ordered:
        if register.name in ("and_a", "and_b", "and_c"):
            continue
        piece = blocks.get(register.name)
        if piece is None:
            piece = SparseState(register.size)
        elif piece.num_qubits != register.size:
            raise FaultToleranceError(
                f"state for {register.name} has wrong size"
            )
        state = state.tensor(piece)
    return state


def run_toffoli_gadget(gadget: Gadget, code: CssCode,
                       data_x: SparseState, data_y: SparseState,
                       data_z: SparseState,
                       faults=None) -> SparseState:
    """Convenience runner: build inputs, execute, return the state."""
    from repro.ft.gadget import apply_circuit_with_faults

    blocks = toffoli_inputs(gadget, code, data_x, data_y, data_z)
    state = toffoli_initial_state(gadget, code, blocks)
    apply_circuit_with_faults(state, gadget.circuit, faults or [])
    return state


def expected_toffoli_output(code: CssCode,
                            amplitudes: Dict[tuple, complex]
                            ) -> SparseState:
    """Toffoli_L applied to a logical 3-block state.

    Args:
        amplitudes: {(x, y, z): amplitude} of the *input* data state;
            the function returns the ideal post-Toffoli 3-block state
            (x, y, z XOR x.y).
    """
    mapped = {
        (x, y, z ^ (x & y)): amplitude
        for (x, y, z), amplitude in amplitudes.items()
    }
    return sparse_logical_state(code, mapped)
