"""Measurement-free fault-tolerant sigma_z^{1/4} (paper Sec. 4.4 / Fig. 3).

The sigma_z^{1/4} (T) gate completes the transversal Clifford
operations to a universal set.  The original construction of [4]
consumes the resource state |psi_0> = (|0>_L + e^{i pi/4}|1>_L)/sqrt(2)
via gate teleportation, measuring the ancilla and applying a
classically controlled sigma_z^{1/2} — impossible on an ensemble
machine, and not mechanically delayable: the required quantum
Lambda(sigma_z^{1/2}) is exactly the kind of gate the incomplete set
cannot build (the catch-22 of footnote 3).

The paper's fix (Fig. 3), reproduced here:

1. transversal CNOT from the data block onto the |psi_0> block;
2. the N gate copies the psi-block's logical basis onto a classical
   repetition-basis ancilla;
3. a *bitwise* controlled logical sigma_z^{1/2} from the classical
   ancilla onto the data block replaces the measurement-conditioned
   correction.

Derivation (logical level, exact phases): with data a|0>+b|1>,

  CNOT_d->psi:   a|0>(|0>+e^{i pi/4}|1>) + b|1>(|1>+e^{i pi/4}|0>)
  after N:       |0>|0...0> (x) (a|0> + e^{i pi/4} b|1>)
               + |1>|1...1> (x) (e^{i pi/4} a|0> + b|1>)
  Lambda(S) on the second branch: e^{i pi/4}(a|0> + e^{i pi/4} b|1>),

so the output factorises as
(|0>_L|0...0> + e^{i pi/4}|1>_L|1...1>)/sqrt(2) (x) T_L(a|0> + b|1>) —
the data block carries exactly T_L|x> and the consumed pair is the
entangled junk Fig. 3 shows.

Because the classical ancilla acts only as a *control* of bitwise
two-qubit gates, phase errors on it can never reach the data block,
and its bit errors translate into at most equally many (correctable)
data errors — the whole point of replacing the quantum ancilla with a
classical one.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import transversal
from repro.ft.gadget import Gadget, RegisterAllocator, maybe_optimize
from repro.ft.ngate import NGateBuilder
from repro.ft.special_states import sparse_logical_state
from repro.simulators.sparse import SparseState


def psi0_state(code: CssCode) -> SparseState:
    """|psi_0> = (|0>_L + e^{i pi/4}|1>_L)/sqrt(2)."""
    phase = complex(math.cos(math.pi / 4), math.sin(math.pi / 4))
    return sparse_logical_state(code, {(0,): 1.0, (1,): phase})


def build_t_gadget(code: CssCode, n_variant: str = "direct",
                   repetitions: Optional[int] = None,
                   optimize=False) -> Gadget:
    """Build the Fig. 3 gadget.

    Registers:
        ``data``      - the encoded input block (output: T_L applied);
        ``psi``       - the |psi_0> resource block (input; consumed);
        ``classical`` - the classical ancilla written by N;
        plus the embedded N gate's syndrome/scratch registers.

    ``optimize`` behaves as in :func:`repro.ft.ngate.build_n_gadget`.
    """
    builder = NGateBuilder(code, variant=n_variant,
                           repetitions=repetitions)
    alloc = RegisterAllocator()
    data = alloc.block("data", code.n, role="data")
    psi = alloc.block("psi", code.n, role="quantum_ancilla")
    classical = alloc.block("classical", code.n, role="classical_ancilla")
    n_blocks = builder.ancilla_blocks(alloc, prefix="n_")

    circuit = Circuit(alloc.num_qubits,
                      name=f"t_gadget[{code.name},{n_variant}]")
    # 1. Transversal CNOT: data controls, psi targets.
    for position in range(code.n):
        circuit.add_gate(gates.CNOT, data.qubits[position],
                         psi.qubits[position])
    # 2. N: copy the psi block's logical basis to the classical ancilla.
    builder.append(circuit, psi.qubits, classical.qubits, n_blocks)
    # 3. Classically controlled logical sigma_z^{1/2} onto the data.
    transversal.add_controlled_logical_s(circuit, code, classical.qubits,
                                         data.qubits)
    gadget = Gadget(
        name=circuit.name,
        circuit=circuit,
        registers=alloc.registers,
        data_blocks=("data",),
        output_blocks=("data",),
        notes=(
            "Measurement-free fault-tolerant sigma_z^{1/4} (paper "
            "Fig. 3): gate teleportation off |psi_0> with the "
            "measurement replaced by the N gate and the conditioned "
            "sigma_z^{1/2} replaced by a classical-ancilla-controlled "
            "bitwise operation."
        ),
    )
    return maybe_optimize(gadget, optimize)


def t_gadget_inputs(gadget: Gadget, code: CssCode,
                    data_state: SparseState) -> Dict[str, SparseState]:
    """Input block map: caller's data state plus a fresh |psi_0>."""
    if data_state.num_qubits != code.n:
        raise FaultToleranceError("data state size mismatch")
    return {"data": data_state, "psi": psi0_state(code)}


def expected_t_output(code: CssCode, alpha: complex,
                      beta: complex) -> SparseState:
    """T_L (alpha|0>_L + beta|1>_L)."""
    phase = complex(math.cos(math.pi / 4), math.sin(math.pi / 4))
    return sparse_logical_state(code, {(0,): alpha, (1,): beta * phase})
