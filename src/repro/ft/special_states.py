"""Measurement-free special-state preparation (paper Sec. 4.3 / Fig. 2).

Both non-Clifford gadgets need a "special state" of encoded blocks:

* sigma_z^{1/4}:  |psi_0> = (|0>_L + e^{i pi/4} |1>_L) / sqrt(2);
* Toffoli:        |AND> = (|000> + |010> + |100> + |111>)_L / 2.

Each is the +1 eigenvector of a transversal logical operator U_bar with
U_bar|phi_0> = +|phi_0>, U_bar|phi_1> = -|phi_1>, and a transversal
U_flip exchanging the two.  Fig. 2's procedure projects an easily
prepared input alpha|phi_0> + beta|phi_1> onto |phi_0> without any
measurement:

repeat (once per logical-support position, >= 2k+1 times):
    1. prepare a fresh n-qubit cat state (|0..0> + |1..1>)/sqrt(2);
    2. apply Lambda(U) *bitwise*: cat qubit i controls the i-th local
       factor of U_bar (plus a phase gate on one cat qubit carrying
       U_bar's global phase);
    3. extract the cat block's X-basis parity into a fresh parity bit
       — 0 flags the |phi_0> component, 1 flags |phi_1>.
finally: apply Lambda(U_flip) bitwise, the r-th parity bit controlling
the flip factor on the r-th support position.

Using each parity bit to control exactly one flip position (rather
than voting them into a single bit and fanning it out) keeps every
single fault confined to one error in the special-state block — the
same discipline as the N gate's direct variant.

Two parity-extraction modes are provided:

* ``"hadamard"`` — the paper's literal Fig. 2: bitwise H on the cat
  block, then the parity gate P (CNOTs from every cat qubit into the
  parity bit).
* ``"ancilla"`` — the textbook-equivalent phase-kickback form: a
  |+> ancilla controls X on every cat qubit and a final H turns the
  kicked-back X^(x)n eigenvalue into the parity bit.  Unitarily
  equivalent (tested), same fault-tolerance structure, but it keeps
  the cat block in a two-term superposition, which keeps sparse
  simulation of Steane-scale preparations cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import transversal
from repro.ft.gadget import Gadget, RegisterAllocator
from repro.simulators.sparse import SparseState

PARITY_MODES = ("ancilla", "hadamard")


@dataclass(frozen=True)
class SpecialStateSpec:
    """One instance of the Fig. 2 scheme.

    Attributes:
        name: label ('t_state' or 'and_state').
        num_blocks: encoded blocks the special state spans.
        add_controlled_u: appends the bitwise Lambda(U): called with
            (circuit, code, cat_qubits, block_qubit_lists).
        control_phase: U_bar's global phase (radians), attached as a
            phase gate to cat qubit 0.
        add_controlled_flip_factor: appends the flip factor controlled
            by ONE parity bit at ONE support position: called with
            (circuit, code, control_bit, position, block_qubit_lists).
        input_blocks: builds the cheap input state alpha|phi_0> +
            beta|phi_1> as one SparseState per block.
        expected_state: the target |phi_0> over all blocks.
    """

    name: str
    num_blocks: int
    add_controlled_u: Callable
    control_phase: float
    add_controlled_flip_factor: Callable
    input_blocks: Callable[[CssCode], List[SparseState]]
    expected_state: Callable[[CssCode], SparseState]


# ---------------------------------------------------------------------------
# Helpers to build logical multi-block states sparsely
# ---------------------------------------------------------------------------

def sparse_coset_state(code: CssCode, logical_bit: int) -> SparseState:
    """|0>_L or |1>_L of one block as a SparseState."""
    shift = code.logical_support if logical_bit else np.zeros(
        code.n, dtype=np.uint8
    )
    terms: Dict[int, complex] = {}
    for word in code._enumerate_dual_words():
        bits = (word + shift) % 2
        index = 0
        for bit in bits:
            index = (index << 1) | int(bit)
        terms[index] = 1.0
    return SparseState.from_terms(code.n, terms)


def sparse_logical_state(code: CssCode,
                         amplitudes: Dict[Tuple[int, ...], complex]
                         ) -> SparseState:
    """A multi-block logical state Σ c_bits |bits>_L as a SparseState.

    Args:
        code: the CSS code of every block.
        amplitudes: {(b_1, ..., b_m): amplitude} over logical basis
            states of m blocks.
    """
    if not amplitudes:
        raise FaultToleranceError("need at least one logical component")
    num_blocks = len(next(iter(amplitudes)))
    combined: Dict[int, complex] = {}
    for bits, coefficient in amplitudes.items():
        if len(bits) != num_blocks:
            raise FaultToleranceError("inconsistent logical widths")
        block_states = [sparse_coset_state(code, b) for b in bits]
        product = block_states[0]
        for block_state in block_states[1:]:
            product = product.tensor(block_state)
        for index, amplitude in product.terms().items():
            combined[index] = combined.get(index, 0.0) \
                + coefficient * amplitude
    return SparseState.from_terms(num_blocks * code.n, combined)


# ---------------------------------------------------------------------------
# The sigma_z^{1/4} special state |psi_0>  (paper Sec. 4.4)
# ---------------------------------------------------------------------------

def _t_controlled_u(circuit: Circuit, code: CssCode,
                    cat: Sequence[int],
                    blocks: Sequence[Sequence[int]]) -> None:
    """Bitwise Lambda(U) for U_bar = e^{i pi/4} X_L S_L^dagger.

    This is the paper's Sec. 4.4 operator (sigma_z^{-1/2} times
    sigma_x, with global phase e^{i pi/4}); it satisfies
    U_bar|psi_0> = |psi_0>, U_bar|psi_1> = -|psi_1> for
    |psi_(0,1)> = (|0>_L +- e^{i pi/4}|1>_L)/sqrt(2).  Bitwise,
    S_L^dagger is CS or CS^dagger per the code's coset weights, X_L
    sits on the logical support, and the global phase rides on cat
    qubit 0.
    """
    (state_block,) = blocks
    cs_gate = transversal.controlled_s_dagger_physical_gate(code)
    for position in range(code.n):
        circuit.add_gate(cs_gate, cat[position], state_block[position])
    for position in transversal.support_positions(code):
        circuit.add_gate(gates.CNOT, cat[position], state_block[position])


def _t_controlled_flip(circuit: Circuit, code: CssCode, control_bit: int,
                       position: int,
                       blocks: Sequence[Sequence[int]]) -> None:
    """One flip factor of U_flip = Z_L: CZ at one support position."""
    (state_block,) = blocks
    circuit.add_gate(gates.CZ, control_bit, state_block[position])


def t_state_spec(code: CssCode) -> SpecialStateSpec:
    """Fig. 2 instantiated for |psi_0> (the sigma_z^{1/4} resource)."""
    return SpecialStateSpec(
        name="t_state",
        num_blocks=1,
        add_controlled_u=_t_controlled_u,
        control_phase=math.pi / 4.0,
        add_controlled_flip_factor=_t_controlled_flip,
        input_blocks=lambda c: [sparse_coset_state(c, 0)],
        expected_state=lambda c: sparse_logical_state(
            c, {(0,): 1.0, (1,): complex(math.cos(math.pi / 4),
                                         math.sin(math.pi / 4))}
        ),
    )


# ---------------------------------------------------------------------------
# The Toffoli special state |AND>  (paper Sec. 4.5)
# ---------------------------------------------------------------------------

def _and_controlled_u(circuit: Circuit, code: CssCode,
                      cat: Sequence[int],
                      blocks: Sequence[Sequence[int]]) -> None:
    """Bitwise Lambda(U) for U_bar = Lambda(sigma_z) (x) sigma_z.

    CZ_L between blocks A and B is bitwise CZ, so its cat-controlled
    version is bitwise CCZ; sigma_z on block C is Z on the logical
    support, cat-controlled as CZ.
    """
    block_a, block_b, block_c = blocks
    for position in range(code.n):
        circuit.add_gate(gates.CCZ, cat[position], block_a[position],
                         block_b[position])
    for position in transversal.support_positions(code):
        circuit.add_gate(gates.CZ, cat[position], block_c[position])


def _and_controlled_flip(circuit: Circuit, code: CssCode,
                         control_bit: int, position: int,
                         blocks: Sequence[Sequence[int]]) -> None:
    """One flip factor of U_flip = I (x) I (x) X_L."""
    block_c = blocks[2]
    circuit.add_gate(gates.CNOT, control_bit, block_c[position])


def and_state_spec(code: CssCode) -> SpecialStateSpec:
    """Fig. 2 instantiated for |AND> (the Toffoli resource)."""
    half = 0.5 + 0.0j
    return SpecialStateSpec(
        name="and_state",
        num_blocks=3,
        add_controlled_u=_and_controlled_u,
        control_phase=0.0,
        add_controlled_flip_factor=_and_controlled_flip,
        input_blocks=lambda c: [
            SparseState.from_terms(
                c.n,
                dict(sparse_logical_state(
                    c, {(0,): 1.0, (1,): 1.0}).terms()),
            )
            for _ in range(3)
        ],
        expected_state=lambda c: sparse_logical_state(
            c,
            {(0, 0, 0): half, (0, 1, 0): half,
             (1, 0, 0): half, (1, 1, 1): half},
        ),
    )


# ---------------------------------------------------------------------------
# The Fig. 2 gadget builder
# ---------------------------------------------------------------------------

def build_special_state_gadget(code: CssCode, spec: SpecialStateSpec,
                               parity_mode: str = "ancilla",
                               repetitions: Optional[int] = None) -> Gadget:
    """Build the measurement-free eigenvector-preparation gadget.

    Registers:
        ``state_<j>``  - the encoded blocks of the special state
                         (inputs: the cheap alpha|phi_0>+beta|phi_1>);
        ``cat_<r>``    - fresh cat-state block per repetition;
        ``parity_<r>`` - fresh parity bit per repetition.

    Repetition r's parity bit controls the flip factor on the r-th
    logical-support position.  ``repetitions`` (default: one per
    support position) must equal the support size.
    """
    if parity_mode not in PARITY_MODES:
        raise FaultToleranceError(
            f"parity_mode must be one of {PARITY_MODES}"
        )
    support = transversal.support_positions(code)
    if repetitions is None:
        repetitions = len(support)
    if repetitions != len(support):
        raise FaultToleranceError(
            f"need one repetition per support position "
            f"({len(support)}), got {repetitions}"
        )
    if len(support) < 2 * code.correctable_errors + 1:
        raise FaultToleranceError(
            f"{code.name}: logical support {len(support)} below the "
            f"2k+1 redundancy the scheme needs"
        )
    alloc = RegisterAllocator()
    state_blocks = [
        alloc.block(f"state_{j}", code.n, role="data")
        for j in range(spec.num_blocks)
    ]
    cat_blocks = [
        alloc.block(f"cat_{r}", code.n, role="cat")
        for r in range(repetitions)
    ]
    parity_bits = [
        alloc.block(f"parity_{r}", 1, role="work")
        for r in range(repetitions)
    ]
    circuit = Circuit(alloc.num_qubits,
                      name=f"prep_{spec.name}[{code.name},{parity_mode}]")
    block_qubits = [block.qubits for block in state_blocks]
    for rep in range(repetitions):
        cat = cat_blocks[rep].qubits
        parity = parity_bits[rep].qubits[0]
        # 1. Fresh cat state.
        circuit.add_gate(gates.H, cat[0])
        for position in range(1, code.n):
            circuit.add_gate(gates.CNOT, cat[position - 1], cat[position])
        # 2. Bitwise Lambda(U), with the global phase on cat qubit 0.
        if abs(spec.control_phase) > 1e-12:
            circuit.add_gate(gates.rz(spec.control_phase), cat[0])
        spec.add_controlled_u(circuit, code, cat, block_qubits)
        # 3. X-basis parity of the cat block into the parity bit.
        if parity_mode == "hadamard":
            for position in range(code.n):
                circuit.add_gate(gates.H, cat[position])
            for position in range(code.n):
                circuit.add_gate(gates.CNOT, cat[position], parity)
        else:
            circuit.add_gate(gates.H, parity)
            for position in range(code.n):
                circuit.add_gate(gates.CNOT, parity, cat[position])
            circuit.add_gate(gates.H, parity)
    # 4. Bitwise Lambda(U_flip): parity bit r drives support position r.
    for rep, position in enumerate(support):
        spec.add_controlled_flip_factor(
            circuit, code, parity_bits[rep].qubits[0], position,
            block_qubits,
        )
    return Gadget(
        name=circuit.name,
        circuit=circuit,
        registers=alloc.registers,
        data_blocks=tuple(f"state_{j}" for j in range(spec.num_blocks)),
        output_blocks=tuple(f"state_{j}" for j in range(spec.num_blocks)),
        notes=(
            "Measurement-free eigenvector preparation (paper Fig. 2): "
            "projects alpha|phi_0>+beta|phi_1> onto |phi_0> via "
            "cat-state-controlled transversal U and parity-controlled "
            "transversal U_flip."
        ),
    )


def special_state_input(gadget: Gadget, code: CssCode,
                        spec: SpecialStateSpec) -> Dict[str, SparseState]:
    """The cheap input blocks for the gadget, keyed by register name."""
    blocks = spec.input_blocks(code)
    return {f"state_{j}": block for j, block in enumerate(blocks)}


def combined_state_qubits(gadget: Gadget, spec: SpecialStateSpec
                          ) -> List[int]:
    """All state-block qubits in block order (for overlap checks)."""
    qubits: List[int] = []
    for j in range(spec.num_blocks):
        qubits.extend(gadget.qubits(f"state_{j}"))
    return qubits
