"""Ideal (noiseless) recovery used to *evaluate* gadget outputs.

A gadget output is acceptable when ideal error correction on its data
block would restore the intended logical state.  Naively comparing
against ``E |expected>`` for a fixed Pauli E is too strict: a fault that
crossed a non-Clifford gate (e.g. the controlled-S legs of the T
gadget) leaves a *branch-dependent* Pauli residual, correlated with the
classical ancilla.  Genuine error correction handles that, because the
extracted syndrome is branch-dependent too.

:func:`apply_perfect_recovery` therefore implements a coherent,
unconstrained (non-fault-tolerant — it is an evaluator, not a protocol)
decoder directly on a sparse state:

* X-type errors: fresh ancillas take the per-basis-term classical
  syndrome, and the minimum-weight correction for that syndrome is
  XOR-ed into the block — a basis permutation, hence unitary.
* Z-type errors: conjugate the block by bitwise H (CSS duality maps
  phase errors to bit errors and X-stabilizers to Z-stabilizers) and
  run the same procedure.

After recovery, the block lies in the code space with at most a
*logical* error; :func:`recovered_block_overlap` then measures the
overlap with the expected logical block state, and 1.0 certifies the
gadget output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.circuits import gates
from repro.codes.quantum.css import CssCode
from repro.exceptions import DecodingFailure, FaultToleranceError
from repro.simulators.sparse import SparseState


def _syndrome_correction_table(code: CssCode) -> Dict[int, np.ndarray]:
    """syndrome value (int) -> minimum-weight error bit-vector."""
    checks = code.classical_code.parity_check
    table: Dict[int, np.ndarray] = {}
    for value in range(2**checks.shape[0]):
        syndrome = np.array(
            [(value >> (checks.shape[0] - 1 - r)) & 1
             for r in range(checks.shape[0])],
            dtype=np.uint8,
        )
        try:
            table[value] = code.classical_code.error_for_syndrome(syndrome)
        except DecodingFailure:
            # Outside the correction radius: leave the block untouched;
            # the overlap check will report the failure.
            table[value] = np.zeros(code.n, dtype=np.uint8)
    return table


def _apply_x_recovery(state: SparseState, block: Sequence[int],
                      code: CssCode) -> None:
    """Correct bit errors on the block (basis permutation + ancillas)."""
    checks = code.classical_code.parity_check
    num_checks = int(checks.shape[0])
    if num_checks == 0:
        return
    ancillas = state.allocate(num_checks)
    bits = [state._bit(block[position]) for position in range(code.n)]
    # Per-term syndrome value (big-endian over check rows).
    syndrome = np.zeros(state.num_terms, dtype=np.int64)
    for row in range(num_checks):
        row_parity = np.zeros(state.num_terms, dtype=np.int64)
        for position in np.nonzero(checks[row])[0]:
            row_parity ^= bits[int(position)]
        syndrome = (syndrome << 1) | row_parity
    # Correction mask (plus syndrome record in the fresh ancillas, to
    # keep the map injective — a unitary permutation of basis states)
    # as one Python-int mask per possible syndrome value.
    table = _syndrome_correction_table(code)
    mask_for: List[int] = [0] * (2**num_checks)
    for value, error in table.items():
        mask = 0
        for position in np.nonzero(error)[0]:
            mask |= 1 << (state.num_qubits - 1 - block[int(position)])
        for row in range(num_checks):
            if (value >> (num_checks - 1 - row)) & 1:
                mask |= 1 << (state.num_qubits - 1 - ancillas[row])
        mask_for[value] = mask
    state.xor_row_masks([mask_for[int(s)] for s in syndrome])


def apply_perfect_recovery(state: SparseState, block: Sequence[int],
                           code: CssCode) -> None:
    """Ideal X- and Z-error correction of one block, in place.

    Allocates evaluator ancillas (two syndrome registers); callers that
    need the original register layout should pass a copy.
    """
    if len(block) != code.n:
        raise FaultToleranceError("block size does not match the code")
    _apply_x_recovery(state, block, code)
    for qubit in block:
        state.apply_gate(gates.H, [qubit])
    _apply_x_recovery(state, block, code)
    for qubit in block:
        state.apply_gate(gates.H, [qubit])


def recovered_block_overlap(state: SparseState, block: Sequence[int],
                            code: CssCode,
                            expected: SparseState) -> float:
    """Overlap of a block with its intended state after ideal recovery.

    Returns <psi'| (|phi><phi|_block (x) I) |psi'> where psi' is the
    state after perfect recovery on the block.  Equals 1.0 exactly when
    the gadget's residual error on the block was correctable and the
    corrected block is disentangled from all junk registers.
    """
    scratch = state.copy()
    apply_perfect_recovery(scratch, block, code)
    return scratch.block_overlap(block, expected)
