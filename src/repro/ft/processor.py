"""A measurement-free logical processor.

:class:`LogicalProcessor` is the library's top-level convenience API:
it manages a register of logical qubits encoded in a CSS code and
exposes the paper's universal gate set —

* transversal Cliffords (X, Z, H, S, S^dagger, CNOT, CZ) applied
  bitwise,
* sigma_z^{1/4} via the Fig. 2 |psi_0> preparation feeding the Fig. 3
  gadget,
* Toffoli via the Fig. 2 |AND> preparation feeding the Fig. 4 gadget,
* error recovery via the Sec. 5 gadgets,

all composed into one growing physical register, with every ancilla
block allocated fresh (as the constructions demand) and nothing ever
measured.  The composite program it executes is exactly what an
ensemble machine would run; :meth:`ensemble_readout` exposes the
logical Z expectations that machine could observe.

Simulation-side garbage collection (:meth:`collect_garbage`) projects
exhausted junk registers out of the sparse state to keep term counts
bounded.  It is an *evaluator-side* operation — physically the junk
just sits there — and is only valid between gadgets, where the live
blocks are disentangled from the junk in the no-fault case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits import Circuit, gates
from repro.circuits.pauli import PauliString
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import transversal
from repro.ft.gadget import Gadget
from repro.ft.ngate import NGateBuilder
from repro.ft.recovery import build_recovery_gadget, \
    recovery_ancilla_state
from repro.ft.special_states import (
    and_state_spec,
    build_special_state_gadget,
    special_state_input,
    t_state_spec,
)
from repro.ft.t_gadget import build_t_gadget
from repro.ft.toffoli_gadget import build_toffoli_gadget
from repro.simulators.sparse import SparseState


class LogicalProcessor:
    """A register of logical qubits driven by measurement-free gadgets.

    Args:
        code: the CSS code protecting every logical qubit.
        num_logical: number of logical qubits.
        auto_gc: project junk registers away after each non-Clifford
            gadget (keeps sparse simulation small; see module note).
    """

    def __init__(self, code: CssCode, num_logical: int,
                 auto_gc: bool = True) -> None:
        if num_logical < 1:
            raise FaultToleranceError("need at least one logical qubit")
        self.code = code
        self.num_logical = num_logical
        self.auto_gc = auto_gc
        self._blocks: List[Tuple[int, ...]] = [
            tuple(range(q * code.n, (q + 1) * code.n))
            for q in range(num_logical)
        ]
        self._state = SparseState(num_logical * code.n)
        self._junk: List[int] = []
        self.gate_log: List[str] = []

    # -- state access ------------------------------------------------------

    @property
    def state(self) -> SparseState:
        """The full physical state (live blocks + junk registers)."""
        return self._state

    def block(self, logical: int) -> Tuple[int, ...]:
        """Physical qubits currently hosting a logical qubit."""
        if not 0 <= logical < self.num_logical:
            raise FaultToleranceError(
                f"logical qubit {logical} out of range"
            )
        return self._blocks[logical]

    def block_state(self, logical: int,
                    expected: SparseState) -> float:
        """Overlap of one logical block with an expected block state."""
        return self._state.block_overlap(list(self.block(logical)),
                                         expected)

    # -- transversal Cliffords ------------------------------------------------

    def prepare_zero(self, logical: int) -> None:
        """(Re)encode a fresh |0>_L on a block of |0...0> qubits."""
        self._state.apply_circuit(self.code.encoding_circuit(),
                                  qubits=list(self.block(logical)))
        self.gate_log.append(f"prep|0> q{logical}")

    def apply_x(self, logical: int) -> None:
        self._apply_single(transversal.logical_x_circuit(self.code),
                           logical, "X")

    def apply_z(self, logical: int) -> None:
        self._apply_single(transversal.logical_z_circuit(self.code),
                           logical, "Z")

    def apply_h(self, logical: int) -> None:
        self._apply_single(transversal.logical_h_circuit(self.code),
                           logical, "H")

    def apply_s(self, logical: int) -> None:
        self._apply_single(transversal.logical_s_circuit(self.code),
                           logical, "S")

    def apply_s_dagger(self, logical: int) -> None:
        self._apply_single(
            transversal.logical_s_dagger_circuit(self.code),
            logical, "S_DG",
        )

    def _apply_single(self, circuit: Circuit, logical: int,
                      name: str) -> None:
        self._state.apply_circuit(circuit,
                                  qubits=list(self.block(logical)))
        self.gate_log.append(f"{name} q{logical}")

    def apply_cnot(self, control: int, target: int) -> None:
        circuit = transversal.logical_cnot_circuit(self.code)
        qubits = list(self.block(control)) + list(self.block(target))
        self._state.apply_circuit(circuit, qubits=qubits)
        self.gate_log.append(f"CNOT q{control} q{target}")

    def apply_cz(self, first: int, second: int) -> None:
        circuit = transversal.logical_cz_circuit(self.code)
        qubits = list(self.block(first)) + list(self.block(second))
        self._state.apply_circuit(circuit, qubits=qubits)
        self.gate_log.append(f"CZ q{first} q{second}")

    # -- non-Clifford gadgets ---------------------------------------------------

    def apply_t(self, logical: int) -> None:
        """sigma_z^{1/4} via Fig. 2 preparation + the Fig. 3 gadget."""
        prep_gadget = build_special_state_gadget(
            self.code, t_state_spec(self.code)
        )
        prep_map = self._graft(prep_gadget)
        self._run_prepared_blocks(prep_gadget, prep_map,
                                  t_state_spec(self.code))
        psi_qubits = [prep_map[q]
                      for q in prep_gadget.qubits("state_0")]
        if self.auto_gc:
            # Drop the preparation's cat/parity junk before the main
            # gadget multiplies term counts.
            remap = self.collect_garbage_map()
            psi_qubits = [remap[q] for q in psi_qubits]

        gadget = build_t_gadget(self.code)
        mapping = self._graft(gadget, preassigned={
            "data": list(self.block(logical)),
            "psi": psi_qubits,
        })
        self._state.apply_circuit(
            gadget.circuit,
            qubits=[mapping[q] for q in range(gadget.num_qubits)],
        )
        # The psi and classical blocks are junk now.
        self._retire(mapping, gadget, keep=("data",))
        self.gate_log.append(f"T q{logical}")
        if self.auto_gc:
            self.collect_garbage()

    def apply_toffoli(self, control_a: int, control_b: int,
                      target: int) -> None:
        """Toffoli via Fig. 2 |AND> preparation + the Fig. 4 gadget.

        The result lives on the (fresh) AND blocks, so the three
        logical qubits are re-homed there; the old data blocks retire
        to junk — exactly the Fig. 4 data flow.
        """
        spec = and_state_spec(self.code)
        prep_gadget = build_special_state_gadget(self.code, spec)
        prep_map = self._graft(prep_gadget)
        self._run_prepared_blocks(prep_gadget, prep_map, spec)
        and_blocks = {
            f"and_{label}": [prep_map[q] for q in
                             prep_gadget.qubits(f"state_{slot}")]
            for slot, label in enumerate("abc")
        }
        if self.auto_gc:
            remap = self.collect_garbage_map()
            and_blocks = {
                name: [remap[q] for q in qubits]
                for name, qubits in and_blocks.items()
            }
        gadget = build_toffoli_gadget(self.code)
        mapping = self._graft(gadget, preassigned={
            **and_blocks,
            "data_x": list(self.block(control_a)),
            "data_y": list(self.block(control_b)),
            "data_z": list(self.block(target)),
        })
        self._state.apply_circuit(
            gadget.circuit,
            qubits=[mapping[q] for q in range(gadget.num_qubits)],
        )
        # Re-home the logical qubits onto the AND blocks.
        self._blocks[control_a] = tuple(
            mapping[q] for q in gadget.qubits("and_a")
        )
        self._blocks[control_b] = tuple(
            mapping[q] for q in gadget.qubits("and_b")
        )
        self._blocks[target] = tuple(
            mapping[q] for q in gadget.qubits("and_c")
        )
        self._retire(mapping, gadget,
                     keep=("and_a", "and_b", "and_c"))
        self.gate_log.append(
            f"TOFFOLI q{control_a} q{control_b} q{target}"
        )
        if self.auto_gc:
            self.collect_garbage()

    def recover(self, logical: int) -> None:
        """Sec. 5 measurement-free recovery (X pass then Z pass)."""
        for error_type in ("X", "Z"):
            gadget = build_recovery_gadget(self.code, error_type)
            mapping = self._graft(gadget, preassigned={
                "data": list(self.block(logical)),
            })
            ancilla = [mapping[q] for q in gadget.qubits("ancilla")]
            self._state.apply_circuit(self.code.encoding_circuit(),
                                      qubits=ancilla)
            if error_type == "X":
                self._state.apply_circuit(
                    transversal.logical_h_circuit(self.code),
                    qubits=ancilla,
                )
            self._state.apply_circuit(
                gadget.circuit,
                qubits=[mapping[q] for q in range(gadget.num_qubits)],
            )
            self._retire(mapping, gadget, keep=("data",))
        self.gate_log.append(f"RECOVER q{logical}")
        if self.auto_gc:
            self.collect_garbage()

    # -- readout -------------------------------------------------------------------

    def logical_z_expectation(self, logical: int) -> float:
        """<Z_bar> of one logical qubit — what an ensemble sees."""
        pauli = self.code.logical_z().embedded(
            self._state.num_qubits, list(self.block(logical))
        )
        return float(self._state.expectation_pauli(pauli).real)

    def ensemble_readout(self) -> List[float]:
        """Logical <Z_bar> for every qubit."""
        return [self.logical_z_expectation(q)
                for q in range(self.num_logical)]

    # -- internals --------------------------------------------------------------------

    def _graft(self, gadget: Gadget,
               preassigned: Optional[Dict[str, List[int]]] = None
               ) -> Dict[int, int]:
        """Allocate physical homes for a gadget's registers.

        Registers named in ``preassigned`` map onto existing physical
        qubits; everything else gets fresh |0> qubits.  Returns the
        gadget-qubit -> physical-qubit map.
        """
        preassigned = preassigned or {}
        mapping: Dict[int, int] = {}
        fresh_needed = 0
        for register in gadget.registers.values():
            if register.name not in preassigned:
                fresh_needed += register.size
        fresh = self._state.allocate(fresh_needed) if fresh_needed \
            else []
        cursor = 0
        for register in sorted(gadget.registers.values(),
                               key=lambda r: r.qubits[0]):
            if register.name in preassigned:
                homes = preassigned[register.name]
                if len(homes) != register.size:
                    raise FaultToleranceError(
                        f"preassigned block {register.name} has wrong "
                        "size"
                    )
            else:
                homes = fresh[cursor:cursor + register.size]
                cursor += register.size
            for gadget_qubit, physical in zip(register.qubits, homes):
                mapping[gadget_qubit] = physical
        return mapping

    def _run_prepared_blocks(self, prep_gadget: Gadget,
                             prep_map: Dict[int, int], spec) -> None:
        """Initialise and run a Fig. 2 preparation in-place."""
        # The spec's cheap input blocks are built from fresh zeros by
        # explicit unitaries: |0>_L per block, plus H_L for the
        # AND-state's |+++> input.
        for slot in range(spec.num_blocks):
            block = [prep_map[q]
                     for q in prep_gadget.qubits(f"state_{slot}")]
            self._state.apply_circuit(self.code.encoding_circuit(),
                                      qubits=block)
            if spec.name == "and_state":
                self._state.apply_circuit(
                    transversal.logical_h_circuit(self.code),
                    qubits=block,
                )
        self._state.apply_circuit(
            prep_gadget.circuit,
            qubits=[prep_map[q]
                    for q in range(prep_gadget.num_qubits)],
        )
        # Cat and parity registers are junk from here on.
        for register in prep_gadget.registers.values():
            if not register.name.startswith("state_"):
                self._junk.extend(prep_map[q] for q in register.qubits)

    def _retire(self, mapping: Dict[int, int], gadget: Gadget,
                keep: Sequence[str]) -> None:
        keep_set = set(keep)
        for register in gadget.registers.values():
            if register.name in keep_set:
                continue
            for gadget_qubit in register.qubits:
                physical = mapping[gadget_qubit]
                if not self._is_live(physical):
                    self._junk.append(physical)

    def _is_live(self, physical: int) -> bool:
        return any(physical in block for block in self._blocks)

    def collect_garbage(self) -> int:
        """Project junk registers out of the simulation state.

        Valid between gadgets in no-fault runs, where the live blocks
        are in a tensor product with the junk; the junk qubits are
        projected onto their dominant outcomes and dropped in one
        vectorised repacking pass.  Returns the number of qubits
        reclaimed.
        """
        before = self._state.num_qubits
        self.collect_garbage_map()
        return before - self._state.num_qubits

    def collect_garbage_map(self) -> Dict[int, int]:
        """Like :meth:`collect_garbage`, returning old->new positions
        for every surviving qubit."""
        junk = set(self._junk)
        live: List[int] = [
            qubit for qubit in range(self._state.num_qubits)
            if qubit not in junk
        ]
        if junk:
            self._state.keep_only(live)
        new_position = {old: new for new, old in enumerate(live)}
        self._blocks = [
            tuple(new_position[q] for q in block)
            for block in self._blocks
        ]
        self._junk = []
        return new_position
