"""Measurement-based baselines (the protocols the paper replaces).

These are the *standard* fault-tolerant constructions — Shor FOCS'96 /
Preskill'98 / Boykin et al. FOCS'99 — in which an encoded ancilla is
measured qubit-by-qubit, a classical decoder processes the outcomes,
and the decoded bit conditions a Clifford correction.  They are
correct on a single quantum computer and *impossible* on an ensemble
machine; the library keeps them for three purposes:

1. logical-equivalence tests: the measurement-free gadgets must
   implement exactly the same logical gate;
2. the ensemble-rejection demo: feeding a baseline circuit to
   :class:`~repro.ensemble.machine.EnsembleMachine` raises
   :class:`~repro.exceptions.EnsembleViolationError`;
3. benchmark comparisons (overhead of measurement-freedom).

Because the classical decoding between measurement and correction is a
nontrivial function (Hamming-correct, then parity), the baselines are
implemented as *protocols* — circuit segments interleaved with Python
classical processing — mirroring how a real machine interleaves
quantum operations with a classical co-processor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.codes.quantum.css import CssCode
from repro.exceptions import FaultToleranceError
from repro.ft import transversal
from repro.ft.special_states import sparse_logical_state
from repro.ft.t_gadget import psi0_state
from repro.ft.toffoli_gadget import and_resource_state
from repro.simulators.sparse import SparseState


def measure_block_logical(state: SparseState, block, code: CssCode,
                          rng: np.random.Generator) -> int:
    """Measure every physical qubit of a block and decode classically.

    This is the operation an ensemble machine cannot perform.  The
    measured word is Hamming-corrected and its overlap with the
    logical support gives the logical outcome (paper Sec. 4.1).
    """
    word = [state.measure(qubit, rng) for qubit in block]
    return code.logical_readout(word)


@dataclass
class BaselineResult:
    """Outcome of a baseline protocol run."""

    state: SparseState
    outcomes: Tuple[int, ...]


class MeasuredTGate:
    """Measurement-based fault-tolerant sigma_z^{1/4} ([4]'s original).

    Teleports the gate off |psi_0>: transversal CNOT data -> psi,
    measure the psi block, apply logical sigma_z^{1/2} when the
    outcome is 1.
    """

    requires_measurement = True

    def __init__(self, code: CssCode, seed: Optional[int] = None) -> None:
        self.code = code
        self._rng = np.random.default_rng(seed)

    def run(self, data_state: SparseState) -> BaselineResult:
        code = self.code
        if data_state.num_qubits != code.n:
            raise FaultToleranceError("data state size mismatch")
        state = data_state.tensor(psi0_state(code))
        data = list(range(code.n))
        psi = list(range(code.n, 2 * code.n))
        for position in range(code.n):
            state.apply_gate(gates.CNOT, [data[position], psi[position]])
        outcome = measure_block_logical(state, psi, code, self._rng)
        if outcome:
            state.apply_circuit(transversal.logical_s_circuit(code),
                                qubits=data)
        return BaselineResult(state=state, outcomes=(outcome,))

    def circuit_with_measurements(self) -> Circuit:
        """A Circuit object exposing the forbidden operations.

        Includes the physical measurements (classical decode omitted —
        its mere presence is what the ensemble machine rejects).
        """
        code = self.code
        circuit = Circuit(2 * code.n, num_clbits=code.n,
                          name=f"measured_t[{code.name}]")
        for position in range(code.n):
            circuit.add_gate(gates.CNOT, position, code.n + position)
        for position in range(code.n):
            circuit.measure(code.n + position, position)
        return circuit


class MeasuredToffoli:
    """Shor's measurement-based fault-tolerant Toffoli.

    Identical structure to the Fig. 4 gadget with the three N gates
    replaced by logical measurements and the corrections applied
    classically per outcome.
    """

    requires_measurement = True

    def __init__(self, code: CssCode, seed: Optional[int] = None) -> None:
        self.code = code
        self._rng = np.random.default_rng(seed)

    def run(self, data_x: SparseState, data_y: SparseState,
            data_z: SparseState) -> BaselineResult:
        code = self.code
        n = code.n
        state = and_resource_state(code)
        for piece in (data_x, data_y, data_z):
            if piece.num_qubits != n:
                raise FaultToleranceError("data state size mismatch")
            state = state.tensor(piece)
        blocks = {
            "a": list(range(0, n)),
            "b": list(range(n, 2 * n)),
            "c": list(range(2 * n, 3 * n)),
            "x": list(range(3 * n, 4 * n)),
            "y": list(range(4 * n, 5 * n)),
            "z": list(range(5 * n, 6 * n)),
        }
        for position in range(n):
            state.apply_gate(gates.CNOT, [blocks["a"][position],
                                          blocks["x"][position]])
        for position in range(n):
            state.apply_gate(gates.CNOT, [blocks["b"][position],
                                          blocks["y"][position]])
        for position in range(n):
            state.apply_gate(gates.CNOT, [blocks["z"][position],
                                          blocks["c"][position]])
        for position in range(n):
            state.apply_gate(gates.H, [blocks["z"][position]])
        m1 = measure_block_logical(state, blocks["x"], code, self._rng)
        m2 = measure_block_logical(state, blocks["y"], code, self._rng)
        m3 = measure_block_logical(state, blocks["z"], code, self._rng)
        # Classically conditioned transversal Clifford corrections.
        if m3:
            state.apply_circuit(transversal.logical_z_circuit(code),
                                qubits=blocks["c"])
            cz = transversal.logical_cz_circuit(code)
            state.apply_circuit(cz, qubits=blocks["a"] + blocks["b"])
        if m2:
            cnot = transversal.logical_cnot_circuit(code)
            state.apply_circuit(cnot, qubits=blocks["a"] + blocks["c"])
        if m1:
            cnot = transversal.logical_cnot_circuit(code)
            state.apply_circuit(cnot, qubits=blocks["b"] + blocks["c"])
        if m1 and m2:
            state.apply_circuit(transversal.logical_x_circuit(code),
                                qubits=blocks["c"])
        if m1:
            state.apply_circuit(transversal.logical_x_circuit(code),
                                qubits=blocks["a"])
        if m2:
            state.apply_circuit(transversal.logical_x_circuit(code),
                                qubits=blocks["b"])
        return BaselineResult(state=state, outcomes=(m1, m2, m3))


class MeasuredRecovery:
    """Standard error correction: measure the syndrome ancilla.

    X pass: ancilla |+>_L, transversal CNOT data -> ancilla, measure
    the ancilla word, Hamming-decode its syndrome, flip the indicated
    data qubit.  Z pass: CSS dual.
    """

    requires_measurement = True

    def __init__(self, code: CssCode, seed: Optional[int] = None) -> None:
        self.code = code
        self._rng = np.random.default_rng(seed)

    def run_pass(self, state: SparseState, data, error_type: str
                 ) -> SparseState:
        code = self.code
        if error_type not in ("X", "Z"):
            raise FaultToleranceError("error_type must be 'X' or 'Z'")
        ancilla_state = sparse_logical_state(
            code, {(0,): 1.0, (1,): 1.0} if error_type == "X"
            else {(0,): 1.0}
        )
        offset = state.num_qubits
        state = state.tensor(ancilla_state)
        ancilla = list(range(offset, offset + code.n))
        if error_type == "X":
            for position in range(code.n):
                state.apply_gate(gates.CNOT, [data[position],
                                              ancilla[position]])
        else:
            for position in range(code.n):
                state.apply_gate(gates.CNOT, [ancilla[position],
                                              data[position]])
            for position in range(code.n):
                state.apply_gate(gates.H, [ancilla[position]])
        word = [state.measure(qubit, self._rng) for qubit in ancilla]
        syndrome = self.code.classical_code.syndrome(word)
        error = self.code.classical_code.error_for_syndrome(syndrome)
        correction = gates.X if error_type == "X" else gates.Z
        for position in np.nonzero(error)[0]:
            state.apply_gate(correction, [data[int(position)]])
        return state

    def run(self, data_state: SparseState) -> SparseState:
        """Both passes on a single-block state."""
        state = data_state.copy()
        data = list(range(self.code.n))
        state = self.run_pass(state, data, "X")
        state = self.run_pass(state, data, "Z")
        return state
