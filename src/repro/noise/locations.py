"""Fault-location enumeration.

The paper's error accounting (Sec. 4.2): "For a probability p of an
error (per gate, per input bit, and per delay line), the resulting
error rate of this circuit is O(p^2)".  A *fault location* is therefore
one of:

* ``input`` — one circuit input qubit (the fault sits before any gate);
* ``gate`` — one gate application (the fault is a Pauli on the gate's
  qubits, inserted right after it);
* ``delay`` — one (moment, qubit) pair where an already-active qubit
  idles.

Each location carries ``after_op``, the operation index after which its
fault takes effect, which is what both the state-vector injector and
the Pauli propagator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.pauli import PauliString
from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class FaultLocation:
    """One place where the noise model may strike.

    Attributes:
        kind: 'input', 'gate' or 'delay'.
        qubits: qubits the fault may act on (one for input/delay, the
            gate's qubits for gate locations).
        after_op: operation index the fault is inserted after (-1 means
            before the first operation).
        detail: human-readable position (gate name / moment index).
    """

    kind: str
    qubits: Tuple[int, ...]
    after_op: int
    detail: str = ""

    def fault_paulis(self, num_qubits: int) -> List[PauliString]:
        """All non-identity Pauli faults supported on this location.

        For a w-qubit location these are the 4^w - 1 non-identity
        Paulis on its qubits, embedded into the full register.
        """
        from repro.circuits.pauli import pauli_basis

        faults: List[PauliString] = []
        for local in pauli_basis(len(self.qubits)):
            if local.is_identity:
                continue
            faults.append(local.embedded(num_qubits, list(self.qubits)))
        return faults


def enumerate_locations(circuit: Circuit,
                        include_inputs: bool = True,
                        include_gates: bool = True,
                        include_delays: bool = True,
                        input_qubits: Optional[Sequence[int]] = None
                        ) -> List[FaultLocation]:
    """All fault locations of a (measurement-free) circuit.

    Args:
        circuit: the circuit under analysis.
        include_inputs / include_gates / include_delays: toggles for
            the three location kinds.
        input_qubits: restrict input locations to these qubits (e.g.
            only the data block carries unknown input state; fresh
            ancillas prepared inside the gadget get their faults from
            the preparing gates instead).  Default: every qubit.
    """
    locations: List[FaultLocation] = []
    if include_inputs:
        qubits = range(circuit.num_qubits) if input_qubits is None \
            else input_qubits
        for qubit in qubits:
            locations.append(FaultLocation(
                kind="input", qubits=(qubit,), after_op=-1,
                detail=f"input q{qubit}",
            ))
    if include_gates:
        for index, op in enumerate(circuit.operations):
            if not isinstance(op, GateOp):
                raise AnalysisError(
                    "fault enumeration requires a measurement-free circuit"
                )
            locations.append(FaultLocation(
                kind="gate", qubits=op.qubits, after_op=index,
                detail=f"{op.gate.name}@op{index}",
            ))
    if include_delays:
        locations.extend(_delay_locations(circuit))
    return locations


def _delay_locations(circuit: Circuit) -> List[FaultLocation]:
    """Delay-line locations, each mapped to an ``after_op`` index.

    A fault on qubit q idling during moment m only fails to commute
    with operations touching q, and those are ordered identically in
    program and moment order.  It is therefore inserted after the last
    program operation that touches q in a moment <= m.
    """
    # Recompute the ASAP moment assignment, keeping program indices.
    qubit_frontier = [0] * circuit.num_qubits
    op_moment: List[int] = []
    for op in circuit.operations:
        moment = max(
            (qubit_frontier[q] for q in op.touched_qubits), default=0
        )
        op_moment.append(moment)
        for q in op.touched_qubits:
            qubit_frontier[q] = moment + 1
    locations: List[FaultLocation] = []
    for moment_index, qubit in circuit.idle_locations():
        anchor = -1
        for index, op in enumerate(circuit.operations):
            if qubit in op.touched_qubits and op_moment[index] <= moment_index:
                anchor = index
        locations.append(FaultLocation(
            kind="delay", qubits=(qubit,),
            after_op=anchor,
            detail=f"delay q{qubit}@m{moment_index}",
        ))
    return locations


def count_locations(circuit: Circuit, **kwargs) -> dict:
    """Histogram of location kinds — the paper's counting input."""
    counts = {"input": 0, "gate": 0, "delay": 0}
    for location in enumerate_locations(circuit, **kwargs):
        counts[location.kind] = counts.get(location.kind, 0) + 1
    counts["total"] = sum(counts.values())
    return counts


def burst_locations(circuit: Circuit,
                    weight: int,
                    qubits: Optional[Sequence[int]] = None,
                    after_ops: Sequence[int] = (-1,)
                    ) -> List[FaultLocation]:
    """Multi-qubit burst locations: contiguous windows of ``weight``
    qubits, one location per (window, insertion point).

    These model spatially-clustered error events the iid per-location
    model cannot express: a single physical disturbance (a control
    glitch, an RF spike on an NMR ensemble) striking several adjacent
    qubits at once.  With ``weight=1`` this degenerates to ordinary
    single-qubit locations.

    Args:
        circuit: supplies the register width and operation count.
        weight: qubits per burst window (>= 1).
        qubits: ordered qubit list the windows slide over (default all
            register qubits in index order; pass a register's qubit
            tuple to confine bursts to one block — e.g. the classical
            ancilla for the majority-vote break-point sweep).
        after_ops: insertion points; -1 injects before the first
            operation, ``len(operations) - 1`` after the last.
    """
    if weight < 1:
        raise AnalysisError(f"burst weight must be >= 1, got {weight}")
    ordered = list(range(circuit.num_qubits)) if qubits is None \
        else list(qubits)
    if weight > len(ordered):
        raise AnalysisError(
            f"burst weight {weight} exceeds the {len(ordered)} qubits "
            f"available"
        )
    last = len(circuit.operations) - 1
    locations: List[FaultLocation] = []
    for after_op in after_ops:
        if not -1 <= after_op <= last:
            raise AnalysisError(
                f"after_op {after_op} outside [-1, {last}]"
            )
        for start in range(len(ordered) - weight + 1):
            window = tuple(ordered[start:start + weight])
            locations.append(FaultLocation(
                kind="burst", qubits=window, after_op=after_op,
                detail=f"burst w{weight} q{window[0]}..q{window[-1]}"
                       f"@op{after_op}",
            ))
    return locations


def crosstalk_locations(circuit: Circuit,
                        coupling: Optional[Dict[int, Sequence[int]]]
                        = None) -> List[FaultLocation]:
    """Spectator locations: one per (multi-qubit gate, neighbor qubit).

    When a coupled gate (CNOT and friends) fires, qubits adjacent to
    its operands can pick up errors from residual coupling even though
    the iid model charges them nothing.  Each returned location sits on
    one spectator qubit, anchored right after the gate that disturbs
    it.

    Args:
        circuit: the circuit under analysis.
        coupling: adjacency map ``qubit -> neighbors``; default is the
            linear chain ``q-1, q+1`` (the paper's NMR setting is a
            1-D spin chain).
    """
    def neighbors(qubit: int) -> List[int]:
        if coupling is not None:
            return [q for q in coupling.get(qubit, ())
                    if 0 <= q < circuit.num_qubits]
        return [q for q in (qubit - 1, qubit + 1)
                if 0 <= q < circuit.num_qubits]

    locations: List[FaultLocation] = []
    for index, op in enumerate(circuit.operations):
        if not isinstance(op, GateOp):
            raise AnalysisError(
                "crosstalk enumeration requires a measurement-free "
                "circuit"
            )
        if len(op.qubits) < 2:
            continue
        spectators = sorted({
            q for operand in op.qubits for q in neighbors(operand)
        } - set(op.qubits))
        for spectator in spectators:
            locations.append(FaultLocation(
                kind="crosstalk", qubits=(spectator,), after_op=index,
                detail=f"crosstalk q{spectator}<-"
                       f"{op.gate.name}@op{index}",
            ))
    return locations
