"""Fault-location enumeration.

The paper's error accounting (Sec. 4.2): "For a probability p of an
error (per gate, per input bit, and per delay line), the resulting
error rate of this circuit is O(p^2)".  A *fault location* is therefore
one of:

* ``input`` — one circuit input qubit (the fault sits before any gate);
* ``gate`` — one gate application (the fault is a Pauli on the gate's
  qubits, inserted right after it);
* ``delay`` — one (moment, qubit) pair where an already-active qubit
  idles.

Each location carries ``after_op``, the operation index after which its
fault takes effect, which is what both the state-vector injector and
the Pauli propagator consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.pauli import PauliString
from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class FaultLocation:
    """One place where the noise model may strike.

    Attributes:
        kind: 'input', 'gate' or 'delay'.
        qubits: qubits the fault may act on (one for input/delay, the
            gate's qubits for gate locations).
        after_op: operation index the fault is inserted after (-1 means
            before the first operation).
        detail: human-readable position (gate name / moment index).
    """

    kind: str
    qubits: Tuple[int, ...]
    after_op: int
    detail: str = ""

    def fault_paulis(self, num_qubits: int) -> List[PauliString]:
        """All non-identity Pauli faults supported on this location.

        For a w-qubit location these are the 4^w - 1 non-identity
        Paulis on its qubits, embedded into the full register.
        """
        from repro.circuits.pauli import pauli_basis

        faults: List[PauliString] = []
        for local in pauli_basis(len(self.qubits)):
            if local.is_identity:
                continue
            faults.append(local.embedded(num_qubits, list(self.qubits)))
        return faults


def enumerate_locations(circuit: Circuit,
                        include_inputs: bool = True,
                        include_gates: bool = True,
                        include_delays: bool = True,
                        input_qubits: Optional[Sequence[int]] = None
                        ) -> List[FaultLocation]:
    """All fault locations of a (measurement-free) circuit.

    Args:
        circuit: the circuit under analysis.
        include_inputs / include_gates / include_delays: toggles for
            the three location kinds.
        input_qubits: restrict input locations to these qubits (e.g.
            only the data block carries unknown input state; fresh
            ancillas prepared inside the gadget get their faults from
            the preparing gates instead).  Default: every qubit.
    """
    locations: List[FaultLocation] = []
    if include_inputs:
        qubits = range(circuit.num_qubits) if input_qubits is None \
            else input_qubits
        for qubit in qubits:
            locations.append(FaultLocation(
                kind="input", qubits=(qubit,), after_op=-1,
                detail=f"input q{qubit}",
            ))
    if include_gates:
        for index, op in enumerate(circuit.operations):
            if not isinstance(op, GateOp):
                raise AnalysisError(
                    "fault enumeration requires a measurement-free circuit"
                )
            locations.append(FaultLocation(
                kind="gate", qubits=op.qubits, after_op=index,
                detail=f"{op.gate.name}@op{index}",
            ))
    if include_delays:
        locations.extend(_delay_locations(circuit))
    return locations


def _delay_locations(circuit: Circuit) -> List[FaultLocation]:
    """Delay-line locations, each mapped to an ``after_op`` index.

    A fault on qubit q idling during moment m only fails to commute
    with operations touching q, and those are ordered identically in
    program and moment order.  It is therefore inserted after the last
    program operation that touches q in a moment <= m.
    """
    # Recompute the ASAP moment assignment, keeping program indices.
    qubit_frontier = [0] * circuit.num_qubits
    op_moment: List[int] = []
    for op in circuit.operations:
        moment = max(
            (qubit_frontier[q] for q in op.touched_qubits), default=0
        )
        op_moment.append(moment)
        for q in op.touched_qubits:
            qubit_frontier[q] = moment + 1
    locations: List[FaultLocation] = []
    for moment_index, qubit in circuit.idle_locations():
        anchor = -1
        for index, op in enumerate(circuit.operations):
            if qubit in op.touched_qubits and op_moment[index] <= moment_index:
                anchor = index
        locations.append(FaultLocation(
            kind="delay", qubits=(qubit,),
            after_op=anchor,
            detail=f"delay q{qubit}@m{moment_index}",
        ))
    return locations


def count_locations(circuit: Circuit, **kwargs) -> dict:
    """Histogram of location kinds — the paper's counting input."""
    counts = {"input": 0, "gate": 0, "delay": 0}
    for location in enumerate_locations(circuit, **kwargs):
        counts[location.kind] += 1
    counts["total"] = sum(counts.values())
    return counts
