"""Fault injection into state-vector simulations.

Executes a (measurement-free) circuit while inserting Pauli faults at
chosen points — either an explicit fault list (for exhaustive
single-fault and fault-pair sweeps) or faults sampled from a
:class:`~repro.noise.model.NoiseModel` (for Monte-Carlo logical error
rate estimates: the O(p^2) curves of the benchmark suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError
from repro.noise.locations import FaultLocation, enumerate_locations
from repro.noise.model import NoiseModel, SampledFault
from repro.simulators.statevector import StateVector


def run_with_faults(circuit: Circuit,
                    faults: Sequence[Tuple[PauliString, int]],
                    initial_state: Optional[StateVector] = None
                    ) -> StateVector:
    """Run a unitary circuit with Pauli faults inserted.

    Args:
        circuit: measurement-free circuit.
        faults: (pauli, after_op) pairs; after_op = -1 injects before
            the first operation.  Multiple faults at one point compose.
        initial_state: starting state (default |0...0>).

    Returns:
        The corrupted output state.
    """
    if initial_state is None:
        state = StateVector(circuit.num_qubits)
    else:
        state = initial_state.copy()
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError("initial state size mismatch")
    by_point: Dict[int, List[PauliString]] = {}
    for pauli, after_op in faults:
        by_point.setdefault(after_op, []).append(pauli)
    for pauli in by_point.get(-1, []):
        state.apply_pauli(pauli)
    for index, op in enumerate(circuit.operations):
        if not isinstance(op, GateOp) or op.condition is not None:
            raise SimulationError(
                "run_with_faults requires an unconditional unitary circuit"
            )
        state.apply_gate(op.gate, op.qubits)
        for pauli in by_point.get(index, []):
            state.apply_pauli(pauli)
    return state


@dataclass
class MonteCarloResult:
    """Aggregate of a Monte-Carlo fault-injection campaign.

    Attributes:
        trials: number of runs.
        failures: runs whose output the evaluator rejected.
        fault_counts: histogram {number of faults in run: occurrences}.
        failures_by_fault_count: failures split by how many faults the
            failing run contained — the direct check of the paper's
            claim that single faults never cause failure.
    """

    trials: int
    failures: int
    fault_counts: Dict[int, int]
    failures_by_fault_count: Dict[int, int]

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def failure_rate_stderr(self) -> float:
        if self.trials == 0:
            return 0.0
        rate = self.failure_rate
        return float(np.sqrt(max(rate * (1 - rate), 1e-12) / self.trials))

    @property
    def single_fault_failures(self) -> int:
        return self.failures_by_fault_count.get(1, 0)


def run_with_coherent_noise(circuit: Circuit,
                            model: "CoherentOverRotationModel",
                            initial_state: Optional[StateVector] = None,
                            extra_faults: Sequence[Tuple[PauliString, int]]
                            = ()) -> StateVector:
    """Run a circuit with systematic unitary over-rotations composed in.

    Coherent noise has no stochastic Pauli unravelling, so it cannot go
    through :func:`monte_carlo`; instead the over-rotation unitary for
    each gate kind is applied to every touched qubit right after the
    gate — an exact, deterministic composition (pure states stay pure
    under fixed unitaries; use
    :func:`repro.simulators.channels.over_rotation` for the
    density-matrix form).

    Args:
        circuit: measurement-free circuit.
        model: a :class:`repro.noise.structured.CoherentOverRotationModel`
            (anything with an ``error_gate(gate_name)`` method).
        initial_state: starting state (default |0...0>).
        extra_faults: optional additional (pauli, after_op) Pauli
            faults, composed the same way :func:`run_with_faults`
            composes them — for studying coherent + stochastic mixes.
    """
    if initial_state is None:
        state = StateVector(circuit.num_qubits)
    else:
        state = initial_state.copy()
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError("initial state size mismatch")
    by_point: Dict[int, List[PauliString]] = {}
    for pauli, after_op in extra_faults:
        by_point.setdefault(after_op, []).append(pauli)
    for pauli in by_point.get(-1, []):
        state.apply_pauli(pauli)
    for index, op in enumerate(circuit.operations):
        if not isinstance(op, GateOp) or op.condition is not None:
            raise SimulationError(
                "run_with_coherent_noise requires an unconditional "
                "unitary circuit"
            )
        state.apply_gate(op.gate, op.qubits)
        error = model.error_gate(op.gate.name)
        if error is not None:
            for qubit in op.qubits:
                state.apply_gate(error, (qubit,))
        for pauli in by_point.get(index, []):
            state.apply_pauli(pauli)
    return state


def monte_carlo(circuit: Circuit,
                noise: NoiseModel,
                evaluator: Callable[[StateVector], bool],
                trials: int,
                initial_state: Optional[StateVector] = None,
                locations: Optional[Sequence[FaultLocation]] = None,
                seed: Optional[int] = None) -> MonteCarloResult:
    """Estimate the failure rate under stochastic faults.

    Args:
        circuit: measurement-free circuit.
        noise: the stochastic noise model.
        evaluator: returns True when the corrupted output is
            *acceptable* (e.g. the residual error is correctable).
        trials: Monte-Carlo runs.
        initial_state: shared starting state.
        locations: pre-enumerated fault locations (computed once for
            sweeps over p).
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    if locations is None:
        locations = enumerate_locations(circuit)
    fault_counts: Dict[int, int] = {}
    failures_by_count: Dict[int, int] = {}
    failures = 0
    for _ in range(trials):
        sampled = noise.sample_faults(circuit, rng, locations)
        count = len(sampled)
        fault_counts[count] = fault_counts.get(count, 0) + 1
        if count == 0:
            # No faults: by construction the run is perfect; skip the
            # expensive simulation (dominant case at small p).
            continue
        state = run_with_faults(
            circuit,
            [(fault.pauli, fault.after_op) for fault in sampled],
            initial_state,
        )
        if not evaluator(state):
            failures += 1
            failures_by_count[count] = failures_by_count.get(count, 0) + 1
    return MonteCarloResult(
        trials=trials,
        failures=failures,
        fault_counts=fault_counts,
        failures_by_fault_count=failures_by_count,
    )


def exhaustive_single_faults(circuit: Circuit,
                             evaluator: Callable[[StateVector], bool],
                             initial_state: Optional[StateVector] = None,
                             locations: Optional[Sequence[FaultLocation]]
                             = None,
                             channel: str = "depolarizing"
                             ) -> List[Tuple[FaultLocation, PauliString]]:
    """Try every single-location Pauli fault; return the failures.

    An empty return list is the machine-checked statement of the
    paper's fault-tolerance property: *no single fault anywhere in the
    gadget causes an unacceptable output*.
    """
    if locations is None:
        locations = enumerate_locations(circuit)
    model = NoiseModel.uniform(1.0, channel=channel)
    failures: List[Tuple[FaultLocation, PauliString]] = []
    for location in locations:
        for pauli in model.fault_choices(location, circuit.num_qubits):
            state = run_with_faults(circuit, [(pauli, location.after_op)],
                                    initial_state)
            if not evaluator(state):
                failures.append((location, pauli))
    return failures
