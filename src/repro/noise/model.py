"""Stochastic noise models over fault locations.

A :class:`NoiseModel` assigns an error probability to each location
kind (gate / input / delay line — the paper's three) and a channel
describing what a fault looks like when it strikes (uniform
depolarizing by default, or restricted bit-flip / phase-flip channels
for the ablation studies that separate the two error species the
paper treats so differently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.pauli import PauliString, pauli_basis
from repro.exceptions import SimulationError
from repro.noise.locations import FaultLocation, enumerate_locations

#: Channel names accepted by :class:`NoiseModel`.
CHANNELS = ("depolarizing", "bit_flip", "phase_flip")


@dataclass(frozen=True)
class SampledFault:
    """One fault drawn by the noise model."""

    pauli: PauliString
    after_op: int
    location: FaultLocation


class NoiseModel:
    """Per-location stochastic Pauli noise.

    Args:
        p_gate: probability that a gate application is faulty.
        p_input: probability of an error on each circuit input qubit
            (None copies p_gate).
        p_delay: probability of an error per delay-line location
            (None copies p_gate).
        channel: 'depolarizing' (uniform over non-identity Paulis),
            'bit_flip' (X only) or 'phase_flip' (Z only).
    """

    def __init__(self, p_gate: float,
                 p_input: Optional[float] = None,
                 p_delay: Optional[float] = None,
                 channel: str = "depolarizing") -> None:
        for value in (p_gate, p_input, p_delay):
            if value is not None and not 0.0 <= value <= 1.0:
                raise SimulationError(f"probability {value} outside [0,1]")
        if channel not in CHANNELS:
            raise SimulationError(
                f"unknown channel {channel!r}; pick one of {CHANNELS}"
            )
        self.p_gate = p_gate
        self.p_input = p_gate if p_input is None else p_input
        self.p_delay = p_gate if p_delay is None else p_delay
        self.channel = channel

    @classmethod
    def uniform(cls, p: float, channel: str = "depolarizing") -> "NoiseModel":
        """Same probability at every location — the paper's model."""
        return cls(p_gate=p, p_input=p, p_delay=p, channel=channel)

    def probability_for(self, location: FaultLocation) -> float:
        if location.kind == "gate":
            return self.p_gate
        if location.kind == "input":
            return self.p_input
        return self.p_delay

    def fault_choices(self, location: FaultLocation,
                      num_qubits: int) -> List[PauliString]:
        """The Pauli faults this channel can place at a location."""
        width = len(location.qubits)
        choices: List[PauliString] = []
        for local in pauli_basis(width):
            if local.is_identity:
                continue
            label = local.label()
            if self.channel == "bit_flip" and set(label) - {"I", "X"}:
                continue
            if self.channel == "phase_flip" and set(label) - {"I", "Z"}:
                continue
            choices.append(local.embedded(num_qubits, list(location.qubits)))
        return choices

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        """Draw the fault set for one Monte-Carlo run of the circuit."""
        if locations is None:
            locations = enumerate_locations(circuit)
        faults: List[SampledFault] = []
        for location in locations:
            probability = self.probability_for(location)
            if probability <= 0.0 or rng.random() >= probability:
                continue
            choices = self.fault_choices(location, circuit.num_qubits)
            if not choices:
                continue
            pauli = choices[int(rng.integers(0, len(choices)))]
            faults.append(SampledFault(
                pauli=pauli, after_op=location.after_op, location=location,
            ))
        return faults

    def expected_fault_count(self, circuit: Circuit,
                             locations: Optional[Sequence[FaultLocation]]
                             = None) -> float:
        """Mean number of faults per run (the paper's Np figure)."""
        if locations is None:
            locations = enumerate_locations(circuit)
        return float(sum(self.probability_for(loc) for loc in locations))

    def __repr__(self) -> str:
        return (
            f"NoiseModel(p_gate={self.p_gate}, p_input={self.p_input}, "
            f"p_delay={self.p_delay}, channel={self.channel!r})"
        )
