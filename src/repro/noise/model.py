"""Stochastic noise models over fault locations.

A :class:`NoiseModel` assigns an error probability to each location
kind (gate / input / delay line — the paper's three) and a channel
describing what a fault looks like when it strikes (uniform
depolarizing by default, or restricted bit-flip / phase-flip channels
for the ablation studies that separate the two error species the
paper treats so differently).

Channels live in an open registry (:func:`register_channel`): the
structured-noise models of :mod:`repro.noise.structured` and the
verify fuzz generators add restricted channels without editing this
module.  A channel is a named restriction of the per-qubit Pauli
alphabet; everything else about a model (probabilities, correlations,
weights) belongs to the model, not the channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.pauli import PauliString, pauli_basis
from repro.exceptions import SimulationError
from repro.noise.locations import FaultLocation, enumerate_locations

_PAULI_LETTERS = frozenset("XYZ")


@dataclass(frozen=True)
class ChannelSpec:
    """One registered channel: a named per-qubit Pauli restriction.

    Attributes:
        name: registry key (what ``NoiseModel(channel=...)`` takes).
        letters: allowed non-identity Pauli letters; ``None`` means the
            full X/Y/Z alphabet (depolarizing-style).
    """

    name: str
    letters: Optional[frozenset] = None

    def allows(self, label: str) -> bool:
        """Whether a (possibly multi-qubit) Pauli label fits here."""
        if self.letters is None:
            return True
        return not (set(label) - ({"I"} | self.letters))


_CHANNEL_REGISTRY: Dict[str, ChannelSpec] = {}


def register_channel(name: str,
                     letters: Optional[Sequence[str]] = None,
                     overwrite: bool = False) -> ChannelSpec:
    """Register a channel so any :class:`NoiseModel` can use it.

    Args:
        name: registry key.
        letters: allowed non-identity Pauli letters (subset of XYZ);
            ``None`` allows all three.
        overwrite: allow replacing an existing registration (identical
            re-registration is always allowed — structured models
            register their channels idempotently on construction).
    """
    if letters is not None:
        letter_set = frozenset(letters)
        if not letter_set or letter_set - _PAULI_LETTERS:
            raise SimulationError(
                f"channel {name!r}: letters must be a non-empty subset "
                f"of X/Y/Z, got {sorted(letters)!r}"
            )
    else:
        letter_set = None
    spec = ChannelSpec(name=name, letters=letter_set)
    existing = _CHANNEL_REGISTRY.get(name)
    if existing is not None and existing != spec and not overwrite:
        raise SimulationError(
            f"channel {name!r} is already registered with different "
            f"letters; pass overwrite=True to replace it"
        )
    _CHANNEL_REGISTRY[name] = spec
    return spec


def channel_spec(name: str) -> ChannelSpec:
    """Look up a registered channel, with a helpful failure message."""
    try:
        return _CHANNEL_REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown channel {name!r}; registered channels: "
            f"{channel_names()}"
        ) from None


def channel_names() -> Tuple[str, ...]:
    """All registered channel names, registration order."""
    return tuple(_CHANNEL_REGISTRY)


# The paper's three ablation channels, always present.
register_channel("depolarizing", None)
register_channel("bit_flip", ("X",))
register_channel("phase_flip", ("Z",))

#: Built-in channel names (kept for backwards compatibility; the full
#: set, including registered extensions, is :func:`channel_names`).
CHANNELS = ("depolarizing", "bit_flip", "phase_flip")


@dataclass(frozen=True)
class SampledFault:
    """One fault drawn by the noise model."""

    pauli: PauliString
    after_op: int
    location: FaultLocation


class NoiseModel:
    """Per-location stochastic Pauli noise.

    Args:
        p_gate: probability that a gate application is faulty.
        p_input: probability of an error on each circuit input qubit
            (None copies p_gate).
        p_delay: probability of an error per delay-line location
            (None copies p_gate).
        channel: any registered channel name — 'depolarizing' (uniform
            over non-identity Paulis), 'bit_flip' (X only),
            'phase_flip' (Z only), or an extension added through
            :func:`register_channel`.
    """

    #: Structured subclasses (correlated/biased/drifting models) set
    #: this True; the engine then samples through the model instead of
    #: the vectorised iid path.
    structured = False
    #: False for models with no stochastic Pauli unravelling (coherent
    #: over-rotations); those cannot feed the sampling engine.
    samplable = True

    def __init__(self, p_gate: float,
                 p_input: Optional[float] = None,
                 p_delay: Optional[float] = None,
                 channel: str = "depolarizing") -> None:
        for value in (p_gate, p_input, p_delay):
            if value is not None and not 0.0 <= value <= 1.0:
                raise SimulationError(f"probability {value} outside [0,1]")
        channel_spec(channel)  # validate against the registry
        self.p_gate = p_gate
        self.p_input = p_gate if p_input is None else p_input
        self.p_delay = p_gate if p_delay is None else p_delay
        self.channel = channel

    @classmethod
    def uniform(cls, p: float, channel: str = "depolarizing") -> "NoiseModel":
        """Same probability at every location — the paper's model."""
        return cls(p_gate=p, p_input=p, p_delay=p, channel=channel)

    def probability_for(self, location: FaultLocation) -> float:
        if location.kind == "gate":
            return self.p_gate
        if location.kind == "input":
            return self.p_input
        return self.p_delay

    def fault_choices(self, location: FaultLocation,
                      num_qubits: int) -> List[PauliString]:
        """The Pauli faults this channel can place at a location."""
        width = len(location.qubits)
        spec = channel_spec(self.channel)
        choices: List[PauliString] = []
        for local in pauli_basis(width):
            if local.is_identity:
                continue
            if not spec.allows(local.label()):
                continue
            choices.append(local.embedded(num_qubits, list(location.qubits)))
        return choices

    def fault_weights(self, location: FaultLocation,
                      choices: Sequence[PauliString]
                      ) -> Optional[np.ndarray]:
        """Relative strike weights over ``choices`` (None = uniform).

        The base model is uniform and returns ``None``, which keeps
        the historical RNG stream (a single ``rng.integers`` draw)
        byte-identical; biased subclasses return a probability vector
        and the sampler switches to a weighted draw.
        """
        return None

    def fingerprint(self) -> Tuple:
        """Stable, hashable description of the model.

        Used for checkpoint-run identity and (for structured models)
        to derive the :meth:`stream_key` that separates their RNG
        streams from the baseline ones.
        """
        return ("iid", float(self.p_gate), float(self.p_input),
                float(self.p_delay), self.channel)

    def stream_key(self) -> Tuple[int, ...]:
        """SeedSequence spawn key for the engine's chunked streams.

        Baseline models return the empty tuple — the engine then seeds
        ``SeedSequence(seed)`` exactly as it always has, keeping
        historical seeded results byte-identical.  Structured models
        derive a non-empty key from their fingerprint so two different
        models never share a fault stream for the same seed.
        """
        return ()

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        """Draw the fault set for one Monte-Carlo run of the circuit."""
        if locations is None:
            locations = enumerate_locations(circuit)
        faults: List[SampledFault] = []
        for location in locations:
            probability = self.probability_for(location)
            if probability <= 0.0 or rng.random() >= probability:
                continue
            choices = self.fault_choices(location, circuit.num_qubits)
            if not choices:
                continue
            weights = self.fault_weights(location, choices)
            if weights is None:
                pauli = choices[int(rng.integers(0, len(choices)))]
            else:
                pauli = choices[int(rng.choice(len(choices), p=weights))]
            faults.append(SampledFault(
                pauli=pauli, after_op=location.after_op, location=location,
            ))
        return faults

    def expected_fault_count(self, circuit: Circuit,
                             locations: Optional[Sequence[FaultLocation]]
                             = None) -> float:
        """Mean number of faults per run (the paper's Np figure)."""
        if locations is None:
            locations = enumerate_locations(circuit)
        return float(sum(self.probability_for(loc) for loc in locations))

    def __repr__(self) -> str:
        return (
            f"NoiseModel(p_gate={self.p_gate}, p_input={self.p_input}, "
            f"p_delay={self.p_delay}, channel={self.channel!r})"
        )
