"""Structured noise: correlated, biased, coherent and drifting models.

The paper's guarantees are proved against independent Pauli faults,
but its central constructions make *structural* claims — the classical
ancilla only admits bit errors so phase noise flows through harmlessly
(Eq. 1 / Fig. 1), and the 2k+1 repetition plus majority vote survives
any <= k bit errors — that are only meaningful if they hold (or fail
predictably) under noise the iid model cannot express.  This module
supplies that adversarial/realistic family, behind the existing
:class:`~repro.noise.model.NoiseModel` interface so every sampler,
engine entry point and checkpointed sweep takes them unchanged:

* :class:`CorrelatedBurstModel` — spatially/temporally clustered
  multi-qubit Pauli bursts with tunable weight and decay (control
  glitches, RF spikes on an NMR ensemble);
* :class:`BiasedPauliModel` — arbitrary X:Y:Z bias, including the
  fully phase-dominated regime the classical ancilla is supposed to
  shrug off;
* :class:`CoherentOverRotationModel` — systematic unitary
  over-rotation per gate kind.  Not Pauli-expressible: composed
  exactly on the state-vector/sparse/density-matrix backends (see
  :func:`repro.noise.injection.run_with_coherent_noise`), or
  stochastically approximated via :meth:`~CoherentOverRotationModel.
  twirled`;
* :class:`DriftingRateModel` — time-dependent p(t) schedules (linear
  drift, sinusoidal, step), typical of slowly decalibrating hardware;
* :class:`CrosstalkModel` — spectator errors on the neighbors of
  coupled-gate operands.

Every structured model carries a :meth:`~repro.noise.model.NoiseModel.
fingerprint` and derives a non-empty :meth:`~repro.noise.model.
NoiseModel.stream_key` from it, so the engine's chunked SeedSequence
streams differ per model while the baseline depolarizing / bit-flip /
phase-flip streams stay byte-identical to their historical values.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit, GateOp
from repro.circuits.pauli import PauliString
from repro.exceptions import SimulationError
from repro.noise.locations import FaultLocation, enumerate_locations
from repro.noise.model import (
    NoiseModel,
    SampledFault,
    channel_spec,
    register_channel,
)

_LETTER_ORDER = "XYZ"


def _stream_key_from(fingerprint: Tuple) -> Tuple[int, ...]:
    """Stable 128-bit spawn key derived from a model fingerprint."""
    digest = hashlib.sha256(repr(fingerprint).encode()).digest()
    return tuple(int.from_bytes(digest[i:i + 4], "little")
                 for i in range(0, 16, 4))


class StructuredNoiseModel(NoiseModel):
    """Base class for the structured family.

    Subclasses must implement :meth:`fingerprint`; the engine keys its
    per-model RNG streams and checkpoint fingerprints off it.
    """

    structured = True

    def fingerprint(self) -> Tuple:  # pragma: no cover - abstract
        raise NotImplementedError

    def stream_key(self) -> Tuple[int, ...]:
        return _stream_key_from(self.fingerprint())

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.fingerprint()[1:]!r}"


# ---------------------------------------------------------------------------
# Biased Pauli noise
# ---------------------------------------------------------------------------

class BiasedPauliModel(StructuredNoiseModel):
    """Per-location Pauli noise with an arbitrary X:Y:Z bias.

    Args:
        p_gate / p_input / p_delay: strike probabilities, as in the
            base model.
        bias: relative (X, Y, Z) weights; need not be normalised.
            Zero entries remove the species entirely — ``(0, 0, 1)``
            is the fully phase-dominated regime of the paper's
            classical-ancilla immunity claim.

    Multi-qubit (gate) locations draw each choice with probability
    proportional to the product of its per-qubit species weights, so
    the marginal per-qubit statistics follow the bias exactly.
    """

    def __init__(self, p_gate: float,
                 bias: Sequence[float] = (1.0, 1.0, 1.0),
                 p_input: Optional[float] = None,
                 p_delay: Optional[float] = None) -> None:
        bias = tuple(float(b) for b in bias)
        if len(bias) != 3 or any(b < 0 for b in bias) or sum(bias) <= 0:
            raise SimulationError(
                f"bias must be three non-negative weights with a "
                f"positive sum, got {bias!r}"
            )
        total = sum(bias)
        self.bias = tuple(b / total for b in bias)
        letters = tuple(letter for letter, share
                        in zip(_LETTER_ORDER, self.bias) if share > 0)
        channel = f"pauli[{''.join(letters)}]"
        register_channel(channel, letters)
        super().__init__(p_gate, p_input=p_input, p_delay=p_delay,
                         channel=channel)
        self._share = {letter: share for letter, share
                       in zip(_LETTER_ORDER, self.bias) if share > 0}

    @classmethod
    def phase_biased(cls, p: float, **kwargs) -> "BiasedPauliModel":
        """Z-only noise: the regime the classical ancilla must shrug
        off (paper Sec. 4.1 — it only ever serves as a control)."""
        return cls(p, bias=(0.0, 0.0, 1.0), **kwargs)

    @classmethod
    def bit_biased(cls, p: float, **kwargs) -> "BiasedPauliModel":
        """X-only noise: everything the repetition code must fight."""
        return cls(p, bias=(1.0, 0.0, 0.0), **kwargs)

    @classmethod
    def with_eta(cls, p: float, eta: float, **kwargs
                 ) -> "BiasedPauliModel":
        """Standard biased-noise parametrisation: eta = p_Z / (p_X +
        p_Y), with the X and Y shares equal.  eta = 0.5 recovers the
        unbiased depolarizing ratios; large eta approaches the
        phase-dominated regime."""
        if eta < 0:
            raise SimulationError(f"eta must be >= 0, got {eta}")
        return cls(p, bias=(1.0, 1.0, 2.0 * eta), **kwargs)

    def fault_weights(self, location: FaultLocation,
                      choices: Sequence[PauliString]
                      ) -> Optional[np.ndarray]:
        weights = np.empty(len(choices), dtype=float)
        for index, choice in enumerate(choices):
            weight = 1.0
            for qubit in location.qubits:
                kind = choice.kind_at(qubit)
                if kind != "I":
                    weight *= self._share[kind]
            weights[index] = weight
        total = weights.sum()
        if total <= 0:  # pragma: no cover - bias>0 guarantees mass
            return None
        return weights / total

    def fingerprint(self) -> Tuple:
        return ("biased", float(self.p_gate), float(self.p_input),
                float(self.p_delay), self.bias)


# ---------------------------------------------------------------------------
# Correlated bursts
# ---------------------------------------------------------------------------

class CorrelatedBurstModel(StructuredNoiseModel):
    """Spatially (and optionally temporally) clustered Pauli bursts.

    Each location can *trigger* a burst with its usual strike
    probability; a triggered burst hits a contiguous cluster of
    qubits anchored at the location instead of the location alone:

    * the cluster weight w is drawn from a truncated geometric law,
      P(w) proportional to ``decay**(w - 1)`` for ``min_weight <= w <=
      weight`` (``decay=1`` makes all weights equally likely;
      ``min_weight == weight`` forces a fixed weight — the
      certification harness uses this to find the exact break point of
      the 2k+1 majority vote);
    * the cluster occupies qubits ``anchor .. anchor + w - 1`` (the
      location's first qubit plus its upward neighbors, clipped at the
      register edge — the 1-D chain picture of the paper's NMR
      setting);
    * each cluster qubit receives an independent letter from the
      channel alphabet;
    * with ``temporal_extent > 0`` the cluster is smeared over time:
      cluster qubit i lands after operation ``after_op + (i mod
      (temporal_extent + 1))`` instead of all at once.
    """

    def __init__(self, p_burst: float,
                 weight: int = 2,
                 decay: float = 0.5,
                 min_weight: int = 1,
                 temporal_extent: int = 0,
                 channel: str = "bit_flip",
                 p_input: Optional[float] = None,
                 p_delay: Optional[float] = None) -> None:
        if weight < 1 or min_weight < 1 or min_weight > weight:
            raise SimulationError(
                f"need 1 <= min_weight <= weight, got "
                f"min_weight={min_weight}, weight={weight}"
            )
        if not 0.0 < decay <= 1.0:
            raise SimulationError(
                f"decay must be in (0, 1], got {decay}"
            )
        if temporal_extent < 0:
            raise SimulationError(
                f"temporal_extent must be >= 0, got {temporal_extent}"
            )
        super().__init__(p_burst, p_input=p_input, p_delay=p_delay,
                         channel=channel)
        self.weight = int(weight)
        self.min_weight = int(min_weight)
        self.decay = float(decay)
        self.temporal_extent = int(temporal_extent)
        spec = channel_spec(channel)
        self._letters = tuple(sorted(spec.letters)) \
            if spec.letters is not None else tuple(_LETTER_ORDER)
        widths = np.arange(self.min_weight, self.weight + 1)
        mass = self.decay ** (widths - self.min_weight)
        self._weight_values = widths
        self._weight_probs = mass / mass.sum()

    @classmethod
    def fixed(cls, p_burst: float, weight: int,
              **kwargs) -> "CorrelatedBurstModel":
        """Every burst has exactly ``weight`` qubits (edge clipping
        aside) — the adversarial probe for radius claims."""
        kwargs.setdefault("min_weight", weight)
        return cls(p_burst, weight=weight, **kwargs)

    def _draw_weight(self, rng: np.random.Generator) -> int:
        if self.min_weight == self.weight:
            return self.weight
        return int(rng.choice(self._weight_values,
                              p=self._weight_probs))

    def _draw_letter(self, rng: np.random.Generator) -> str:
        if len(self._letters) == 1:
            return self._letters[0]
        return self._letters[int(rng.integers(0, len(self._letters)))]

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        if locations is None:
            locations = enumerate_locations(circuit)
        last_op = len(circuit.operations) - 1
        faults: List[SampledFault] = []
        for location in locations:
            probability = self.probability_for(location)
            if probability <= 0.0 or rng.random() >= probability:
                continue
            width = self._draw_weight(rng)
            anchor = location.qubits[0]
            cluster = [anchor + offset for offset in range(width)
                       if anchor + offset < circuit.num_qubits]
            letters = [self._draw_letter(rng) for _ in cluster]
            window = self.temporal_extent + 1
            by_op: Dict[int, List[Tuple[int, str]]] = {}
            for index, (qubit, letter) in enumerate(zip(cluster,
                                                        letters)):
                after_op = location.after_op
                if self.temporal_extent and after_op >= 0:
                    after_op = min(after_op + index % window, last_op)
                by_op.setdefault(after_op, []).append((qubit, letter))
            for after_op in sorted(by_op):
                label = ["I"] * circuit.num_qubits
                for qubit, letter in by_op[after_op]:
                    label[qubit] = letter
                faults.append(SampledFault(
                    pauli=PauliString.from_label("".join(label)),
                    after_op=after_op,
                    location=location,
                ))
        return faults

    def fingerprint(self) -> Tuple:
        return ("burst", float(self.p_gate), float(self.p_input),
                float(self.p_delay), self.weight, self.min_weight,
                self.decay, self.temporal_extent, self.channel)


# ---------------------------------------------------------------------------
# Coherent over-rotation
# ---------------------------------------------------------------------------

#: Rotation-gate factories per axis letter.
_ROTATIONS = {"X": gates.rx, "Y": gates.ry, "Z": gates.rz}


class CoherentOverRotationModel(StructuredNoiseModel):
    """Systematic unitary over-rotation per gate kind.

    A miscalibrated pulse does not flip a coin: after every
    application of an affected gate kind, each touched qubit is
    over-rotated by a *fixed* angle about a fixed axis.  The error is
    unitary, so it is not expressible as a stochastic Pauli model and
    cannot feed the sampling engine (``samplable`` is False and
    :meth:`sample_faults` raises).  Use instead:

    * :func:`repro.noise.injection.run_with_coherent_noise` — exact
      composition on the state-vector / sparse backends (pure states
      stay pure under a fixed unitary), or a
      :class:`~repro.simulators.density_matrix.DensityMatrix` via
      :func:`repro.simulators.channels.over_rotation`;
    * :meth:`twirled` — the Pauli twirl of each over-rotation
      (probability ``sin^2(theta/2)`` of the axis Pauli per touched
      qubit), which IS samplable and bounds the incoherent part.

    Args:
        rotations: gate name -> (axis, angle) systematic error.
        default: (axis, angle) applied to gate kinds not listed
            (None = unlisted kinds are clean).
    """

    samplable = False

    def __init__(self,
                 rotations: Optional[Dict[str, Tuple[str, float]]] = None,
                 default: Optional[Tuple[str, float]] = None) -> None:
        super().__init__(0.0)
        self.rotations: Dict[str, Tuple[str, float]] = {}
        for name, (axis, angle) in (rotations or {}).items():
            self.rotations[name] = (self._check_axis(axis), float(angle))
        if default is not None:
            default = (self._check_axis(default[0]), float(default[1]))
        self.default = default

    @staticmethod
    def _check_axis(axis: str) -> str:
        if axis not in _ROTATIONS:
            raise SimulationError(
                f"over-rotation axis must be X, Y or Z, got {axis!r}"
            )
        return axis

    @classmethod
    def uniform(cls, angle: float, axis: str = "Z"
                ) -> "CoherentOverRotationModel":
        """The same over-rotation after every gate of every kind."""
        return cls(default=(axis, angle))

    def rotation_for(self, gate_name: str
                     ) -> Optional[Tuple[str, float]]:
        rotation = self.rotations.get(gate_name, self.default)
        if rotation is None or abs(rotation[1]) <= 0.0:
            return None
        return rotation

    def error_gate(self, gate_name: str) -> Optional[gates.Gate]:
        """The single-qubit over-rotation unitary for a gate kind."""
        rotation = self.rotation_for(gate_name)
        if rotation is None:
            return None
        axis, angle = rotation
        return _ROTATIONS[axis](angle)

    def effective_pauli_probability(self, gate_name: str) -> float:
        """The Pauli-twirl strike probability sin^2(theta/2)."""
        rotation = self.rotation_for(gate_name)
        if rotation is None:
            return 0.0
        return math.sin(rotation[1] / 2.0) ** 2

    def twirled(self) -> "TwirledOverRotationModel":
        """Stochastic (Pauli-twirl) approximation, engine-samplable."""
        return TwirledOverRotationModel(self)

    def sample_faults(self, circuit, rng, locations=None):
        raise SimulationError(
            "coherent over-rotation is a unitary error with no "
            "stochastic Pauli unravelling; compose it exactly with "
            "repro.noise.injection.run_with_coherent_noise or sample "
            "its Pauli twirl via .twirled()"
        )

    def expected_fault_count(self, circuit, locations=None) -> float:
        return 0.0

    def fingerprint(self) -> Tuple:
        return ("coherent", tuple(sorted(self.rotations.items())),
                self.default)


class TwirledOverRotationModel(StructuredNoiseModel):
    """Pauli twirl of a :class:`CoherentOverRotationModel`.

    Each touched qubit of each affected gate independently receives
    the rotation-axis Pauli with probability ``sin^2(theta/2)`` — the
    standard twirl that keeps the channel's incoherent weight while
    discarding the coherent (worst-case-amplifying) part.  Comparing
    this model's failure rates against the exact coherent composition
    measures exactly how much the coherence costs.
    """

    def __init__(self, coherent: CoherentOverRotationModel) -> None:
        super().__init__(0.0)
        self.coherent = coherent

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        if locations is None:
            locations = enumerate_locations(circuit)
        faults: List[SampledFault] = []
        for location in locations:
            if location.kind != "gate":
                continue
            op = circuit.operations[location.after_op]
            rotation = self.coherent.rotation_for(op.gate.name)
            if rotation is None:
                continue
            axis, angle = rotation
            probability = math.sin(angle / 2.0) ** 2
            if probability <= 0.0:
                continue
            for qubit in location.qubits:
                if rng.random() >= probability:
                    continue
                faults.append(SampledFault(
                    pauli=PauliString.single(circuit.num_qubits, qubit,
                                             axis),
                    after_op=location.after_op,
                    location=location,
                ))
        return faults

    def expected_fault_count(self, circuit: Circuit,
                             locations: Optional[Sequence[FaultLocation]]
                             = None) -> float:
        if locations is None:
            locations = enumerate_locations(circuit)
        total = 0.0
        for location in locations:
            if location.kind != "gate":
                continue
            op = circuit.operations[location.after_op]
            probability = self.coherent.effective_pauli_probability(
                op.gate.name)
            total += probability * len(location.qubits)
        return total

    def fingerprint(self) -> Tuple:
        return ("twirled",) + self.coherent.fingerprint()[1:]


# ---------------------------------------------------------------------------
# Drifting error rates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RateSchedule:
    """A declarative p(t) schedule over normalised circuit time.

    t runs from 0 (circuit input) to 1 (after the last operation).
    Declarative (kind + params) rather than a callable so schedules
    fingerprint stably into checkpoint identities and seed streams.
    """

    kind: str
    params: Tuple[float, ...]

    @classmethod
    def linear(cls, p_start: float, p_end: float) -> "RateSchedule":
        """Linear decalibration drift from p_start to p_end."""
        return cls("linear", (float(p_start), float(p_end)))

    @classmethod
    def sinusoidal(cls, mean: float, amplitude: float,
                   cycles: float = 1.0) -> "RateSchedule":
        """Periodic modulation: mean + amplitude*sin(2 pi cycles t)."""
        return cls("sinusoidal",
                   (float(mean), float(amplitude), float(cycles)))

    @classmethod
    def step(cls, p_before: float, p_after: float,
             at: float = 0.5) -> "RateSchedule":
        """Abrupt rate change at normalised time ``at`` (an
        environment event mid-run)."""
        return cls("step", (float(p_before), float(p_after), float(at)))

    def rate(self, t: float) -> float:
        if self.kind == "linear":
            p_start, p_end = self.params
            value = p_start + (p_end - p_start) * t
        elif self.kind == "sinusoidal":
            mean, amplitude, cycles = self.params
            value = mean + amplitude * math.sin(
                2.0 * math.pi * cycles * t)
        elif self.kind == "step":
            p_before, p_after, at = self.params
            value = p_before if t < at else p_after
        else:
            raise SimulationError(
                f"unknown schedule kind {self.kind!r}"
            )
        return min(1.0, max(0.0, value))

    def mean_rate(self, samples: int = 101) -> float:
        grid = np.linspace(0.0, 1.0, samples)
        return float(np.mean([self.rate(t) for t in grid]))


class DriftingRateModel(StructuredNoiseModel):
    """Time-dependent strike probability p(t) over the circuit.

    Location time is its ``after_op`` normalised by the operation
    count: input locations sit at t = 0, the last gate at t = 1.
    :meth:`probability_for` (which cannot see time) reports the
    schedule's mean rate; the sampler itself uses the exact p(t).
    """

    def __init__(self, schedule: RateSchedule,
                 channel: str = "depolarizing") -> None:
        self.schedule = schedule
        super().__init__(schedule.mean_rate(), channel=channel)

    def probability_at(self, location: FaultLocation,
                       num_operations: int) -> float:
        if num_operations <= 0 or location.after_op < 0:
            t = 0.0
        else:
            t = (location.after_op + 1) / num_operations
        return self.schedule.rate(t)

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        if locations is None:
            locations = enumerate_locations(circuit)
        num_operations = len(circuit.operations)
        faults: List[SampledFault] = []
        for location in locations:
            probability = self.probability_at(location, num_operations)
            if probability <= 0.0 or rng.random() >= probability:
                continue
            choices = self.fault_choices(location, circuit.num_qubits)
            if not choices:
                continue
            pauli = choices[int(rng.integers(0, len(choices)))]
            faults.append(SampledFault(
                pauli=pauli, after_op=location.after_op,
                location=location,
            ))
        return faults

    def expected_fault_count(self, circuit: Circuit,
                             locations: Optional[Sequence[FaultLocation]]
                             = None) -> float:
        if locations is None:
            locations = enumerate_locations(circuit)
        num_operations = len(circuit.operations)
        return float(sum(self.probability_at(loc, num_operations)
                         for loc in locations))

    def fingerprint(self) -> Tuple:
        return ("drift", self.schedule.kind, self.schedule.params,
                self.channel)


# ---------------------------------------------------------------------------
# Crosstalk
# ---------------------------------------------------------------------------

class CrosstalkModel(StructuredNoiseModel):
    """Independent noise plus spectator errors on coupled-gate
    neighbors.

    On top of the usual iid per-location faults at ``p``, every
    multi-qubit gate throws an error onto one of its operands'
    neighbors with probability ``p_spectator`` — residual coupling
    leaking onto qubits the iid model charges nothing.

    Args:
        p: iid strike probability (as :class:`NoiseModel`).
        p_spectator: probability a coupled gate disturbs one neighbor.
        coupling: adjacency map qubit -> neighbors (default: linear
            chain q-1, q+1 — the paper's NMR spin-chain picture).
        channel: alphabet for the iid faults.
        spectator_channel: alphabet for spectator errors (default
            bit_flip: ZZ-coupling crosstalk flips spectators in the
            rotating frame).
    """

    def __init__(self, p: float,
                 p_spectator: float,
                 coupling: Optional[Dict[int, Sequence[int]]] = None,
                 channel: str = "depolarizing",
                 spectator_channel: str = "bit_flip",
                 p_input: Optional[float] = None,
                 p_delay: Optional[float] = None) -> None:
        if not 0.0 <= p_spectator <= 1.0:
            raise SimulationError(
                f"probability {p_spectator} outside [0,1]"
            )
        super().__init__(p, p_input=p_input, p_delay=p_delay,
                         channel=channel)
        self.p_spectator = float(p_spectator)
        self.spectator_channel = spectator_channel
        spec = channel_spec(spectator_channel)
        self._spectator_letters = tuple(sorted(spec.letters)) \
            if spec.letters is not None else tuple(_LETTER_ORDER)
        self.coupling = None if coupling is None else {
            int(q): tuple(sorted(int(n) for n in neighbors))
            for q, neighbors in coupling.items()
        }

    def _neighbors(self, qubit: int, num_qubits: int) -> List[int]:
        if self.coupling is not None:
            return [q for q in self.coupling.get(qubit, ())
                    if 0 <= q < num_qubits]
        return [q for q in (qubit - 1, qubit + 1)
                if 0 <= q < num_qubits]

    def _spectators(self, location: FaultLocation,
                    num_qubits: int) -> List[int]:
        return sorted({
            q for operand in location.qubits
            for q in self._neighbors(operand, num_qubits)
        } - set(location.qubits))

    def sample_faults(self, circuit: Circuit,
                      rng: np.random.Generator,
                      locations: Optional[Sequence[FaultLocation]] = None
                      ) -> List[SampledFault]:
        if locations is None:
            locations = enumerate_locations(circuit)
        faults = super().sample_faults(circuit, rng, locations)
        if self.p_spectator <= 0.0:
            return faults
        for location in locations:
            if location.kind != "gate" or len(location.qubits) < 2:
                continue
            if rng.random() >= self.p_spectator:
                continue
            spectators = self._spectators(location, circuit.num_qubits)
            if not spectators:
                continue
            spectator = spectators[int(rng.integers(0, len(spectators)))]
            if len(self._spectator_letters) == 1:
                letter = self._spectator_letters[0]
            else:
                letter = self._spectator_letters[
                    int(rng.integers(0, len(self._spectator_letters)))]
            faults.append(SampledFault(
                pauli=PauliString.single(circuit.num_qubits, spectator,
                                        letter),
                after_op=location.after_op,
                location=FaultLocation(
                    kind="crosstalk", qubits=(spectator,),
                    after_op=location.after_op,
                    detail=f"crosstalk q{spectator}<-{location.detail}",
                ),
            ))
        return faults

    def expected_fault_count(self, circuit: Circuit,
                             locations: Optional[Sequence[FaultLocation]]
                             = None) -> float:
        if locations is None:
            locations = enumerate_locations(circuit)
        locations = list(locations)
        base = super().expected_fault_count(circuit, locations)
        coupled = sum(
            1 for loc in locations
            if loc.kind == "gate" and len(loc.qubits) >= 2
            and self._spectators(loc, circuit.num_qubits)
        )
        return base + self.p_spectator * coupled

    def fingerprint(self) -> Tuple:
        coupling = None if self.coupling is None else \
            tuple(sorted(self.coupling.items()))
        return ("crosstalk", float(self.p_gate), float(self.p_input),
                float(self.p_delay), self.p_spectator, self.channel,
                self.spectator_channel, coupling)
