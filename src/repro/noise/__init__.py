"""Noise models, fault locations and fault injection."""

from repro.noise.injection import (
    MonteCarloResult,
    exhaustive_single_faults,
    monte_carlo,
    run_with_faults,
)
from repro.noise.locations import (
    FaultLocation,
    count_locations,
    enumerate_locations,
)
from repro.noise.model import NoiseModel, SampledFault

__all__ = [
    "FaultLocation",
    "MonteCarloResult",
    "NoiseModel",
    "SampledFault",
    "count_locations",
    "enumerate_locations",
    "exhaustive_single_faults",
    "monte_carlo",
    "run_with_faults",
]
