"""Noise models, fault locations and fault injection."""

from repro.noise.injection import (
    MonteCarloResult,
    exhaustive_single_faults,
    monte_carlo,
    run_with_coherent_noise,
    run_with_faults,
)
from repro.noise.locations import (
    FaultLocation,
    burst_locations,
    count_locations,
    crosstalk_locations,
    enumerate_locations,
)
from repro.noise.model import (
    CHANNELS,
    ChannelSpec,
    NoiseModel,
    SampledFault,
    channel_names,
    channel_spec,
    register_channel,
)
from repro.noise.structured import (
    BiasedPauliModel,
    CoherentOverRotationModel,
    CorrelatedBurstModel,
    CrosstalkModel,
    DriftingRateModel,
    RateSchedule,
    StructuredNoiseModel,
    TwirledOverRotationModel,
)

__all__ = [
    "BiasedPauliModel",
    "CHANNELS",
    "ChannelSpec",
    "CoherentOverRotationModel",
    "CorrelatedBurstModel",
    "CrosstalkModel",
    "DriftingRateModel",
    "FaultLocation",
    "MonteCarloResult",
    "NoiseModel",
    "RateSchedule",
    "SampledFault",
    "StructuredNoiseModel",
    "TwirledOverRotationModel",
    "burst_locations",
    "channel_names",
    "channel_spec",
    "count_locations",
    "crosstalk_locations",
    "enumerate_locations",
    "exhaustive_single_faults",
    "monte_carlo",
    "register_channel",
    "run_with_coherent_noise",
    "run_with_faults",
]
