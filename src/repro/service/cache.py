"""Content-addressed verdict cache with integrity checking.

Completed certification verdicts are stored at
``cache/<fp[:2]>/<fp>.json`` where ``fp`` is the job fingerprint (the
SHA-256 of the canonical spec, :attr:`repro.service.jobs.JobSpec.
fingerprint`).  Each entry carries a second SHA-256 over *fingerprint
+ verdict*, so a garbled, truncated or bit-rotted entry is detected
at read time, quarantined (renamed into ``cache/quarantine/``) and
reported as a miss — the job is recomputed, never served a poisoned
verdict.  Metadata (timings, engine stats, worker identity) lives
*outside* the digest: two runs of the same job on different machines
produce byte-identical verdict payloads and therefore matching
digests, which is how the chaos suite asserts bit-identical recovery.

Writes are atomic (tmp + ``os.replace``, the CheckpointStore
discipline), so a reader racing a writer sees either the old complete
entry or the new complete entry — never a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.jobs import canonical_json

import hashlib

_QUARANTINE = "quarantine"


def verdict_digest(fingerprint: str, verdict: Dict[str, Any]) -> str:
    """SHA-256 binding a verdict payload to its job fingerprint."""
    blob = fingerprint + "\n" + canonical_json(verdict)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Fingerprint → verdict store, shared by all workers.

    The cache is the service's memoisation layer: a repeated
    submission of a completed job is answered here with **zero**
    simulator evaluations (asserted via ``EngineStats.evaluations``
    in the acceptance suite).
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.fspath(directory)

    # -- paths -------------------------------------------------------

    def _entry_path(self, fingerprint: str) -> str:
        self._check_fingerprint(fingerprint)
        return os.path.join(self.directory, fingerprint[:2],
                            fingerprint + ".json")

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        if (not isinstance(fingerprint, str) or len(fingerprint) != 64
                or any(c not in "0123456789abcdef"
                       for c in fingerprint)):
            raise ServiceError(
                f"malformed cache fingerprint {fingerprint!r} "
                "(expected 64 lowercase hex digits)"
            )

    # -- write -------------------------------------------------------

    def put(self, fingerprint: str, verdict: Dict[str, Any],
            meta: Optional[Dict[str, Any]] = None) -> str:
        """Store a verdict; returns its integrity digest.

        Idempotent by construction: a second ``put`` of the same
        (fingerprint, verdict) writes an equivalent entry.  A second
        put of a *different* verdict for the same fingerprint is a
        determinism violation upstream; the cache refuses it with a
        typed error rather than silently picking a winner.
        """
        path = self._entry_path(fingerprint)
        existing = self.get(fingerprint)
        if existing is not None and existing != verdict:
            raise ServiceError(
                f"cache entry {fingerprint[:12]}… already holds a "
                "different verdict for the same job spec; refusing to "
                "overwrite (upstream determinism violation)"
            )
        record = {
            "fingerprint": fingerprint,
            "verdict": verdict,
            "digest": verdict_digest(fingerprint, verdict),
            "meta": dict(meta or {}),
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return record["digest"]

    # -- read --------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached verdict, or None on miss / quarantined entry."""
        entry = self.get_entry(fingerprint)
        return None if entry is None else entry["verdict"]

    def get_entry(self, fingerprint: str
                  ) -> Optional[Dict[str, Any]]:
        """Full record ``{fingerprint, verdict, digest, meta}``.

        A corrupt entry — unparseable JSON, wrong fingerprint, digest
        mismatch — is moved to ``quarantine/`` and reported as a
        miss, so the job is recomputed instead of served a wrong
        verdict.  Quarantined files keep their bytes for post-mortem.
        """
        path = self._entry_path(fingerprint)
        if not os.path.isfile(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise ValueError("cache entry is not an object")
            if record.get("fingerprint") != fingerprint:
                raise ValueError("cache entry names another job")
            verdict = record["verdict"]
            if record.get("digest") != verdict_digest(fingerprint,
                                                      verdict):
                raise ValueError("cache digest mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path, fingerprint)
            return None
        return record

    def _quarantine(self, path: str, fingerprint: str) -> None:
        quarantine_dir = os.path.join(self.directory, _QUARANTINE)
        os.makedirs(quarantine_dir, exist_ok=True)
        target = os.path.join(
            quarantine_dir,
            f"{fingerprint}.{int(time.time() * 1000):x}.corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Lost a race with another reader quarantining the same
            # entry; the miss verdict stands either way.
            pass

    # -- inspection --------------------------------------------------

    def quarantined(self) -> List[str]:
        quarantine_dir = os.path.join(self.directory, _QUARANTINE)
        if not os.path.isdir(quarantine_dir):
            return []
        return sorted(
            os.path.join(quarantine_dir, name)
            for name in os.listdir(quarantine_dir)
        )

    def entries(self) -> List[Tuple[str, str]]:
        """(fingerprint, path) for every non-quarantined entry."""
        found = []
        if not os.path.isdir(self.directory):
            return found
        for shard in sorted(os.listdir(self.directory)):
            if shard == _QUARANTINE:
                continue
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append((name[:-len(".json")],
                                  os.path.join(shard_dir, name)))
        return found


def garble_cache_entry(cache: ResultCache, fingerprint: str,
                       mode: str = "flip") -> str:
    """Chaos helper: corrupt a cache entry in place.

    ``flip`` rewrites a byte inside the stored verdict so the digest
    no longer matches; ``truncate`` cuts the file mid-record.  Returns
    the path garbled.  Used by the chaos suite to certify that a
    corrupted entry is quarantined and recomputed, never served.
    """
    path = cache._entry_path(fingerprint)
    if not os.path.isfile(path):
        raise ServiceError(
            f"no cache entry to garble for {fingerprint[:12]}…"
        )
    with open(path, "rb") as handle:
        blob = handle.read()
    if mode == "truncate":
        garbled = blob[:max(1, len(blob) // 2)]
    elif mode == "flip":
        marker = b'"verdict"'
        at = blob.find(marker)
        at = at + len(marker) + 2 if at >= 0 else len(blob) // 2
        at = min(at, len(blob) - 1)
        garbled = blob[:at] + bytes([blob[at] ^ 0x01]) + blob[at + 1:]
    else:
        raise ServiceError(f"unknown garble mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(garbled)
    return path
