"""Content-addressed verdict cache with integrity checking.

Completed certification verdicts are stored at
``cache/<fp[:2]>/<fp>.json`` where ``fp`` is the job fingerprint (the
SHA-256 of the canonical spec, :attr:`repro.service.jobs.JobSpec.
fingerprint`).  Each entry carries a second SHA-256 over *fingerprint
+ verdict*, so a garbled, truncated or bit-rotted entry is detected
at read time, quarantined (renamed into ``cache/quarantine/``) and
reported as a miss — the job is recomputed, never served a poisoned
verdict.  Metadata (timings, engine stats, worker identity) lives
*outside* the digest: two runs of the same job on different machines
produce byte-identical verdict payloads and therefore matching
digests, which is how the chaos suite asserts bit-identical recovery.

Writes are atomic (tmp + ``os.replace``, the CheckpointStore
discipline), so a reader racing a writer sees either the old complete
entry or the new complete entry — never a torn one.

Unbounded campaign histories need an **eviction policy**:

* ``max_entries`` — an LRU bound.  Reads bump the entry file's mtime,
  so recency survives process restarts; a ``put`` that pushes the
  cache over the bound evicts the least-recently-used entries.
* ``max_age`` — a TTL.  Entries record their ``stored_at`` wall-clock
  (outside the digest); one older than ``max_age`` is evicted at read
  time and reported as a miss, so an aged-out verdict is recomputed
  rather than served stale.

Every eviction is journaled as an ``evictions`` record in the cache's
own :class:`~repro.runtime.CheckpointStore` (``cache/journal/``) —
fingerprint, reason (``lru``/``ttl``), timestamp — so a campaign audit
can distinguish "never computed" from "computed and aged out".
Eviction never weakens integrity: an evicted entry is deleted whole,
the digest check still guards every read, and a *corrupt* entry is
quarantined (kept for post-mortem), never silently evicted.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.runtime.checkpoint import CheckpointStore
from repro.service.jobs import canonical_json

import hashlib

_QUARANTINE = "quarantine"
_JOURNAL = "journal"
_EVICTIONS = "evictions"


def verdict_digest(fingerprint: str, verdict: Dict[str, Any]) -> str:
    """SHA-256 binding a verdict payload to its job fingerprint."""
    blob = fingerprint + "\n" + canonical_json(verdict)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Fingerprint → verdict store, shared by all workers.

    The cache is the service's memoisation layer: a repeated
    submission of a completed job is answered here with **zero**
    simulator evaluations (asserted via ``EngineStats.evaluations``
    in the acceptance suite).
    """

    def __init__(self, directory: str, *,
                 max_entries: Optional[int] = None,
                 max_age: Optional[float] = None,
                 clock: Callable[[], float] = time.time) -> None:
        if max_entries is not None and max_entries < 1:
            raise ServiceError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        if max_age is not None and max_age <= 0:
            raise ServiceError(
                f"cache max_age must be > 0 seconds, got {max_age}"
            )
        self.directory = os.fspath(directory)
        self.max_entries = max_entries
        self.max_age = max_age
        self.clock = clock
        self.journal = CheckpointStore(
            os.path.join(self.directory, _JOURNAL))

    # -- paths -------------------------------------------------------

    def _entry_path(self, fingerprint: str) -> str:
        self._check_fingerprint(fingerprint)
        return os.path.join(self.directory, fingerprint[:2],
                            fingerprint + ".json")

    @staticmethod
    def _check_fingerprint(fingerprint: str) -> None:
        if (not isinstance(fingerprint, str) or len(fingerprint) != 64
                or any(c not in "0123456789abcdef"
                       for c in fingerprint)):
            raise ServiceError(
                f"malformed cache fingerprint {fingerprint!r} "
                "(expected 64 lowercase hex digits)"
            )

    # -- write -------------------------------------------------------

    def put(self, fingerprint: str, verdict: Dict[str, Any],
            meta: Optional[Dict[str, Any]] = None) -> str:
        """Store a verdict; returns its integrity digest.

        Idempotent by construction: a second ``put`` of the same
        (fingerprint, verdict) writes an equivalent entry.  A second
        put of a *different* verdict for the same fingerprint is a
        determinism violation upstream; the cache refuses it with a
        typed error rather than silently picking a winner.
        """
        path = self._entry_path(fingerprint)
        existing = self.get(fingerprint)
        if existing is not None and existing != verdict:
            raise ServiceError(
                f"cache entry {fingerprint[:12]}… already holds a "
                "different verdict for the same job spec; refusing to "
                "overwrite (upstream determinism violation)"
            )
        record = {
            "fingerprint": fingerprint,
            "verdict": verdict,
            "digest": verdict_digest(fingerprint, verdict),
            "meta": dict(meta or {}),
            # Outside the digest, like meta: eviction bookkeeping must
            # not break cross-machine digest equality.
            "stored_at": self.clock(),
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp",
            dir=directory)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._enforce_limits(keep=fingerprint)
        return record["digest"]

    # -- read --------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached verdict, or None on miss / quarantined entry."""
        entry = self.get_entry(fingerprint)
        return None if entry is None else entry["verdict"]

    def get_entry(self, fingerprint: str
                  ) -> Optional[Dict[str, Any]]:
        """Full record ``{fingerprint, verdict, digest, meta}``.

        A corrupt entry — unparseable JSON, wrong fingerprint, digest
        mismatch — is moved to ``quarantine/`` and reported as a
        miss, so the job is recomputed instead of served a wrong
        verdict.  Quarantined files keep their bytes for post-mortem.
        """
        path = self._entry_path(fingerprint)
        if not os.path.isfile(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if not isinstance(record, dict):
                raise ValueError("cache entry is not an object")
            if record.get("fingerprint") != fingerprint:
                raise ValueError("cache entry names another job")
            verdict = record["verdict"]
            if record.get("digest") != verdict_digest(fingerprint,
                                                      verdict):
                raise ValueError("cache digest mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path, fingerprint)
            return None
        if self.max_age is not None:
            # Entries written before TTL support carry no stored_at;
            # treating them as ancient errs on the safe side — an
            # aged-out verdict is recomputed, never served stale.
            stored_at = float(record.get("stored_at", 0.0))
            if self.clock() - stored_at > self.max_age:
                self._evict(fingerprint, path, "ttl")
                return None
        try:
            os.utime(path, None)  # LRU recency marker
        except OSError:
            pass
        return record

    # -- eviction ----------------------------------------------------

    def _evict(self, fingerprint: str, path: str,
               reason: str) -> None:
        """Journal and delete one entry (LRU bound or TTL expiry)."""
        self.journal.append_record(_EVICTIONS, {
            "event": "evict",
            "fingerprint": fingerprint,
            "reason": reason,
            "evicted_at": self.clock(),
        })
        try:
            os.unlink(path)
        except OSError:
            # Lost a race with another evictor; the journal may then
            # hold two events for one eviction, which audits tolerate.
            pass

    def _enforce_limits(self, keep: str = "") -> None:
        """Apply the LRU bound after a write.

        Evicts least-recently-used entries (file mtime, bumped on
        every read) until the cache fits ``max_entries`` again; the
        just-written ``keep`` fingerprint is never a victim even
        under mtime ties on coarse filesystem clocks.
        """
        if self.max_entries is None:
            return
        entries = self.entries()
        if len(entries) <= self.max_entries:
            return
        by_recency = []
        for fingerprint, path in entries:
            if fingerprint == keep:
                continue
            try:
                by_recency.append(
                    (os.path.getmtime(path), fingerprint, path))
            except OSError:
                continue
        by_recency.sort()
        excess = len(entries) - self.max_entries
        for _, fingerprint, path in by_recency[:excess]:
            self._evict(fingerprint, path, "lru")

    def eviction_events(self) -> List[Dict[str, Any]]:
        """Every journaled eviction, oldest first."""
        return self.journal.load_records(_EVICTIONS,
                                         tolerate_tail=True)

    def eviction_counts(self) -> Dict[str, int]:
        """Evictions tallied by reason (``lru`` / ``ttl``)."""
        tally: Dict[str, int] = {}
        for event in self.eviction_events():
            reason = str(event.get("reason", "unknown"))
            tally[reason] = tally.get(reason, 0) + 1
        return tally

    def _quarantine(self, path: str, fingerprint: str) -> None:
        quarantine_dir = os.path.join(self.directory, _QUARANTINE)
        os.makedirs(quarantine_dir, exist_ok=True)
        target = os.path.join(
            quarantine_dir,
            f"{fingerprint}.{int(time.time() * 1000):x}.corrupt")
        try:
            os.replace(path, target)
        except OSError:
            # Lost a race with another reader quarantining the same
            # entry; the miss verdict stands either way.
            pass

    # -- inspection --------------------------------------------------

    def quarantined(self) -> List[str]:
        quarantine_dir = os.path.join(self.directory, _QUARANTINE)
        if not os.path.isdir(quarantine_dir):
            return []
        return sorted(
            os.path.join(quarantine_dir, name)
            for name in os.listdir(quarantine_dir)
        )

    def entries(self) -> List[Tuple[str, str]]:
        """(fingerprint, path) for every non-quarantined entry."""
        found = []
        if not os.path.isdir(self.directory):
            return found
        for shard in sorted(os.listdir(self.directory)):
            if shard in (_QUARANTINE, _JOURNAL):
                continue
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    found.append((name[:-len(".json")],
                                  os.path.join(shard_dir, name)))
        return found


def garble_cache_entry(cache: ResultCache, fingerprint: str,
                       mode: str = "flip") -> str:
    """Chaos helper: corrupt a cache entry in place.

    ``flip`` rewrites a byte inside the stored verdict so the digest
    no longer matches; ``truncate`` cuts the file mid-record.  Returns
    the path garbled.  Used by the chaos suite to certify that a
    corrupted entry is quarantined and recomputed, never served.
    """
    path = cache._entry_path(fingerprint)
    if not os.path.isfile(path):
        raise ServiceError(
            f"no cache entry to garble for {fingerprint[:12]}…"
        )
    with open(path, "rb") as handle:
        blob = handle.read()
    if mode == "truncate":
        garbled = blob[:max(1, len(blob) // 2)]
    elif mode == "flip":
        marker = b'"verdict"'
        at = blob.find(marker)
        at = at + len(marker) + 2 if at >= 0 else len(blob) // 2
        at = min(at, len(blob) - 1)
        garbled = blob[:at] + bytes([blob[at] ^ 0x01]) + blob[at + 1:]
    else:
        raise ServiceError(f"unknown garble mode {mode!r}")
    with open(path, "wb") as handle:
        handle.write(garbled)
    return path
