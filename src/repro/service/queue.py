"""Durable, crash-safe job queue: journal, leases, retry, dead-letter.

The queue is a directory::

    <root>/
      journal/            append-only "events" CheckpointStore records
      jobs/<fp>/          per-job journal: progress events + engine
                          checkpoints (substore "engine")
      leases/<fp>.json    atomic, checksummed lease files
      deadletter/<fp>.json  quarantined jobs after bounded attempts
      queue.lock          advisory lock serialising state transitions

Queue state is *derived*, never stored: every transition appends one
event record (``submit`` / ``claim`` / ``complete`` / ``fail`` /
``expire`` / ``dead``) to the journal, and readers replay the journal
to reconstruct each job's :class:`~repro.service.jobs.JobStatus`.
Records are atomic and checksummed (CheckpointStore), and replay runs
with ``tolerate_tail=True``: a crash- or chaos-truncated *last* event
is quarantined and its effect re-derived from the surrounding files —
a lost ``claim`` is covered by the lease file it wrote, a lost
``complete`` by the lease it removed (the job is reaped, re-claimed
and served from the ResultCache).  A corrupt event in the middle of
the journal is unambiguous damage and raises
:class:`~repro.exceptions.CheckpointError`.

Leases make crash recovery safe: a claim writes
``leases/<fp>.json`` with a random token and an expiry; the worker
heartbeats by atomically rewriting the file.  A worker that dies or
hangs stops heartbeating, the lease expires, and
:meth:`JobQueue.reap_expired` returns the job to ``pending`` for
re-claim under a *fresh* token.  Any late write from the original
holder — heartbeat, completion, failure — fails token validation and
raises :class:`~repro.exceptions.StaleLeaseError`, so a job's
terminal verdict is recorded exactly once.

Retries back off exponentially with *deterministic* jitter (hashed
from fingerprint × attempt, so schedules are reproducible in tests),
and a job that exhausts ``max_attempts`` moves to the dead-letter
directory as a typed terminal state instead of retrying forever.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.exceptions import CheckpointError, ServiceError, \
    StaleLeaseError
from repro.runtime.checkpoint import CheckpointStore, _flock, \
    _read_checked_json, _write_atomic_json
from repro.service.jobs import CANCELLED, DEAD, FAILED, JobSpec, \
    JobStatus, PENDING, RUNNING, SUCCEEDED, canonical_json

_EVENTS = "events"
_QUEUE_LOCK = "queue.lock"


@dataclass(frozen=True)
class Lease:
    """A claimed job: spec plus the credentials to act on it."""

    spec: JobSpec
    fingerprint: str
    token: str
    attempt: int
    claimed_at: float
    expires_at: float
    deadline_at: float
    submit_index: int = 0


def backoff_delay(fingerprint: str, attempt: int,
                  base: float, factor: float,
                  jitter: float) -> float:
    """Exponential backoff with deterministic per-job jitter.

    ``attempt`` is 1-based (the attempt that just failed).  Jitter is
    derived from SHA-256(fingerprint, attempt) so retry schedules are
    reproducible — the chaos suite replays them exactly — while still
    decorrelating jobs that fail together.
    """
    if attempt < 1:
        raise ServiceError(f"attempt must be >= 1, got {attempt}")
    digest = hashlib.sha256(
        f"{fingerprint}:{attempt}".encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return base * (factor ** (attempt - 1)) * (1.0 + jitter * unit)


class JobQueue:
    """The durable queue.  All transitions serialise on ``queue.lock``.

    Safe for concurrent use from many processes: every mutating
    method takes the queue-level advisory lock, re-derives state from
    the journal, validates, appends exactly one event and updates the
    lease/dead-letter files before releasing it.  The kernel releases
    the lock if the holder dies, so a SIGKILL mid-transition never
    wedges the queue (the interrupted transition is the torn-tail
    case replay already recovers from).
    """

    def __init__(self, root: str, *,
                 lease_ttl: float = 30.0,
                 job_deadline: float = 3600.0,
                 max_attempts: int = 3,
                 backoff_base: float = 1.0,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.1,
                 clock_skew_grace: float = 0.0,
                 clock: Callable[[], float] = time.time) -> None:
        if clock_skew_grace < 0.0:
            raise ServiceError(
                f"clock_skew_grace must be >= 0, got "
                f"{clock_skew_grace!r}"
            )
        self.root = os.fspath(root)
        self.lease_ttl = float(lease_ttl)
        self.job_deadline = float(job_deadline)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        self.clock_skew_grace = float(clock_skew_grace)
        self.clock = clock
        self.journal = CheckpointStore(
            os.path.join(self.root, "journal"))

    # -- paths -------------------------------------------------------

    def _lease_path(self, fingerprint: str) -> str:
        return os.path.join(self.root, "leases",
                            fingerprint + ".json")

    def _deadletter_path(self, fingerprint: str) -> str:
        return os.path.join(self.root, "deadletter",
                            fingerprint + ".json")

    def job_store(self, fingerprint: str) -> CheckpointStore:
        """The per-job journal (progress events, engine substore)."""
        return CheckpointStore(
            os.path.join(self.root, "jobs", fingerprint))

    def _locked(self):
        return _flock(os.path.join(self.root, _QUEUE_LOCK))

    # -- replay ------------------------------------------------------

    def _replay(self) -> Dict[str, JobStatus]:
        """Derive every job's state from the event journal.

        ``tolerate_tail=True``: a truncated final record is
        quarantined and its effect recovered from the lease and
        dead-letter files (see module docstring).
        """
        jobs: Dict[str, JobStatus] = {}
        try:
            records = self.journal.load_records(
                _EVENTS, tolerate_tail=True)
        except CheckpointError:
            raise
        for record in records:
            event = record.get("event")
            fingerprint = record.get("fingerprint", "")
            if event == "submit":
                spec = JobSpec.from_json_dict(record["spec"])
                existing = jobs.get(fingerprint)
                if existing is None or existing.terminal:
                    jobs[fingerprint] = JobStatus(
                        spec=spec, fingerprint=fingerprint,
                        submit_index=int(record.get("index", 0)))
                continue
            status = jobs.get(fingerprint)
            if status is None:
                # An event for a job whose submit record was lost to
                # tail truncation of an earlier journal generation;
                # cannot happen mid-journal (submit precedes every
                # other event), so treat as damage.
                raise CheckpointError(
                    f"queue journal event {event!r} references "
                    f"unknown job {fingerprint[:12]}…"
                )
            if event == "claim":
                status.state = RUNNING
                status.attempt = int(record["attempt"])
                status.worker = str(record.get("worker", ""))
            elif event == "complete":
                status.state = SUCCEEDED
                status.verdict = dict(record.get("verdict", {}))
                status.meta = dict(record.get("meta", {}))
                status.error = ""
            elif event == "fail":
                status.state = PENDING
                status.error = str(record.get("error", ""))
                status.not_before = float(
                    record.get("not_before", 0.0))
            elif event == "dead":
                status.state = DEAD
                status.error = str(record.get("error", ""))
            elif event == "cancel":
                status.state = CANCELLED
                status.error = str(record.get("reason", ""))
            elif event == "expire":
                if not status.terminal:
                    status.state = PENDING
            else:
                raise CheckpointError(
                    f"queue journal holds unknown event {event!r}"
                )
        return jobs

    # -- lease files -------------------------------------------------

    def _read_lease(self, fingerprint: str
                    ) -> Optional[Dict[str, Any]]:
        path = self._lease_path(fingerprint)
        if not os.path.isfile(path):
            return None
        try:
            return _read_checked_json(path)
        except CheckpointError:
            # A torn or poisoned lease cannot vouch for its holder:
            # quarantine it and treat the job as lease-less (it will
            # be reaped and re-claimed under a fresh token).
            try:
                os.replace(path, path + ".corrupt")
            except OSError:
                pass
            return None

    def _write_lease(self, lease: Dict[str, Any]) -> None:
        path = self._lease_path(lease["fingerprint"])
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _write_atomic_json(path, lease)

    def _drop_lease(self, fingerprint: str) -> None:
        try:
            os.unlink(self._lease_path(fingerprint))
        except OSError:
            pass

    def _check_token(self, fingerprint: str, token: str
                     ) -> Dict[str, Any]:
        lease = self._read_lease(fingerprint)
        if lease is None or lease.get("token") != token:
            raise StaleLeaseError(
                f"lease for job {fingerprint[:12]}… is no longer "
                f"held under this token; the job was re-leased or "
                "expired — refusing the late write"
            )
        return lease

    # -- submission --------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Enqueue a job; returns its fingerprint.

        Idempotent while the job is in flight (a duplicate submit of
        a pending/running job is a no-op).  Re-submitting a
        *terminal* job starts a fresh round — the expected path for
        "run it again", which the worker answers from the ResultCache
        without touching the simulator.
        """
        fingerprint = spec.fingerprint
        with self._locked():
            jobs = self._replay()
            existing = jobs.get(fingerprint)
            if existing is not None and not existing.terminal:
                return fingerprint
            self.journal.append_record(_EVENTS, {
                "event": "submit",
                "fingerprint": fingerprint,
                "spec": spec.to_json_dict(),
                "index": len(jobs),
                "submitted_at": self.clock(),
            })
            # A fresh round must not inherit a stale dead-letter.
            try:
                os.unlink(self._deadletter_path(fingerprint))
            except OSError:
                pass
        return fingerprint

    def cancel(self, fingerprint: str,
               reason: str = "cancelled by client") -> JobStatus:
        """Cancel a *pending* job; returns its new status.

        Idempotent: cancelling an already-cancelled job is a no-op.
        A running job cannot be cancelled — its worker holds a valid
        lease and will record a verdict exactly once; cancelling
        underneath it would race that guarantee — and the other
        terminal states are immutable history, so both are refused
        with a typed :class:`~repro.exceptions.ServiceError`.
        """
        with self._locked():
            jobs = self._replay()
            status = jobs.get(fingerprint)
            if status is None:
                raise ServiceError(
                    f"cannot cancel unknown job {fingerprint[:12]}…"
                )
            if status.state == CANCELLED:
                return status
            if status.state != PENDING:
                raise ServiceError(
                    f"cannot cancel job {fingerprint[:12]}… in state "
                    f"{status.state!r}; only pending jobs are "
                    "cancellable"
                )
            self.journal.append_record(_EVENTS, {
                "event": "cancel",
                "fingerprint": fingerprint,
                "reason": str(reason),
                "cancelled_at": self.clock(),
            })
            status.state = CANCELLED
            status.error = str(reason)
            return status

    # -- claiming ----------------------------------------------------

    def claim(self, worker: str) -> Optional[Lease]:
        """Claim the oldest runnable job, or None if none is due.

        A job is runnable when replay says ``pending``, its backoff
        ``not_before`` has passed, and no live lease file exists
        (a valid lease with a lost ``claim`` event still protects its
        holder).  Claiming writes the journal event *then* the lease
        file; a crash between the two leaves a running job without a
        lease, which :meth:`reap_expired` returns to pending.
        """
        now = self.clock()
        with self._locked():
            jobs = self._replay()
            for fingerprint in sorted(
                    jobs, key=lambda f: jobs[f].submit_index):
                status = jobs[fingerprint]
                if status.state != PENDING:
                    continue
                if status.not_before > now:
                    continue
                lease = self._read_lease(fingerprint)
                if lease is not None:
                    expires = float(lease.get("expires_at", 0.0)) \
                        + self.clock_skew_grace
                    if expires > now:
                        continue  # live holder, journal lost claim
                    self._drop_lease(fingerprint)
                attempt = status.attempt + 1
                if attempt > self.max_attempts:
                    self._bury(status, "attempts exhausted before "
                                       "claim")
                    continue
                token = os.urandom(8).hex()
                record = {
                    "event": "claim",
                    "fingerprint": fingerprint,
                    "token": token,
                    "worker": worker,
                    "attempt": attempt,
                    "claimed_at": now,
                    "expires_at": now + self.lease_ttl,
                    "deadline_at": now + self.job_deadline,
                }
                self.journal.append_record(_EVENTS, record)
                self._write_lease({
                    k: record[k]
                    for k in ("fingerprint", "token", "worker",
                              "attempt", "claimed_at", "expires_at",
                              "deadline_at")
                })
                return Lease(
                    spec=status.spec, fingerprint=fingerprint,
                    token=token, attempt=attempt, claimed_at=now,
                    expires_at=now + self.lease_ttl,
                    deadline_at=now + self.job_deadline,
                    submit_index=status.submit_index)
        return None

    def heartbeat(self, fingerprint: str, token: str) -> float:
        """Extend the lease; returns the new expiry.

        Refused with :class:`StaleLeaseError` when the lease was
        re-issued or expired away, and with :class:`ServiceError`
        when the job's hard deadline has passed — a worker that
        cannot finish in time must stop renewing, not limp on.
        """
        now = self.clock()
        with self._locked():
            lease = self._check_token(fingerprint, token)
            if now > float(lease.get("deadline_at", now)):
                raise ServiceError(
                    f"job {fingerprint[:12]}… passed its deadline; "
                    "refusing to renew the lease"
                )
            lease["expires_at"] = now + self.lease_ttl
            self._write_lease(lease)
            return float(lease["expires_at"])

    # -- completion / failure ----------------------------------------

    def complete(self, fingerprint: str, token: str,
                 verdict: Dict[str, Any],
                 meta: Optional[Dict[str, Any]] = None) -> bool:
        """Record a terminal verdict (token-checked, exactly once).

        Returns True when this call journaled the verdict, False when
        it was an exact *duplicate delivery*: the journal already
        holds a ``complete`` for this job under the **same** lease
        token with the **same** verdict, so a retried complete — a
        remote worker resubmitting blindly after an ambiguous network
        fault — is absorbed without a second journal append.  A late
        complete under a *different* token (the lease expired and was
        re-issued) is still refused with
        :class:`~repro.exceptions.StaleLeaseError`: content-addressed
        verdict + lease token together are what make resubmission
        safe without ever double-counting.
        """
        with self._locked():
            try:
                self._check_token(fingerprint, token)
            except StaleLeaseError:
                if self._is_duplicate_complete(fingerprint, token,
                                               verdict):
                    return False
                raise
            self.journal.append_record(_EVENTS, {
                "event": "complete",
                "fingerprint": fingerprint,
                "token": token,
                "verdict": dict(verdict),
                "meta": dict(meta or {}),
                "completed_at": self.clock(),
            })
            self._drop_lease(fingerprint)
            return True

    def _is_duplicate_complete(self, fingerprint: str, token: str,
                               verdict: Dict[str, Any]) -> bool:
        """True iff the journal holds this exact complete already.

        Caller holds the queue lock.  Matching is by canonical JSON of
        the verdict — the same content-addressing the cache uses — so
        only a bit-identical resubmission of the recorded verdict is
        treated as duplicate delivery.
        """
        wanted = canonical_json(dict(verdict))
        records = self.journal.load_records(_EVENTS,
                                            tolerate_tail=True)
        for record in records:
            if (record.get("event") == "complete"
                    and record.get("fingerprint") == fingerprint
                    and record.get("token") == token
                    and canonical_json(dict(record.get(
                        "verdict", {}))) == wanted):
                return True
        return False

    def fail(self, fingerprint: str, token: str, error: str) -> None:
        """Record a failed attempt: backoff-retry or dead-letter."""
        now = self.clock()
        with self._locked():
            lease = self._check_token(fingerprint, token)
            attempt = int(lease.get("attempt", 1))
            if attempt >= self.max_attempts:
                jobs = self._replay()
                status = jobs.get(fingerprint)
                if status is None:
                    raise CheckpointError(
                        f"failing unknown job {fingerprint[:12]}…"
                    )
                status.attempt = attempt
                self._bury(status, error)
            else:
                delay = backoff_delay(
                    fingerprint, attempt, self.backoff_base,
                    self.backoff_factor, self.backoff_jitter)
                self.journal.append_record(_EVENTS, {
                    "event": "fail",
                    "fingerprint": fingerprint,
                    "token": token,
                    "attempt": attempt,
                    "error": str(error),
                    "not_before": now + delay,
                })
            self._drop_lease(fingerprint)

    def _bury(self, status: JobStatus, error: str) -> None:
        """Dead-letter a job (caller holds the queue lock)."""
        self.journal.append_record(_EVENTS, {
            "event": "dead",
            "fingerprint": status.fingerprint,
            "attempt": status.attempt,
            "error": str(error),
        })
        path = self._deadletter_path(status.fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        _write_atomic_json(path, {
            "fingerprint": status.fingerprint,
            "spec": status.spec.to_json_dict(),
            "attempts": status.attempt,
            "error": str(error),
        })
        self._drop_lease(status.fingerprint)

    # -- lease expiry ------------------------------------------------

    def reap_expired(self) -> List[str]:
        """Return expired/abandoned running jobs to ``pending``.

        Covers three holder failure modes with one sweep: a dead
        holder (lease expired, no heartbeats), a hung holder (lease
        heartbeats stopped at the deadline), and a crash between the
        claim event and the lease write (running job with no lease
        file at all).

        ``clock_skew_grace`` pads the expiry (not the hard deadline)
        before a lease is declared abandoned: in a multi-host fleet
        the lease's ``expires_at`` was computed from *this* server's
        clock but the holder heartbeats over a network, so a renewal
        landing marginally "late" by the server's clock — skew plus
        transit time — must not forfeit a live lease.  The deadline
        is deliberately not padded: a job that overran its hard
        budget is hung regardless of whose clock you trust.
        """
        now = self.clock()
        reaped = []
        with self._locked():
            jobs = self._replay()
            for fingerprint, status in jobs.items():
                if status.state != RUNNING:
                    continue
                lease = self._read_lease(fingerprint)
                if lease is not None:
                    expired = (now > float(lease.get("expires_at",
                                                     0.0))
                               + self.clock_skew_grace
                               or now > float(lease.get("deadline_at",
                                                        now + 1.0)))
                    if not expired:
                        continue
                self.journal.append_record(_EVENTS, {
                    "event": "expire",
                    "fingerprint": fingerprint,
                    "expired_at": now,
                })
                self._drop_lease(fingerprint)
                reaped.append(fingerprint)
        return reaped

    def expire_lease(self, fingerprint: str) -> None:
        """Chaos hook: force-expire a lease under a live worker.

        The journal records a normal ``expire`` event and the lease
        file is removed, exactly as if the holder had stopped
        heartbeating; the still-running holder's next token-checked
        write raises :class:`StaleLeaseError`.
        """
        with self._locked():
            jobs = self._replay()
            status = jobs.get(fingerprint)
            if status is None or status.state != RUNNING:
                raise ServiceError(
                    f"cannot expire lease of job {fingerprint[:12]}…:"
                    " not running"
                )
            self.journal.append_record(_EVENTS, {
                "event": "expire",
                "fingerprint": fingerprint,
                "expired_at": self.clock(),
                "forced": True,
            })
            self._drop_lease(fingerprint)

    # -- progress / status -------------------------------------------

    def record_progress(self, fingerprint: str,
                        payload: Dict[str, Any]) -> None:
        """Append one streaming progress event to the job journal."""
        self.job_store(fingerprint).append_record(
            "progress", dict(payload))

    def record_progress_checked(self, fingerprint: str, token: str,
                                payload: Dict[str, Any]) -> None:
        """Token-checked progress append for remote holders.

        A partitioned worker whose lease was re-issued must not keep
        streaming into the job journal — its events would interleave
        with the new holder's — so the wire path validates the lease
        token before every append, where the in-process worker's
        direct :meth:`record_progress` relies on process supervision.
        """
        with self._locked():
            self._check_token(fingerprint, token)
            self.record_progress(fingerprint, dict(payload))

    def progress(self, fingerprint: str) -> List[Dict[str, Any]]:
        """All streamed progress events, oldest first."""
        return self.job_store(fingerprint).load_records(
            "progress", tolerate_tail=True)

    def status(self, fingerprint: str) -> Optional[JobStatus]:
        with self._locked():
            return self._replay().get(fingerprint)

    def jobs(self) -> Dict[str, JobStatus]:
        with self._locked():
            return self._replay()

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for status in self.jobs().values():
            tally[status.state] = tally.get(status.state, 0) + 1
        return tally

    def event_counts(self) -> Dict[str, int]:
        """Lifetime event tallies replayed from the queue journal.

        Unlike :meth:`counts` (current state per job) this counts
        *history*: every submit, claim, complete, fail, expire (the
        reap/forced-expiry total), dead-letter and cancel ever
        journaled — the raw material for
        :class:`~repro.service.pool.ServiceStats`.
        """
        tally: Dict[str, int] = {}
        with self._locked():
            records = self.journal.load_records(
                _EVENTS, tolerate_tail=True)
        for record in records:
            event = str(record.get("event", "unknown"))
            tally[event] = tally.get(event, 0) + 1
        return tally

    @property
    def drained(self) -> bool:
        """True when every submitted job reached a terminal state."""
        return all(status.terminal
                   for status in self.jobs().values())

    def watch(self, fingerprint: str, poll: float = 0.2,
              timeout: float = 60.0
              ) -> Iterator[Dict[str, Any]]:
        """Stream progress events until the job goes terminal.

        Yields each progress payload exactly once, in order, polling
        the job journal while the job runs; raises
        :class:`ServiceError` if the job is still live at timeout.
        """
        seen = 0
        deadline = time.monotonic() + timeout
        while True:
            events = self.progress(fingerprint)
            for event in events[seen:]:
                yield event
            seen = len(events)
            status = self.status(fingerprint)
            if status is not None and status.terminal:
                return
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"watch timed out after {timeout:g}s with job "
                    f"{fingerprint[:12]}… still "
                    f"{status.state if status else 'unknown'}"
                )
            time.sleep(poll)

    def leases(self) -> List[Dict[str, Any]]:
        """Every live lease file's contents (unvalidated snapshot)."""
        directory = os.path.join(self.root, "leases")
        if not os.path.isdir(directory):
            return []
        found = []
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            lease = self._read_lease(name[:-len(".json")])
            if lease is not None:
                found.append(lease)
        return found

    def deadletters(self) -> List[Dict[str, Any]]:
        directory = os.path.join(self.root, "deadletter")
        if not os.path.isdir(directory):
            return []
        letters = []
        for name in sorted(os.listdir(directory)):
            if name.endswith(".json"):
                letters.append(_read_checked_json(
                    os.path.join(directory, name)))
        return letters


def truncate_queue_journal(queue: JobQueue,
                           keep_bytes: int = 40) -> Optional[str]:
    """Chaos helper: tear the newest queue-journal event mid-record.

    Emulates a crash racing the final append: the last ``events``
    record file is cut to ``keep_bytes`` bytes, which fails its
    checksum on the next replay, is quarantined by
    ``tolerate_tail``, and the lost transition is re-derived.
    Returns the truncated path (None when the journal is empty).
    """
    files = queue.journal._record_files(_EVENTS)
    if not files:
        return None
    _, path = files[-1]
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[:max(1, min(keep_bytes, len(blob) - 1))])
    return path
