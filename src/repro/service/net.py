"""The network submission front-end: asyncio + bare HTTP/1.1.

:class:`CertificationServer` exposes the on-disk
:class:`~repro.service.JobQueue` over a deliberately tiny HTTP/1.1
surface (stdlib only — ``asyncio`` plus a hand-rolled request
parser, no framework, no new dependency)::

    GET  /v1/health                liveness + queue depth + fleet
    GET  /v1/stats                 ServiceStats + network tallies
    POST /v1/jobs                  submit a JobSpec (idempotent)
    GET  /v1/jobs/<fp>             replay-derived job status
    GET  /v1/jobs/<fp>/result      terminal verdict (409 while live)
    GET  /v1/jobs/<fp>/progress    streamed progress events
    GET  /v1/watch/<fp>            long-poll progress (cursor-based)
    POST /v1/jobs/<fp>/cancel      cancel a pending job
    POST /v1/sweeps                submit a SweepSpec (decomposed)
    GET  /v1/sweeps/<fp>           journaled merge of the sweep

plus the **authenticated worker-fleet surface** (HMAC shared-secret
headers, :mod:`repro.service.auth`; unauthenticated or garbled
tokens are refused with typed 401/403)::

    POST /v1/work/claim            claim the oldest runnable job
    POST /v1/work/heartbeat        renew a lease (409 when stale)
    POST /v1/work/progress         append one progress event
    POST /v1/work/complete         record the verdict (idempotent)
    POST /v1/work/fail             record a failed attempt

Every fleet mutation carries the lease token issued at claim, so a
partitioned or zombie worker's late write is refused server-side
exactly as ``StaleLeaseError`` refuses it in-process — and a
*retried* complete under the still-valid token is absorbed
idempotently, never journaled twice.

``/v1/watch/<fp>?cursor=N&wait=S`` holds the connection until
progress events past ``cursor`` arrive (or the job goes terminal, or
``wait`` elapses — a zero-event timeout returns an *empty page*, not
a hang).  The cursor is the index into the job's journaled progress
records, so a watch torn by a disconnect or a server restart resumes
exactly where it left off.

Two properties carry the fault-tolerance story:

* **Idempotent submission.**  A job's identity is the SHA-256
  fingerprint of its canonical spec, computed identically on client
  and server.  A retried, duplicated or replayed ``POST /v1/jobs``
  lands on the same fingerprint and the queue's content-addressed
  dedup makes it a no-op — which is what lets the client resubmit
  blindly after any network fault and still be exactly-once.
* **Digest-enveloped responses.**  Every response body is
  ``{"payload": ..., "sha256": SHA-256(canonical payload)}``.  A
  response garbled in flight fails the client's digest check and is
  retried; a corrupted verdict is never *believed*, mirroring the
  ResultCache's never-serve-corrupt rule on the wire.

Faults are injected via :class:`~repro.service.chaos.NetChaosPlan`
at exact request coordinates, keeping network soaks as reproducible
as worker soaks.  The server itself holds no state — every request
replays the journals — so killing and restarting it mid-campaign
loses nothing.
"""

from __future__ import annotations

import asyncio
import threading
import urllib.parse
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import (
    AuthenticationError,
    AuthorizationError,
    CheckpointError,
    ReproError,
    ServiceError,
    ServiceUnavailableError,
    StaleLeaseError,
)
from repro.service.auth import verify_request
from repro.service.chaos import (
    DELAY_HEARTBEAT,
    DELAY_RESPONSE,
    DISCONNECT,
    DROP_REQUEST,
    DUPLICATE_REQUEST,
    GARBLE_RESPONSE,
    PARTITION_WORKER,
    NetChaosPlan,
)
from repro.service.jobs import JobSpec
from repro.service.sweep import (
    SweepSpec,
    load_sweep,
    merge_sweep,
    submit_sweep,
)
from repro.service.cache import verdict_digest

import json

_MAX_BODY = 4 * 1024 * 1024  # a spec is small; cap abuse
_FINGERPRINT_LEN = 64

#: Ops that require fleet authentication (the lease-mutating surface).
_WORK_OPS = frozenset({"work_claim", "work_heartbeat",
                       "work_progress", "work_complete",
                       "work_fail"})


def envelope(payload: Any) -> bytes:
    """Serialise one digest-enveloped response body."""
    digest = verdict_digest("payload", payload)
    return json.dumps({"payload": payload,
                       "sha256": digest}).encode("utf-8")


def open_envelope(body: bytes) -> Any:
    """Verify and unwrap a response body; typed error on damage."""
    try:
        record = json.loads(body.decode("utf-8"))
        payload = record["payload"]
        stored = record["sha256"]
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) \
            as exc:
        raise ServiceError(
            f"response envelope is unreadable or truncated: {exc}"
        ) from exc
    if stored != verdict_digest("payload", payload):
        raise ServiceError(
            "response envelope failed its integrity digest "
            "(garbled in flight)"
        )
    return payload


class CertificationServer:
    """Serves one :class:`~repro.service.CertificationService`.

    Start with :meth:`start` (spawns a daemon thread running its own
    asyncio loop, binds, returns the address) or embed the coroutine
    :meth:`serve` in an existing loop.  The server is safe to run
    beside in-process workers and forked pools: all queue access goes
    through the same advisory-locked journals.
    """

    def __init__(self, service, host: str = "127.0.0.1",
                 port: int = 0, *,
                 net_chaos: Optional[NetChaosPlan] = None,
                 merge_lock_timeout: float = 30.0,
                 worker_secret: Optional[str] = None,
                 busy_retry_after: float = 0.25,
                 watch_poll: float = 0.05,
                 watch_max_wait: float = 30.0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.net_chaos = net_chaos
        self.merge_lock_timeout = merge_lock_timeout
        self.worker_secret = worker_secret
        self.busy_retry_after = float(busy_retry_after)
        self.watch_poll = float(watch_poll)
        self.watch_max_wait = float(watch_max_wait)
        self.request_counts: Dict[str, int] = {}
        #: worker name → lifetime authenticated-request tally, and
        #: (worker, op) → per-op tally: the fleet's connection ledger
        #: (/v1/health reports it; fleet chaos addresses by it).
        self.worker_requests: Dict[str, int] = {}
        self.worker_op_requests: Dict[Tuple[str, str], int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------

    async def serve(self) -> None:
        """Bind and serve until :meth:`close` (or cancellation)."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Run the server on a daemon thread; returns (host, port)."""
        if self._thread is not None:
            raise ServiceError("server already started")

        def _main() -> None:
            try:
                asyncio.run(self.serve())
            except BaseException as exc:  # surfaced via start()
                self._startup_error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=_main, name="certification-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError(
                f"server did not bind within {timeout:g}s"
            )
        if self._startup_error is not None:
            raise ServiceError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving and join the thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "CertificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body, headers = request
            op, responder = self._route(method, path, body, headers)
            index = self.request_counts.get(op, 0)
            self.request_counts[op] = index + 1
            events = (self.net_chaos.match(op, index)
                      if self.net_chaos is not None else [])
            kinds = {event.kind for event in events}
            worker: Optional[str] = None
            if op in _WORK_OPS:
                worker = self._authenticate(method, path, body,
                                            headers)
                dropped = await self._fleet_chaos(worker, op)
                if dropped:
                    return  # partitioned: not one response byte
            status, payload = await self._run_responder(responder,
                                                        worker)
            if DUPLICATE_REQUEST in kinds:
                # An at-least-once delivery duplicate: the same
                # request is processed a second time, and the second
                # outcome is what the client sees.  Idempotent
                # submission makes both outcomes agree.
                status, payload = await self._run_responder(responder,
                                                            worker)
            if DROP_REQUEST in kinds:
                return  # not one response byte
            for event in events:
                if event.kind == DELAY_RESPONSE:
                    await asyncio.sleep(event.seconds)
            blob = envelope(payload)
            garble = GARBLE_RESPONSE in kinds
            cut = len(blob) // 2 if DISCONNECT in kinds else None
            await self._respond(writer, status, blob,
                                garble=garble, cut=cut)
        except ConnectionError:
            pass
        except AuthenticationError as exc:
            await self._try_respond(writer, 401, self._typed(exc))
        except AuthorizationError as exc:
            await self._try_respond(writer, 403, self._typed(exc))
        except StaleLeaseError as exc:
            # A late write from a partitioned/zombie holder: a
            # deterministic refusal, not a server fault — 409 so the
            # client does not retry it.
            await self._try_respond(writer, 409, self._typed(exc))
        except ServiceUnavailableError as exc:
            await self._try_respond(
                writer, 503, self._typed(exc),
                extra_headers={"Retry-After":
                               f"{exc.retry_after:g}"})
        except ReproError as exc:
            await self._try_respond(writer, 500, self._typed(exc))
        except Exception as exc:  # noqa: BLE001 - typed to client
            await self._try_respond(writer, 500,
                                    {"error": f"internal error: "
                                              f"{type(exc).__name__}:"
                                              f" {exc}",
                                     "error_type":
                                         type(exc).__name__})
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _typed(exc: BaseException) -> Dict[str, Any]:
        """Error payload carrying the exception type for clients."""
        return {"error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__}

    @staticmethod
    async def _run_responder(responder, worker: Optional[str] = None
                             ) -> Tuple[int, Dict[str, Any]]:
        result = responder(worker) if worker is not None \
            else responder()
        if asyncio.iscoroutine(result):
            result = await result
        return result

    def _authenticate(self, method: str, path: str, body: bytes,
                      headers: Mapping[str, str]) -> str:
        """Verify the fleet token; tallies and returns the worker."""
        if self.worker_secret is None:
            raise AuthenticationError(
                "this server has no fleet secret configured; the "
                "/v1/work surface is disabled"
            )
        worker = verify_request(self.worker_secret, method, path,
                                headers, body)
        self.worker_requests[worker] = \
            self.worker_requests.get(worker, 0) + 1
        return worker

    async def _fleet_chaos(self, worker: str, op: str) -> bool:
        """Fire worker-coordinate chaos; True = drop the request."""
        op_index = self.worker_op_requests.get((worker, op), 0)
        self.worker_op_requests[(worker, op)] = op_index + 1
        if self.net_chaos is None:
            return False
        total_index = self.worker_requests.get(worker, 1) - 1
        events = self.net_chaos.match_worker(worker, op, op_index,
                                             total_index)
        dropped = False
        for event in events:
            if event.kind == PARTITION_WORKER:
                dropped = True
            elif event.kind == DELAY_HEARTBEAT:
                # Delay *processing*, so the renewal lands late by
                # the server's clock — the zombie coordinate.
                await asyncio.sleep(event.seconds)
        return dropped

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes, Dict[str, str]]]:
        line = await reader.readline()
        if not line.strip():
            return None
        try:
            method, path, _version = \
                line.decode("latin-1").strip().split(" ", 2)
        except ValueError:
            raise ServiceError(f"malformed request line {line!r}")
        length = 0
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ServiceError(
                        f"bad Content-Length {value.strip()!r}"
                    )
        if length > _MAX_BODY:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte cap"
            )
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body, headers

    async def _respond(self, writer: asyncio.StreamWriter,
                       status: int, blob: bytes, *,
                       garble: bool = False,
                       cut: Optional[int] = None,
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> None:
        if garble and blob:
            # Flip one byte inside the payload region so the HTTP
            # framing survives but the envelope digest cannot.
            at = min(len(blob) - 2, len(blob) // 2)
            blob = blob[:at] + bytes([blob[at] ^ 0x01]) + \
                blob[at + 1:]
        reason = {200: "OK", 400: "Bad Request",
                  401: "Unauthorized", 403: "Forbidden",
                  404: "Not Found", 409: "Conflict",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}
        extra = "".join(f"{name}: {value}\r\n"
                        for name, value in
                        (extra_headers or {}).items())
        head = (f"HTTP/1.1 {status} {reason.get(status, 'Status')}"
                f"\r\nContent-Type: application/json"
                f"\r\nContent-Length: {len(blob)}"
                f"\r\n{extra}"
                f"Connection: close\r\n\r\n").encode("latin-1")
        if cut is not None:
            # Disconnect chaos: some bytes, then a torn connection.
            writer.write(head + blob[:cut])
            await writer.drain()
            writer.transport.abort()
            return
        writer.write(head + blob)
        await writer.drain()

    async def _try_respond(self, writer, status, payload,
                           extra_headers=None) -> None:
        try:
            await self._respond(writer, status, envelope(payload),
                                extra_headers=extra_headers)
        except (ConnectionError, OSError):
            pass

    # -- routing -----------------------------------------------------

    def _route(self, method: str, path: str, body: bytes,
               headers: Mapping[str, str]):
        """Map a request to (op name, zero-arg responder)."""
        bare, _, query_text = path.partition("?")
        query = urllib.parse.parse_qs(query_text)
        parts = [part for part in bare.split("/") if part]
        if parts[:1] != ["v1"]:
            return "health", lambda: (
                404, {"error": f"unknown path {path!r}"})
        rest = parts[1:]
        if rest == ["health"] and method == "GET":
            return "health", self._get_health
        if rest == ["stats"] and method == "GET":
            return "stats", self._get_stats
        if rest == ["jobs"] and method == "POST":
            return "submit", lambda: self._post_job(body)
        if len(rest) >= 2 and rest[0] == "jobs":
            fingerprint = rest[1]
            if len(rest) == 2 and method == "GET":
                return "status", \
                    lambda: self._get_status(fingerprint)
            if rest[2:] == ["result"] and method == "GET":
                return "result", \
                    lambda: self._get_result(fingerprint)
            if rest[2:] == ["progress"] and method == "GET":
                return "progress", \
                    lambda: self._get_progress(fingerprint)
            if rest[2:] == ["cancel"] and method == "POST":
                return "cancel", \
                    lambda: self._post_cancel(fingerprint)
        if len(rest) == 2 and rest[0] == "watch" and \
                method == "GET":
            return "watch", \
                lambda: self._get_watch(rest[1], query)
        if len(rest) == 2 and rest[0] == "work" and \
                method == "POST":
            verb = rest[1]
            work = {
                "claim": self._post_work_claim,
                "heartbeat": self._post_work_heartbeat,
                "progress": self._post_work_progress,
                "complete": self._post_work_complete,
                "fail": self._post_work_fail,
            }
            if verb in work:
                responder = work[verb]
                # The worker identity is injected post-auth by
                # _run_responder; _WORK_OPS routing guarantees it.
                return f"work_{verb}", \
                    lambda worker=None: responder(body, worker)
        if rest == ["sweeps"] and method == "POST":
            return "sweep_submit", lambda: self._post_sweep(body)
        if len(rest) == 2 and rest[0] == "sweeps" and \
                method == "GET":
            return "sweep_status", \
                lambda: self._get_sweep(rest[1])
        return "health", lambda: (
            404, {"error": f"no route for {method} {path!r}"})

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, Any]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ServiceError("request body must be a JSON object")
        return data

    # -- endpoint handlers -------------------------------------------

    def _get_health(self) -> Tuple[int, Dict[str, Any]]:
        counts = self.service.counts()
        return 200, {
            "ok": True,
            "counts": counts,
            "queue_depth": counts.get("pending", 0),
            "active_leases": len(self.service.queue.leases()),
            "workers": dict(sorted(self.worker_requests.items())),
            "drained": (counts.get("pending", 0)
                        + counts.get("running", 0)) == 0,
        }

    def _get_stats(self) -> Tuple[int, Dict[str, Any]]:
        counts = self.service.counts()
        return 200, {
            "service": self.service.stats().to_json_dict(),
            "net": {
                "requests": dict(sorted(
                    self.request_counts.items())),
                "chaos_fired": (self.net_chaos.fired
                                if self.net_chaos else 0),
            },
            "fleet": {
                "queue_depth": counts.get("pending", 0),
                "active_leases": len(self.service.queue.leases()),
                "workers": dict(sorted(
                    self.worker_requests.items())),
                "worker_ops": {
                    f"{worker}:{op}": count
                    for (worker, op), count in sorted(
                        self.worker_op_requests.items())},
            },
        }

    def _post_job(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            data = self._parse_body(body)
            spec = JobSpec.create(str(data.get("kind", "")),
                                  **dict(data.get("params", {})))
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        existing = self.service.queue.status(spec.fingerprint)
        deduplicated = (existing is not None
                        and not existing.terminal)
        fingerprint = self.service.submit(spec)
        status = self.service.status(fingerprint)
        return 200, {
            "fingerprint": fingerprint,
            "state": status.state if status else "pending",
            "deduplicated": deduplicated,
        }

    def _lookup(self, fingerprint: str):
        if len(fingerprint) != _FINGERPRINT_LEN:
            return None
        return self.service.status(fingerprint)

    def _get_status(self, fingerprint: str
                    ) -> Tuple[int, Dict[str, Any]]:
        status = self._lookup(fingerprint)
        if status is None:
            return 404, {"error": f"unknown job "
                                  f"{fingerprint[:12]}…"}
        return 200, status.to_json_dict()

    def _get_result(self, fingerprint: str
                    ) -> Tuple[int, Dict[str, Any]]:
        status = self._lookup(fingerprint)
        if status is None:
            return 404, {"error": f"unknown job "
                                  f"{fingerprint[:12]}…"}
        if not status.terminal:
            return 409, {"fingerprint": fingerprint,
                         "state": status.state,
                         "error": "job is not terminal yet"}
        return 200, {
            "fingerprint": fingerprint,
            "state": status.state,
            "verdict": status.verdict,
            "error": status.error,
            "meta": status.meta,
        }

    def _get_progress(self, fingerprint: str
                      ) -> Tuple[int, Dict[str, Any]]:
        status = self._lookup(fingerprint)
        if status is None:
            return 404, {"error": f"unknown job "
                                  f"{fingerprint[:12]}…"}
        return 200, {
            "fingerprint": fingerprint,
            "events": self.service.queue.progress(fingerprint),
        }

    def _post_cancel(self, fingerprint: str
                     ) -> Tuple[int, Dict[str, Any]]:
        status = self._lookup(fingerprint)
        if status is None:
            return 404, {"error": f"unknown job "
                                  f"{fingerprint[:12]}…"}
        try:
            cancelled = self.service.queue.cancel(fingerprint)
        except ServiceError as exc:
            return 409, {"fingerprint": fingerprint,
                         "state": status.state,
                         "error": str(exc)}
        return 200, {"fingerprint": fingerprint,
                     "state": cancelled.state}

    def _post_sweep(self, body: bytes
                    ) -> Tuple[int, Dict[str, Any]]:
        try:
            sweep = SweepSpec.from_json_dict(self._parse_body(body))
        except ServiceError as exc:
            return 400, {"error": str(exc)}
        return 200, submit_sweep(self.service, sweep)

    def _get_sweep(self, fingerprint: str
                   ) -> Tuple[int, Dict[str, Any]]:
        sweep = load_sweep(self.service, fingerprint)
        if sweep is None:
            return 404, {"error": f"unknown sweep "
                                  f"{fingerprint[:12]}…"}
        try:
            merged = merge_sweep(
                self.service, sweep,
                lock_timeout=self.merge_lock_timeout)
        except CheckpointError as exc:
            if "advisory lock" not in str(exc):
                raise
            # The merge journal's advisory lock is contended (another
            # merge in flight): a transient condition, so answer 503
            # with Retry-After instead of surfacing it as damage.
            raise ServiceUnavailableError(
                f"sweep {fingerprint[:12]}… merge is contended: "
                f"{exc}", retry_after=self.busy_retry_after
            ) from exc
        return 200, merged

    # -- streaming watch ---------------------------------------------

    async def _get_watch(self, fingerprint: str,
                         query: Dict[str, Any]
                         ) -> Tuple[int, Dict[str, Any]]:
        if self._lookup(fingerprint) is None:
            return 404, {"error": f"unknown job "
                                  f"{fingerprint[:12]}…"}
        try:
            cursor = int(query.get("cursor", ["0"])[0])
            wait = float(query.get("wait", ["10"])[0])
        except (ValueError, IndexError):
            return 400, {"error": "watch cursor/wait must be "
                                  "numeric"}
        cursor = max(0, cursor)
        wait = min(max(0.0, wait), self.watch_max_wait)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + wait
        while True:
            # Status *before* events: progress writes precede the
            # terminal journal append in every worker, so a terminal
            # status read first guarantees the events read after it
            # are complete — the reverse order could report terminal
            # while missing the final page.
            status = self.service.status(fingerprint)
            events = self.service.queue.progress(fingerprint)
            page = events[cursor:]
            terminal = status is not None and status.terminal
            if page or terminal or loop.time() >= deadline:
                return 200, {
                    "fingerprint": fingerprint,
                    "cursor": cursor + len(page),
                    "events": page,
                    "terminal": terminal,
                    "state": (status.state if status is not None
                              else "unknown"),
                }
            await asyncio.sleep(self.watch_poll)

    # -- worker-fleet endpoints --------------------------------------

    def _post_work_claim(self, body: bytes, worker: str
                         ) -> Tuple[int, Dict[str, Any]]:
        # Reap lazily on every claim: remote fleets have no local
        # supervisor loop, so the server itself returns abandoned
        # leases to pending before handing out work.
        self.service.queue.reap_expired()
        lease = self.service.queue.claim(worker)
        if lease is None:
            counts = self.service.counts()
            drained = (counts.get("pending", 0)
                       + counts.get("running", 0)) == 0
            return 200, {"lease": None, "drained": drained}
        payload = {
            "fingerprint": lease.fingerprint,
            "token": lease.token,
            "attempt": lease.attempt,
            "claimed_at": lease.claimed_at,
            "expires_at": lease.expires_at,
            "deadline_at": lease.deadline_at,
            "submit_index": lease.submit_index,
            "lease_ttl": self.service.queue.lease_ttl,
            "spec": lease.spec.to_json_dict(),
        }
        cached = self.service.cache.get_entry(lease.fingerprint)
        if cached is not None:
            # Determinism dividend over the wire: the worker
            # completes immediately with the cached verdict instead
            # of re-simulating.
            payload["cached_verdict"] = cached["verdict"]
            payload["cached_meta"] = dict(cached.get("meta", {}))
        return 200, {"lease": payload, "drained": False}

    def _post_work_heartbeat(self, body: bytes, worker: str
                             ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_body(body)
        fingerprint = str(data.get("fingerprint", ""))
        token = str(data.get("token", ""))
        try:
            expires_at = self.service.queue.heartbeat(fingerprint,
                                                      token)
        except StaleLeaseError:
            raise
        except ServiceError as exc:
            # Deadline passed: deterministic refusal, not a server
            # fault — 409 so the worker abandons, never retries.
            return 409, self._typed(exc)
        return 200, {"fingerprint": fingerprint,
                     "expires_at": expires_at}

    def _post_work_progress(self, body: bytes, worker: str
                            ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_body(body)
        fingerprint = str(data.get("fingerprint", ""))
        token = str(data.get("token", ""))
        self.service.queue.record_progress_checked(
            fingerprint, token, dict(data.get("event", {})))
        return 200, {"fingerprint": fingerprint, "recorded": True}

    def _post_work_complete(self, body: bytes, worker: str
                            ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_body(body)
        fingerprint = str(data.get("fingerprint", ""))
        token = str(data.get("token", ""))
        verdict = dict(data.get("verdict", {}))
        meta = dict(data.get("meta", {}))
        # Cache before the journal append, mirroring the in-process
        # worker: put() is idempotent for identical verdicts and
        # refuses a differing one (determinism violation).
        self.service.cache.put(fingerprint, verdict, meta=meta)
        recorded = self.service.queue.complete(
            fingerprint, token, verdict, meta=meta)
        return 200, {"fingerprint": fingerprint,
                     "recorded": recorded,
                     "duplicate": not recorded}

    def _post_work_fail(self, body: bytes, worker: str
                        ) -> Tuple[int, Dict[str, Any]]:
        data = self._parse_body(body)
        fingerprint = str(data.get("fingerprint", ""))
        token = str(data.get("token", ""))
        self.service.queue.fail(fingerprint, token,
                                str(data.get("error", "")))
        return 200, {"fingerprint": fingerprint, "recorded": True}


__all__ = [
    "CertificationServer",
    "envelope",
    "open_envelope",
]
