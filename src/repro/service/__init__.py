"""Crash-safe certification job service.

The paper certifies that fault-tolerant gadgets survive faults; this
package holds the certification *infrastructure* to the same
standard.  It promotes the runtime's crash-safe pieces —
:class:`~repro.runtime.CheckpointStore` journals, supervised
execution, deterministic chaos — into a durable job system:

* :class:`~repro.service.jobs.JobSpec` — content-addressed
  certification requests (SHA-256 fingerprint of the canonical spec);
* :class:`~repro.service.queue.JobQueue` — append-only event journal,
  token + TTL leases, exponential backoff with deterministic jitter,
  dead-letter quarantine;
* :class:`~repro.service.worker.Worker` — claim → cache check →
  seeded analysis run with per-job checkpoints → streamed progress →
  token-checked completion;
* :class:`~repro.service.pool.WorkerPool` /
  :class:`~repro.service.pool.CertificationService` — forked,
  supervised workers behind one facade;
* :class:`~repro.service.cache.ResultCache` — fingerprint → verdict
  with integrity digests; corrupt entries quarantined and recomputed;
* :class:`~repro.service.chaos.ServiceChaosPlan` — reproducible
  worker kills, hangs, forced lease expiries for the chaos suite.

The contract throughout is the runtime's: a correct verdict —
bit-identical whether or not the run was disturbed — or a typed
error, never a silently wrong number.
"""

from repro.service.cache import ResultCache, garble_cache_entry, \
    verdict_digest
from repro.service.chaos import ServiceChaosEvent, ServiceChaosPlan
from repro.service.jobs import DEAD, FAILED, JOB_KINDS, JobSpec, \
    JobStatus, PENDING, RUNNING, SUCCEEDED, TERMINAL_STATES
from repro.service.pool import CertificationService, ServiceConfig, \
    WorkerPool
from repro.service.queue import JobQueue, Lease, backoff_delay, \
    truncate_queue_journal
from repro.service.worker import Worker, submit_and_run

__all__ = [
    "CertificationService",
    "DEAD",
    "FAILED",
    "JOB_KINDS",
    "JobQueue",
    "JobSpec",
    "JobStatus",
    "Lease",
    "PENDING",
    "RUNNING",
    "ResultCache",
    "SUCCEEDED",
    "ServiceChaosEvent",
    "ServiceChaosPlan",
    "ServiceConfig",
    "TERMINAL_STATES",
    "Worker",
    "WorkerPool",
    "backoff_delay",
    "garble_cache_entry",
    "submit_and_run",
    "truncate_queue_journal",
    "verdict_digest",
]
