"""Crash-safe certification job service.

The paper certifies that fault-tolerant gadgets survive faults; this
package holds the certification *infrastructure* to the same
standard.  It promotes the runtime's crash-safe pieces —
:class:`~repro.runtime.CheckpointStore` journals, supervised
execution, deterministic chaos — into a durable job system:

* :class:`~repro.service.jobs.JobSpec` — content-addressed
  certification requests (SHA-256 fingerprint of the canonical spec);
* :class:`~repro.service.queue.JobQueue` — append-only event journal,
  token + TTL leases, exponential backoff with deterministic jitter,
  dead-letter quarantine, client cancellation;
* :class:`~repro.service.worker.Worker` — claim → cache check →
  seeded analysis run with per-job checkpoints → streamed progress →
  token-checked completion;
* :class:`~repro.service.pool.WorkerPool` /
  :class:`~repro.service.pool.CertificationService` — forked,
  supervised workers behind one facade, with
  :class:`~repro.service.pool.ServiceStats` observability;
* :class:`~repro.service.cache.ResultCache` — fingerprint → verdict
  with integrity digests; corrupt entries quarantined and recomputed;
  LRU/TTL eviction journaled, never serving stale or corrupt entries;
* :class:`~repro.service.net.CertificationServer` /
  :class:`~repro.service.client.ServiceClient` — the networked
  front-end: stdlib HTTP/asyncio submission API with idempotent
  content-addressed submission, digest-enveloped responses,
  long-poll cursor-resumable ``watch``, and a client whose
  timeout/backoff/reconnect/resubmit machinery makes delivery
  exactly-once over an unreliable network;
* :class:`~repro.service.remote.RemoteWorker` /
  :class:`~repro.service.auth.WorkerAuth` — the worker fleet over
  HTTP: HMAC shared-secret authenticated ``/v1/work/*`` endpoints,
  lease tokens on every mutation, idempotent retried completes;
* :mod:`~repro.service.sweep` — one whole-grid claim decomposed into
  per-cell queue jobs with a crash-safe, journaled merge step;
* :class:`~repro.service.chaos.ServiceChaosPlan` /
  :class:`~repro.service.chaos.NetChaosPlan` — reproducible worker
  kills, hangs, lease expiries, and request-coordinate network
  faults (drop/delay/duplicate/disconnect/garble) for the chaos
  suites.

The contract throughout is the runtime's: a correct verdict —
bit-identical whether or not the run was disturbed — or a typed
error, never a silently wrong number.
"""

from repro.service.auth import WorkerAuth, sign_request, \
    verify_request
from repro.service.cache import ResultCache, garble_cache_entry, \
    verdict_digest
from repro.service.chaos import NetChaosEvent, NetChaosPlan, \
    ServiceChaosEvent, ServiceChaosPlan, WorkerChaosEvent
from repro.service.client import ClientStats, ServiceClient, \
    wait_terminal
from repro.service.remote import RemoteWorker, remote_worker_main
from repro.service.jobs import CANCELLED, DEAD, FAILED, JOB_KINDS, \
    JobSpec, JobStatus, PENDING, RUNNING, SUCCEEDED, TERMINAL_STATES
from repro.service.net import CertificationServer
from repro.service.pool import CertificationService, ServiceConfig, \
    ServiceStats, WorkerPool
from repro.service.queue import JobQueue, Lease, backoff_delay, \
    truncate_queue_journal
from repro.service.sweep import SWEEP_CELL_KINDS, SweepCell, \
    SweepSpec, load_sweep, merge_sweep, run_sweep_inprocess, \
    submit_sweep
from repro.service.worker import Worker, submit_and_run

__all__ = [
    "CANCELLED",
    "CertificationServer",
    "CertificationService",
    "ClientStats",
    "DEAD",
    "FAILED",
    "JOB_KINDS",
    "JobQueue",
    "JobSpec",
    "JobStatus",
    "Lease",
    "NetChaosEvent",
    "NetChaosPlan",
    "PENDING",
    "RUNNING",
    "RemoteWorker",
    "ResultCache",
    "SUCCEEDED",
    "SWEEP_CELL_KINDS",
    "ServiceChaosEvent",
    "ServiceChaosPlan",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "SweepCell",
    "SweepSpec",
    "TERMINAL_STATES",
    "Worker",
    "WorkerAuth",
    "WorkerChaosEvent",
    "WorkerPool",
    "backoff_delay",
    "garble_cache_entry",
    "load_sweep",
    "merge_sweep",
    "remote_worker_main",
    "run_sweep_inprocess",
    "sign_request",
    "submit_and_run",
    "submit_sweep",
    "truncate_queue_journal",
    "verdict_digest",
    "verify_request",
    "wait_terminal",
]
