"""The certification worker: claim, execute, stream, complete.

One :class:`Worker` turn (:meth:`Worker.run_once`):

1. **Claim** the oldest runnable job from the :class:`~repro.service.
   queue.JobQueue` (token + TTL lease).
2. **Cache check** — if the :class:`~repro.service.cache.ResultCache`
   holds a verified verdict for the job's fingerprint, complete
   immediately with ``meta.evaluations == 0``: not one simulator run.
3. **Execute** otherwise: dispatch by job kind to the seeded analysis
   entry point, with the job's *own* CheckpointStore
   (``jobs/<fp>/engine``) held under the store's advisory owner lock,
   so a re-claimed job resumes from its journal bit-identically
   instead of restarting.  A heartbeat thread renews the lease until
   the job's hard deadline; a worker that cannot finish in time stops
   renewing and lets the lease lapse.
4. **Stream** per-batch progress — trials consumed, failures, a
   Wilson interval on the rate so far, the sequential decision if any
   — into the job journal, where ``status``/``watch`` read it live.
5. **Complete**: cache the verdict, then record it in the queue.
   Both writes are token-checked; if the lease expired or was
   re-issued mid-run the late write raises
   :class:`~repro.exceptions.StaleLeaseError` and this worker
   abandons the attempt — the new holder owns the job.

A failed attempt is reported with :meth:`JobQueue.fail` (typed error
string), which schedules a backoff retry or dead-letters the job.  A
sequential job that exhausts its trial budget *undecided* is not a
failure: it completes with a typed **partial** verdict carrying the
confidence interval accumulated so far (``verdict.partial`` is true),
the service-level face of graceful degradation.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis.engine import run_monte_carlo
from repro.analysis.sequential import run_sequential_monte_carlo
from repro.analysis.stats import wilson_interval
from repro.analysis.stress import gadget_cases, stress_certify
from repro.codes import SteaneCode, TrivialCode
from repro.exceptions import ReproError, ServiceError, StaleLeaseError
from repro.noise import NoiseModel
from repro.runtime.fallback import FallbackPolicy
from repro.runtime.policy import RuntimePolicy
from repro.service.cache import ResultCache
from repro.service.chaos import ServiceChaosPlan
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue, Lease

_CODES = {"trivial": TrivialCode, "steane": SteaneCode}


def _resolve_code(name: str):
    try:
        return _CODES[name]()
    except KeyError:
        raise ServiceError(
            f"unknown code {name!r}; pick from {sorted(_CODES)}"
        ) from None


def _build_case(code_name: str, gadget_name: str):
    code = _resolve_code(code_name)
    case = gadget_cases(code, (gadget_name,))[0]
    return case.factory()


def resolve_policy(base: Optional[RuntimePolicy],
                   params: Dict[str, Any]
                   ) -> Optional[RuntimePolicy]:
    """Per-job FallbackPolicy threading via ``fallback_ladder``."""
    ladder = params.get("fallback_ladder")
    if ladder is None:
        return base
    policy = base or RuntimePolicy()
    return RuntimePolicy(
        supervisor=policy.supervisor,
        fallback=FallbackPolicy(ladder=tuple(ladder)),
        chaos=policy.chaos)


@dataclass
class ExecutionContext:
    """Everything a job-kind handler needs, transport-agnostic.

    The same handlers serve the in-process :class:`Worker` (progress
    streamed straight into the job journal, chaos fired locally) and
    the HTTP :class:`~repro.service.remote.RemoteWorker` (progress
    posted over the wire, checkpoints in a local scratch store).  The
    verdict they produce is a pure function of ``spec`` — where the
    worker ran never shows up in the result.
    """

    spec: JobSpec
    store: Any                      # engine CheckpointStore
    worker: str
    attempt: int
    runtime: Optional[RuntimePolicy] = None
    stream: Callable[[Dict[str, Any]], None] = lambda payload: None
    on_batch: Callable[[int], None] = lambda at: None
    meta_base: Dict[str, Any] = field(default_factory=dict)

    def _meta(self, **extra: Any) -> Dict[str, Any]:
        meta = {"cache_hit": False, "worker": self.worker,
                "attempt": self.attempt}
        meta.update(self.meta_base)
        meta.update(extra)
        return meta


def execute_job(ctx: ExecutionContext
                ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Dispatch one job spec to its seeded analysis entry point."""
    handlers = {
        "monte_carlo": _execute_monte_carlo,
        "sequential_monte_carlo": _execute_sequential,
        "stress_certify": _execute_stress,
    }
    try:
        handler = handlers[ctx.spec.kind]
    except KeyError:
        raise ServiceError(
            f"no handler for job kind {ctx.spec.kind!r}"
        ) from None
    return handler(ctx)


def _execute_monte_carlo(ctx: ExecutionContext
                         ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    params = ctx.spec.params_dict
    gadget, initial, evaluator = _build_case(
        params.get("code", "trivial"), params.get("gadget", "n"))
    p = float(params["p"])
    trials = int(params["trials"])
    chunk_size = int(params.get("chunk_size", 64))

    def progress(event) -> None:
        if event.phase != "evaluate":
            return
        ctx.stream({
            "phase": event.phase,
            "chunk": event.chunk_index,
            "chunks_total": event.chunks_total,
            "worker": ctx.worker,
            "attempt": ctx.attempt,
        })
        ctx.on_batch(event.chunk_index)

    result = run_monte_carlo(
        gadget, initial, evaluator, NoiseModel.uniform(p),
        trials=trials, seed=int(params["seed"]),
        chunk_size=chunk_size, workers=1,
        checkpoint=ctx.store, resume=True, progress=progress,
        runtime=resolve_policy(ctx.runtime, params))
    interval = wilson_interval(result.failures, result.trials)
    verdict = {
        "kind": "monte_carlo",
        "p": p,
        "trials": result.trials,
        "failures": result.failures,
        "failure_rate": result.failure_rate,
        "failures_by_fault_count": {
            str(k): v for k, v in
            sorted(result.failures_by_fault_count.items())},
        "fault_count_histogram": {
            str(k): v for k, v in
            sorted(result.fault_count_histogram.items())},
        "interval": interval.to_json_dict(),
    }
    stats = result.engine_stats
    meta = ctx._meta(
        evaluations=stats.evaluations if stats else None,
        engine=stats.to_json_dict() if stats else None)
    return verdict, meta


def _execute_sequential(ctx: ExecutionContext
                        ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    params = ctx.spec.params_dict
    gadget, initial, evaluator = _build_case(
        params.get("code", "trivial"), params.get("gadget", "n"))
    p = float(params["p"])

    def on_batch(batch: int, consumed: int, failures: int,
                 decision: Optional[str]) -> None:
        interval = wilson_interval(failures, consumed) \
            if consumed else None
        ctx.stream({
            "batch": batch,
            "trials": consumed,
            "failures": failures,
            "decision": decision,
            "interval": (interval.to_json_dict()
                         if interval else None),
            "worker": ctx.worker,
            "attempt": ctx.attempt,
        })
        ctx.on_batch(batch)

    outcome = run_sequential_monte_carlo(
        gadget, initial, evaluator, NoiseModel.uniform(p),
        p0=float(params["p0"]), p1=float(params["p1"]),
        alpha=float(params.get("alpha", 0.05)),
        beta=float(params.get("beta", 0.05)),
        max_trials=int(params["max_trials"]),
        seed=int(params["seed"]),
        batch_size=int(params.get("batch_size", 64)),
        method=str(params.get("method", "sprt")),
        checkpoint=ctx.store, resume=True, on_batch=on_batch,
        runtime=resolve_policy(ctx.runtime, params))
    claim = outcome.verdict
    verdict = {
        "kind": "sequential_monte_carlo",
        "decision": claim.decision,
        "partial": claim.decision == "undecided",
        "claim": claim.to_json_dict(),
        "trials": claim.trials,
        "failures": claim.failures,
        "batches": outcome.batches,
    }
    stats = outcome.result.engine_stats
    meta = ctx._meta(
        evaluations=stats.evaluations if stats else None,
        engine=stats.to_json_dict() if stats else None)
    return verdict, meta


def _execute_stress(ctx: ExecutionContext
                    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    params = ctx.spec.params_dict
    code = _resolve_code(params.get("code", "trivial"))
    report = stress_certify(
        code=code,
        p=float(params.get("p", 0.005)),
        trials=int(params.get("trials", 100)),
        seed=int(params.get("seed", 20260806)),
        gadgets=tuple(params.get("gadgets", ("n", "recovery"))),
        include_structural=bool(
            params.get("include_structural", False)),
        checkpoint=ctx.store,
    )
    verdict = {
        "kind": "stress_certify",
        "certified": report.certified,
        "counts": report.counts(),
        "report": json.loads(report.to_json()),
    }
    meta = ctx._meta(evaluations=None, rows=len(report.verdicts))
    return verdict, meta


class _Heartbeat(threading.Thread):
    """Renews the lease on a daemon thread until stopped or stale.

    Stops renewing once the job's hard deadline passes — a hung or
    overlong worker must lose its lease, not keep it alive forever —
    and records staleness so the main thread can stop early instead
    of computing a verdict nobody will accept.
    """

    def __init__(self, queue: JobQueue, lease: Lease,
                 interval: float) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.lease = lease
        self.interval = interval
        self.stop_event = threading.Event()
        self.stale = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            if self.queue.clock() >= self.lease.deadline_at:
                break
            try:
                self.queue.heartbeat(self.lease.fingerprint,
                                     self.lease.token)
            except (StaleLeaseError, ServiceError):
                self.stale.set()
                break

    def stop(self) -> None:
        self.stop_event.set()


class Worker:
    """Executes queue jobs; one instance per worker process/thread."""

    def __init__(self, queue: JobQueue, cache: ResultCache, *,
                 name: str = "worker",
                 heartbeat_interval: Optional[float] = None,
                 runtime: Optional[RuntimePolicy] = None,
                 chaos: Optional[ServiceChaosPlan] = None,
                 store_lock_timeout: float = 10.0) -> None:
        self.queue = queue
        self.cache = cache
        self.name = name
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else max(0.05, queue.lease_ttl / 3.0))
        self.runtime = runtime
        self.chaos = chaos
        self.store_lock_timeout = store_lock_timeout

    # -- chaos -------------------------------------------------------

    def _chaos(self, lease: Lease, hook: str, at: int = 0) -> None:
        if self.chaos is None:
            return
        event = self.chaos.match(lease.submit_index, lease.attempt,
                                 hook, at)
        if event is not None:
            self.chaos.fire(event, self.queue, lease.fingerprint)

    # -- the worker turn ---------------------------------------------

    def run_once(self) -> Optional[str]:
        """Claim and drive one job to a queue transition.

        Returns the fingerprint acted on, or None when no job was
        due.  Never raises for per-job failures — those are recorded
        in the queue (retry or dead-letter); only infrastructure
        damage (a corrupt mid-journal, an unusable queue directory)
        escapes as :class:`~repro.exceptions.RuntimeIntegrityError`.
        """
        lease = self.queue.claim(self.name)
        if lease is None:
            return None
        fingerprint = lease.fingerprint
        try:
            self._chaos(lease, "start")
            cached = self.cache.get_entry(fingerprint)
            if cached is not None:
                self.queue.record_progress(fingerprint, {
                    "cache_hit": True, "worker": self.name,
                    "attempt": lease.attempt,
                })
                self.queue.complete(
                    fingerprint, lease.token, cached["verdict"],
                    meta={"cache_hit": True, "evaluations": 0,
                          "worker": self.name,
                          "attempt": lease.attempt})
                return fingerprint
            verdict, meta = self._execute(lease)
            self.cache.put(fingerprint, verdict, meta=meta)
            self.queue.complete(fingerprint, lease.token, verdict,
                                meta=meta)
            return fingerprint
        except StaleLeaseError:
            # The lease moved on mid-run; the new holder owns the
            # job and our verdict (if any) is discarded unrecorded.
            return fingerprint
        except ReproError as exc:
            self._report_failure(lease, exc)
            return fingerprint
        except Exception as exc:  # noqa: BLE001 - typed into queue
            self._report_failure(lease, exc)
            return fingerprint

    def _report_failure(self, lease: Lease, exc: Exception) -> None:
        try:
            self.queue.fail(lease.fingerprint, lease.token,
                            f"{type(exc).__name__}: {exc}")
        except StaleLeaseError:
            pass

    def run_until_drained(self, poll: float = 0.05,
                          timeout: float = 300.0,
                          reap: bool = True) -> int:
        """Single-process drain loop (tests, CLI --workers=0).

        Claims until every job is terminal; optionally reaps expired
        leases between turns (the pool normally does this).  Returns
        the number of turns that acted on a job.
        """
        turns = 0
        deadline = time.monotonic() + timeout
        while not self.queue.drained:
            if reap:
                self.queue.reap_expired()
            if self.run_once() is not None:
                turns += 1
                continue
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"worker drain timed out after {timeout:g}s "
                    f"with queue counts {self.queue.counts()}"
                )
            time.sleep(poll)
        return turns

    # -- execution dispatch ------------------------------------------

    def _execute(self, lease: Lease
                 ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        heartbeat = _Heartbeat(self.queue, lease,
                               self.heartbeat_interval)
        heartbeat.start()
        store = self.queue.job_store(lease.fingerprint) \
            .substore("engine")
        context = ExecutionContext(
            spec=lease.spec, store=store, worker=self.name,
            attempt=lease.attempt, runtime=self.runtime,
            stream=lambda payload: self._stream(lease, payload),
            on_batch=lambda at: self._chaos(lease, "batch", at=at))
        try:
            with store.exclusive(timeout=self.store_lock_timeout):
                result = execute_job(context)
        finally:
            heartbeat.stop()
        if heartbeat.stale.is_set():
            raise StaleLeaseError(
                f"lease for job {lease.fingerprint[:12]}… went "
                "stale during execution; abandoning the attempt"
            )
        return result

    def _stream(self, lease: Lease, payload: Dict[str, Any]) -> None:
        self.queue.record_progress(lease.fingerprint, payload)


def submit_and_run(queue: JobQueue, cache: ResultCache,
                   specs, **worker_kwargs) -> Dict[str, Any]:
    """Convenience: submit specs, drain in-process, return statuses."""
    for spec in specs:
        queue.submit(spec if isinstance(spec, JobSpec)
                     else JobSpec.from_json_dict(spec))
    worker = Worker(queue, cache, **worker_kwargs)
    worker.run_until_drained()
    return {fp: status.to_json_dict()
            for fp, status in queue.jobs().items()}
