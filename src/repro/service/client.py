"""Fault-tolerant client for the certification server.

:class:`ServiceClient` wraps the :mod:`repro.service.net` HTTP
surface with the full robustness kit, so callers see exactly-once
semantics over an arbitrarily unreliable network:

* **per-request timeouts** — every socket operation is bounded; a
  dropped request or a stalled server turns into a typed retry, not
  a hang;
* **bounded exponential backoff with deterministic jitter** — retry
  schedules reuse :func:`repro.service.queue.backoff_delay`, hashed
  from (request key, attempt), so a soak's retry timing is exactly
  reproducible;
* **automatic reconnect** — every attempt opens a fresh connection;
  a half-closed or reset socket from a previous attempt can never
  poison the next one;
* **response integrity** — bodies are digest-enveloped
  (:func:`repro.service.net.open_envelope`); a response garbled in
  flight fails its digest and is retried, never believed;
* **safe resubmission** — the client computes each spec's SHA-256
  fingerprint locally before submitting and verifies the server
  agreed.  Because submission is content-addressed and idempotent
  server-side, *any* request may be retried blindly after *any*
  fault — timeout, drop, disconnect, garble, duplicate — and the
  job is still enqueued exactly once.  That reduction of
  exactly-once delivery to at-least-once delivery plus
  content-addressed dedup is the client's load-bearing design.

Retryable faults: connection errors, timeouts, torn/garbled
responses, HTTP 5xx.  A 503 carrying ``Retry-After`` is retried *at
the server's requested pace* (the server knows its own lock
contention better than the client's backoff curve does).  Typed
client errors (4xx) are *not* retried — they are deterministic
verdicts about the request itself; 401/403/409 re-raise as their
original exception types
(:class:`~repro.exceptions.AuthenticationError` /
:class:`~repro.exceptions.AuthorizationError` /
:class:`~repro.exceptions.StaleLeaseError`) so remote callers can
react exactly as in-process ones do.

With an :class:`~repro.service.auth.WorkerAuth`, the client also
speaks the authenticated ``/v1/work/*`` fleet surface and the
long-poll :meth:`ServiceClient.watch` generator replaces
poll-loop waiting with cursor-resumable streaming.
"""

from __future__ import annotations

import http.client
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.exceptions import (
    AuthenticationError,
    AuthorizationError,
    ServiceError,
    StaleLeaseError,
)
from repro.service.auth import WorkerAuth
from repro.service.jobs import JobSpec
from repro.service.net import open_envelope
from repro.service.queue import backoff_delay
from repro.service.sweep import SweepSpec

import json

#: Exceptions that mean "the network ate it; retry on a fresh
#: connection".  ``OSError`` covers refused/reset/unreachable;
#: ``http.client.HTTPException`` covers torn status lines and
#: truncated chunked reads.
_RETRYABLE = (OSError, socket.timeout, TimeoutError,
              http.client.HTTPException)

#: Server error_type → the exception class it re-raises as
#: client-side, so remote and in-process callers share one handling
#: path for auth refusals and stale-lease refusals.
_TYPED_ERRORS = {
    "AuthenticationError": AuthenticationError,
    "AuthorizationError": AuthorizationError,
    "StaleLeaseError": StaleLeaseError,
}


@dataclass
class ClientStats:
    """What the robustness machinery actually did, for audits."""

    requests: int = 0
    attempts: int = 0
    retries: int = 0
    network_faults: int = 0
    garbled_responses: int = 0
    server_errors: int = 0
    unavailable_responses: int = 0
    retry_after_honored: int = 0
    deduplicated_submissions: int = 0
    backoff_seconds: float = 0.0
    fault_log: List[str] = field(default_factory=list)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "attempts": self.attempts,
            "retries": self.retries,
            "network_faults": self.network_faults,
            "garbled_responses": self.garbled_responses,
            "server_errors": self.server_errors,
            "unavailable_responses": self.unavailable_responses,
            "retry_after_honored": self.retry_after_honored,
            "deduplicated_submissions":
                self.deduplicated_submissions,
            "backoff_seconds": round(self.backoff_seconds, 6),
        }


class ServiceClient:
    """One server address, arbitrarily many safe requests."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 10.0,
                 max_attempts: int = 6,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_jitter: float = 0.1,
                 backoff_cap: float = 2.0,
                 auth: Optional[WorkerAuth] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if max_attempts < 1:
            raise ServiceError(
                f"client max_attempts must be >= 1, got "
                f"{max_attempts}"
            )
        if backoff_cap <= 0.0:
            raise ServiceError(
                f"backoff_cap must be > 0, got {backoff_cap!r}"
            )
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.backoff_jitter = float(backoff_jitter)
        self.backoff_cap = float(backoff_cap)
        self.auth = auth
        self.sleep = sleep
        self.stats = ClientStats()

    # -- transport ---------------------------------------------------

    def _once(self, method: str, path: str, body: Optional[bytes]
              ) -> "tuple[int, Any, Optional[str]]":
        """One attempt on one fresh connection (reconnect-by-design)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json",
                       "Connection": "close"}
            if self.auth is not None:
                headers.update(self.auth.headers(method, path, body))
            connection.request(method, path, body=body,
                               headers=headers)
            response = connection.getresponse()
            blob = response.read()
            return (response.status, open_envelope(blob),
                    response.getheader("Retry-After"))
        finally:
            connection.close()

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None
                 ) -> "tuple[int, Any]":
        """Retry loop: timeouts, reconnects, backoff, digest checks.

        Every request through here is idempotent end to end (reads
        trivially; submits/cancels by content-addressing; fleet
        mutations by lease token), so a retry after an *ambiguous*
        failure — the request may or may not have been processed —
        is always safe.

        Backoff is capped at ``backoff_cap`` so a long retry chain
        stays bounded instead of growing exponentially forever, and
        a 503's ``Retry-After`` hint overrides the computed delay
        (still under the cap): the server is asking for a specific
        pace and gets it.
        """
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        self.stats.requests += 1
        request_key = f"{method} {path}"
        faults: List[str] = []
        for attempt in range(1, self.max_attempts + 1):
            self.stats.attempts += 1
            retry_hint: Optional[float] = None
            try:
                status, answer, retry_after = \
                    self._once(method, path, body)
            except _RETRYABLE as exc:
                self.stats.network_faults += 1
                faults.append(f"attempt {attempt}: "
                              f"{type(exc).__name__}: {exc}")
            except ServiceError as exc:
                # Envelope digest failure: the bytes arrived but
                # cannot be trusted; same retry path as a drop.
                self.stats.garbled_responses += 1
                faults.append(f"attempt {attempt}: {exc}")
            else:
                if status == 503:
                    self.stats.unavailable_responses += 1
                    faults.append(f"attempt {attempt}: HTTP 503: "
                                  f"{answer!r}")
                    try:
                        retry_hint = float(retry_after) \
                            if retry_after else None
                    except ValueError:
                        retry_hint = None
                elif status >= 500:
                    self.stats.server_errors += 1
                    faults.append(f"attempt {attempt}: HTTP "
                                  f"{status}: {answer!r}")
                else:
                    return status, answer
            if attempt == self.max_attempts:
                break
            self.stats.retries += 1
            delay = backoff_delay(
                request_key, attempt, self.backoff_base,
                self.backoff_factor, self.backoff_jitter)
            if retry_hint is not None:
                self.stats.retry_after_honored += 1
                delay = retry_hint
            delay = min(delay, self.backoff_cap)
            self.stats.backoff_seconds += delay
            self.sleep(delay)
        self.stats.fault_log.extend(faults)
        raise ServiceError(
            f"request {request_key!r} failed after "
            f"{self.max_attempts} attempts: {'; '.join(faults)}"
        )

    @staticmethod
    def _expect(status: int, answer: Any,
                ok=(200,)) -> Dict[str, Any]:
        if status not in ok:
            if isinstance(answer, dict):
                # Re-raise the server's typed refusal as its
                # original exception class (401 → Authentication,
                # 403 → Authorization, 409 → StaleLease) so remote
                # callers handle it exactly as in-process ones.
                error_class = _TYPED_ERRORS.get(
                    str(answer.get("error_type", "")))
                if error_class is not None:
                    raise error_class(str(answer.get("error", "")))
            error = answer.get("error", answer) \
                if isinstance(answer, dict) else answer
            raise ServiceError(
                f"server refused the request (HTTP {status}): "
                f"{error}"
            )
        if not isinstance(answer, dict):
            raise ServiceError(
                f"expected a JSON object payload, got "
                f"{type(answer).__name__}"
            )
        return answer

    # -- jobs --------------------------------------------------------

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Submit one job; exactly-once however flaky the network.

        The server must echo the locally-computed fingerprint — a
        mismatch means client and server disagree on the canonical
        spec encoding, which would silently break dedup, so it is a
        typed error, not a warning.
        """
        expected = spec.fingerprint
        status, answer = self._request(
            "POST", "/v1/jobs", spec.to_json_dict())
        receipt = self._expect(status, answer)
        if receipt.get("fingerprint") != expected:
            raise ServiceError(
                f"server fingerprinted the spec as "
                f"{str(receipt.get('fingerprint'))[:12]}…, client "
                f"computed {expected[:12]}…; canonicalisation "
                "disagreement breaks idempotent submission"
            )
        if receipt.get("deduplicated"):
            self.stats.deduplicated_submissions += 1
        return receipt

    def status(self, fingerprint: str) -> Dict[str, Any]:
        status, answer = self._request(
            "GET", f"/v1/jobs/{fingerprint}")
        return self._expect(status, answer)

    def result(self, fingerprint: str
               ) -> Optional[Dict[str, Any]]:
        """Terminal verdict payload, or None while the job is live."""
        status, answer = self._request(
            "GET", f"/v1/jobs/{fingerprint}/result")
        if status == 409:
            return None
        return self._expect(status, answer)

    def wait_result(self, fingerprint: str, *,
                    timeout: float = 120.0,
                    poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job is terminal; typed error at timeout."""
        deadline = time.monotonic() + timeout
        while True:
            answer = self.result(fingerprint)
            if answer is not None:
                return answer
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {fingerprint[:12]}… still live after "
                    f"{timeout:g}s"
                )
            self.sleep(poll)

    def progress(self, fingerprint: str) -> List[Dict[str, Any]]:
        status, answer = self._request(
            "GET", f"/v1/jobs/{fingerprint}/progress")
        return list(self._expect(status, answer).get("events", []))

    def watch(self, fingerprint: str, *,
              timeout: float = 120.0,
              wait: float = 5.0,
              cursor: int = 0) -> Iterator[Dict[str, Any]]:
        """Stream progress events by long-poll until terminal.

        Replaces poll-loop waiting: each ``/v1/watch`` request holds
        the connection server-side until events past ``cursor``
        arrive, the job goes terminal, or ``wait`` elapses (an empty
        page, not an error).  The cursor indexes the job's journaled
        progress records, so a watch torn by a disconnect — or a
        server restart — resumes exactly where it left off; pass a
        starting ``cursor`` to resume an earlier watch.  Yields each
        event exactly once, in order; raises
        :class:`~repro.exceptions.ServiceError` if the job is still
        live at ``timeout``.
        """
        deadline = time.monotonic() + timeout
        position = max(0, int(cursor))
        while True:
            status, answer = self._request(
                "GET", f"/v1/watch/{fingerprint}"
                       f"?cursor={position}&wait={wait:g}")
            page = self._expect(status, answer)
            for event in page.get("events", []):
                yield event
            position = int(page.get("cursor", position))
            if page.get("terminal"):
                return
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"watch of job {fingerprint[:12]}… timed out "
                    f"after {timeout:g}s with the job still "
                    f"{page.get('state', 'unknown')}"
                )

    def cancel(self, fingerprint: str) -> Dict[str, Any]:
        status, answer = self._request(
            "POST", f"/v1/jobs/{fingerprint}/cancel")
        return self._expect(status, answer)

    # -- worker fleet ------------------------------------------------

    def work_claim(self) -> Dict[str, Any]:
        """Claim one job over the wire (requires ``auth``).

        Returns the server's ``{"lease": {...} | None, "drained":
        bool}`` payload; a present lease carries the spec, the lease
        token, expiry/deadline, and — on a cache hit — the cached
        verdict to complete with immediately.
        """
        status, answer = self._request("POST", "/v1/work/claim", {})
        return self._expect(status, answer)

    def work_heartbeat(self, fingerprint: str,
                       token: str) -> float:
        """Renew the lease; returns the new expiry.

        Raises :class:`~repro.exceptions.StaleLeaseError` when the
        lease was re-issued or the deadline passed — the remote
        holder must abandon the attempt, exactly as in-process.
        """
        status, answer = self._request(
            "POST", "/v1/work/heartbeat",
            {"fingerprint": fingerprint, "token": token})
        return float(self._expect(status, answer)["expires_at"])

    def work_progress(self, fingerprint: str, token: str,
                      event: Dict[str, Any]) -> None:
        """Append one progress event (token-checked server-side)."""
        status, answer = self._request(
            "POST", "/v1/work/progress",
            {"fingerprint": fingerprint, "token": token,
             "event": dict(event)})
        self._expect(status, answer)

    def work_complete(self, fingerprint: str, token: str,
                      verdict: Dict[str, Any],
                      meta: Optional[Dict[str, Any]] = None
                      ) -> Dict[str, Any]:
        """Record the verdict; idempotent under blind resubmission.

        The content-addressed verdict plus the lease token make a
        retried complete safe: the server absorbs an exact duplicate
        (``{"duplicate": true}``) rather than journaling it twice,
        and refuses a late complete under a superseded token with
        :class:`~repro.exceptions.StaleLeaseError`.
        """
        status, answer = self._request(
            "POST", "/v1/work/complete",
            {"fingerprint": fingerprint, "token": token,
             "verdict": dict(verdict), "meta": dict(meta or {})})
        return self._expect(status, answer)

    def work_fail(self, fingerprint: str, token: str,
                  error: str) -> Dict[str, Any]:
        """Record a failed attempt (backoff-retry or dead-letter)."""
        status, answer = self._request(
            "POST", "/v1/work/fail",
            {"fingerprint": fingerprint, "token": token,
             "error": str(error)})
        return self._expect(status, answer)

    # -- sweeps ------------------------------------------------------

    def submit_sweep(self, sweep: SweepSpec) -> Dict[str, Any]:
        """Submit a decomposed sweep (idempotent, like jobs)."""
        expected = sweep.fingerprint
        status, answer = self._request(
            "POST", "/v1/sweeps", sweep.to_json_dict())
        receipt = self._expect(status, answer)
        if receipt.get("sweep") != expected:
            raise ServiceError(
                f"server fingerprinted the sweep as "
                f"{str(receipt.get('sweep'))[:12]}…, client "
                f"computed {expected[:12]}…"
            )
        if receipt.get("deduplicated"):
            self.stats.deduplicated_submissions += \
                int(receipt["deduplicated"])
        return receipt

    def sweep_table(self, sweep_fingerprint: str
                    ) -> Dict[str, Any]:
        """The sweep's merged verdict table as journaled so far."""
        status, answer = self._request(
            "GET", f"/v1/sweeps/{sweep_fingerprint}")
        return self._expect(status, answer)

    def wait_sweep(self, sweep_fingerprint: str, *,
                   timeout: float = 300.0,
                   poll: float = 0.2) -> Dict[str, Any]:
        """Poll the merge until every cell is journaled terminal."""
        deadline = time.monotonic() + timeout
        while True:
            table = self.sweep_table(sweep_fingerprint)
            if table.get("complete"):
                return table
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"sweep {sweep_fingerprint[:12]}… incomplete "
                    f"after {timeout:g}s: {table.get('counts')}"
                )
            self.sleep(poll)

    # -- service-wide ------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, answer = self._request("GET", "/v1/health")
        return self._expect(status, answer)

    def service_stats(self) -> Dict[str, Any]:
        status, answer = self._request("GET", "/v1/stats")
        return self._expect(status, answer)


def wait_terminal(client: ServiceClient, fingerprints,
                  timeout: float = 300.0,
                  poll: float = 0.1) -> Dict[str, Dict[str, Any]]:
    """Wait for many jobs; returns fingerprint → result payload."""
    results = {}
    deadline = time.monotonic() + timeout
    for fingerprint in fingerprints:
        remaining = max(0.1, deadline - time.monotonic())
        results[fingerprint] = client.wait_result(
            fingerprint, timeout=remaining, poll=poll)
    return results


__all__ = [
    "ClientStats",
    "ServiceClient",
    "wait_terminal",
]
