"""Deterministic fault injection for the service layer.

:class:`~repro.runtime.chaos.ChaosPlan` injects faults by engine
chunk/attempt coordinates; :class:`ServiceChaosPlan` lifts the same
idea to the job level.  Events are keyed by *(submit_index, attempt,
hook)* — which job, which retry round, and where in the worker's
lifecycle ("start": right after the claim, before any execution;
"batch": after streaming batch ``at``) — so a chaos soak is exactly
reproducible: the same plan against the same queue injects the same
kills at the same points every run.

Kinds:

* ``kill_worker`` — ``os._exit(137)``: SIGKILL semantics, no cleanup,
  no Python finalisers.  The lease must expire and the re-claimed run
  must resume from the per-job checkpoint bit-identically.
* ``hang_worker`` — sleep ``seconds`` in place while *holding* the
  lease.  The heartbeat stops renewing at the deadline, the lease
  expires under a live-but-stuck holder, and the holder's eventual
  write must be refused with ``StaleLeaseError``.
* ``expire_lease`` — force-expire the lease out from under a healthy
  worker (queue-side), certifying the exactly-once completion path
  without needing a genuinely slow worker.
* ``fail_worker`` — raise a typed error from the worker, driving the
  retry/backoff and dead-letter machinery.

Driver-side corruptions (journal truncation, cache garbling) are not
events on this plan — they happen *between* worker turns — and live
next to the structures they damage:
:func:`repro.service.queue.truncate_queue_journal` and
:func:`repro.service.cache.garble_cache_entry`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.exceptions import ServiceError

KILL_WORKER = "kill_worker"
HANG_WORKER = "hang_worker"
EXPIRE_LEASE = "expire_lease"
FAIL_WORKER = "fail_worker"

_KINDS = (KILL_WORKER, HANG_WORKER, EXPIRE_LEASE, FAIL_WORKER)
_HOOKS = ("start", "batch")


@dataclass(frozen=True)
class ServiceChaosEvent:
    """One injected fault, addressed by job × attempt × hook."""

    submit_index: int
    attempt: int
    kind: str
    hook: str = "start"
    at: int = 0          # batch index, for hook == "batch"
    seconds: float = 0.0  # hang duration, for kind == "hang_worker"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServiceError(
                f"unknown chaos kind {self.kind!r}; pick from "
                f"{_KINDS}"
            )
        if self.hook not in _HOOKS:
            raise ServiceError(
                f"unknown chaos hook {self.hook!r}; pick from "
                f"{_HOOKS}"
            )


@dataclass
class ServiceChaosPlan:
    """The full injection schedule for one soak run."""

    events: List[ServiceChaosEvent] = field(default_factory=list)
    _fired: Set[Tuple[int, int, str, int]] = field(
        default_factory=set, repr=False)

    def add(self, event: ServiceChaosEvent) -> "ServiceChaosPlan":
        self.events.append(event)
        return self

    def kill(self, submit_index: int, attempt: int = 1,
             hook: str = "start", at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          KILL_WORKER, hook, at))

    def hang(self, submit_index: int, seconds: float,
             attempt: int = 1, hook: str = "start",
             at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          HANG_WORKER, hook, at,
                                          seconds))

    def expire(self, submit_index: int, attempt: int = 1,
               hook: str = "start", at: int = 0
               ) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          EXPIRE_LEASE, hook, at))

    def fail(self, submit_index: int, attempt: int = 1,
             hook: str = "start", at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          FAIL_WORKER, hook, at))

    def match(self, submit_index: int, attempt: int, hook: str,
              at: int = 0) -> Optional[ServiceChaosEvent]:
        for event in self.events:
            key = (event.submit_index, event.attempt, event.hook,
                   event.at)
            if key in self._fired:
                continue
            if (event.submit_index == submit_index
                    and event.attempt == attempt
                    and event.hook == hook
                    and (hook != "batch" or event.at == at)):
                self._fired.add(key)
                return event
        return None

    def fire(self, event: ServiceChaosEvent, queue,
             fingerprint: str) -> None:
        """Execute one matched event in the worker's context."""
        if event.kind == KILL_WORKER:
            os._exit(137)
        elif event.kind == HANG_WORKER:
            time.sleep(event.seconds)
        elif event.kind == EXPIRE_LEASE:
            queue.expire_lease(fingerprint)
        elif event.kind == FAIL_WORKER:
            raise ServiceError(
                f"chaos: injected worker failure on job "
                f"{fingerprint[:12]}… (attempt {event.attempt})"
            )
