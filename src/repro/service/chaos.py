"""Deterministic fault injection for the service layer.

:class:`~repro.runtime.chaos.ChaosPlan` injects faults by engine
chunk/attempt coordinates; :class:`ServiceChaosPlan` lifts the same
idea to the job level.  Events are keyed by *(submit_index, attempt,
hook)* — which job, which retry round, and where in the worker's
lifecycle ("start": right after the claim, before any execution;
"batch": after streaming batch ``at``) — so a chaos soak is exactly
reproducible: the same plan against the same queue injects the same
kills at the same points every run.

Kinds:

* ``kill_worker`` — ``os._exit(137)``: SIGKILL semantics, no cleanup,
  no Python finalisers.  The lease must expire and the re-claimed run
  must resume from the per-job checkpoint bit-identically.
* ``hang_worker`` — sleep ``seconds`` in place while *holding* the
  lease.  The heartbeat stops renewing at the deadline, the lease
  expires under a live-but-stuck holder, and the holder's eventual
  write must be refused with ``StaleLeaseError``.
* ``expire_lease`` — force-expire the lease out from under a healthy
  worker (queue-side), certifying the exactly-once completion path
  without needing a genuinely slow worker.
* ``fail_worker`` — raise a typed error from the worker, driving the
  retry/backoff and dead-letter machinery.

Driver-side corruptions (journal truncation, cache garbling) are not
events on this plan — they happen *between* worker turns — and live
next to the structures they damage:
:func:`repro.service.queue.truncate_queue_journal` and
:func:`repro.service.cache.garble_cache_entry`.

:class:`NetChaosPlan` extends the same discipline to the *network*
layer (:mod:`repro.service.net`): faults are keyed by exact request
coordinates — *(op, index)*, the ``index``-th request of logical
operation ``op`` the server sees — so a network soak is exactly as
reproducible as a worker soak.  Kinds:

* ``drop_request`` — the server reads the request and closes the
  connection without a single response byte (a lost datagram /
  mid-network partition).  The client must time out and retry.
* ``delay_response`` — hold the response for ``seconds`` (congestion);
  certifies client timeout/backoff behaviour.
* ``duplicate_request`` — the server processes the request **twice**
  (an at-least-once delivery duplicate).  Content-addressed
  submission must deduplicate: no second enqueue, no extra simulator
  evaluation.
* ``disconnect`` — send roughly half the response bytes, then reset
  (a connection torn mid-flight).  The client must discard the
  partial read and retry on a fresh connection.
* ``garble_response`` — flip a byte inside the response body.  The
  digest envelope must catch it client-side; a garbled verdict is
  retried, never believed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.exceptions import ServiceError

KILL_WORKER = "kill_worker"
HANG_WORKER = "hang_worker"
EXPIRE_LEASE = "expire_lease"
FAIL_WORKER = "fail_worker"

_KINDS = (KILL_WORKER, HANG_WORKER, EXPIRE_LEASE, FAIL_WORKER)
_HOOKS = ("start", "batch")


@dataclass(frozen=True)
class ServiceChaosEvent:
    """One injected fault, addressed by job × attempt × hook."""

    submit_index: int
    attempt: int
    kind: str
    hook: str = "start"
    at: int = 0          # batch index, for hook == "batch"
    seconds: float = 0.0  # hang duration, for kind == "hang_worker"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServiceError(
                f"unknown chaos kind {self.kind!r}; pick from "
                f"{_KINDS}"
            )
        if self.hook not in _HOOKS:
            raise ServiceError(
                f"unknown chaos hook {self.hook!r}; pick from "
                f"{_HOOKS}"
            )


@dataclass
class ServiceChaosPlan:
    """The full injection schedule for one soak run."""

    events: List[ServiceChaosEvent] = field(default_factory=list)
    _fired: Set[Tuple[int, int, str, int]] = field(
        default_factory=set, repr=False)

    def add(self, event: ServiceChaosEvent) -> "ServiceChaosPlan":
        self.events.append(event)
        return self

    def kill(self, submit_index: int, attempt: int = 1,
             hook: str = "start", at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          KILL_WORKER, hook, at))

    def hang(self, submit_index: int, seconds: float,
             attempt: int = 1, hook: str = "start",
             at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          HANG_WORKER, hook, at,
                                          seconds))

    def expire(self, submit_index: int, attempt: int = 1,
               hook: str = "start", at: int = 0
               ) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          EXPIRE_LEASE, hook, at))

    def fail(self, submit_index: int, attempt: int = 1,
             hook: str = "start", at: int = 0) -> "ServiceChaosPlan":
        return self.add(ServiceChaosEvent(submit_index, attempt,
                                          FAIL_WORKER, hook, at))

    def match(self, submit_index: int, attempt: int, hook: str,
              at: int = 0) -> Optional[ServiceChaosEvent]:
        for event in self.events:
            key = (event.submit_index, event.attempt, event.hook,
                   event.at)
            if key in self._fired:
                continue
            if (event.submit_index == submit_index
                    and event.attempt == attempt
                    and event.hook == hook
                    and (hook != "batch" or event.at == at)):
                self._fired.add(key)
                return event
        return None

    def fire(self, event: ServiceChaosEvent, queue,
             fingerprint: str) -> None:
        """Execute one matched event in the worker's context."""
        if event.kind == KILL_WORKER:
            os._exit(137)
        elif event.kind == HANG_WORKER:
            time.sleep(event.seconds)
        elif event.kind == EXPIRE_LEASE:
            queue.expire_lease(fingerprint)
        elif event.kind == FAIL_WORKER:
            raise ServiceError(
                f"chaos: injected worker failure on job "
                f"{fingerprint[:12]}… (attempt {event.attempt})"
            )


# ---------------------------------------------------------------------------
# Network chaos (repro.service.net)
# ---------------------------------------------------------------------------

DROP_REQUEST = "drop_request"
DELAY_RESPONSE = "delay_response"
DUPLICATE_REQUEST = "duplicate_request"
DISCONNECT = "disconnect"
GARBLE_RESPONSE = "garble_response"

#: Fleet-coordinate kinds (see :class:`WorkerChaosEvent`): faults
#: addressed by *which worker* sent the request rather than by the
#: server's global request count, so a multi-worker soak can partition
#: one specific worker while its peers keep draining.
PARTITION_WORKER = "partition_worker"
DELAY_HEARTBEAT = "delay_heartbeat"

_NET_KINDS = (DROP_REQUEST, DELAY_RESPONSE, DUPLICATE_REQUEST,
              DISCONNECT, GARBLE_RESPONSE)
_WORKER_KINDS = (PARTITION_WORKER, DELAY_HEARTBEAT)

#: Logical operations the server counts requests by (see
#: :meth:`repro.service.net.CertificationServer`).  The ``work_*``
#: ops are the authenticated worker-fleet surface; ``watch`` is the
#: long-poll progress stream.
NET_OPS = ("submit", "status", "result", "progress", "cancel",
           "sweep_submit", "sweep_status", "stats", "health",
           "watch", "work_claim", "work_heartbeat", "work_progress",
           "work_complete", "work_fail")


@dataclass(frozen=True)
class NetChaosEvent:
    """One injected network fault, addressed by op × request index."""

    op: str
    index: int
    kind: str
    seconds: float = 0.0  # delay duration, for kind == delay_response

    def __post_init__(self) -> None:
        if self.kind not in _NET_KINDS:
            raise ServiceError(
                f"unknown network chaos kind {self.kind!r}; pick "
                f"from {_NET_KINDS}"
            )
        if self.op not in NET_OPS:
            raise ServiceError(
                f"unknown network op {self.op!r}; pick from "
                f"{NET_OPS}"
            )
        if self.index < 0:
            raise ServiceError(
                f"request index must be >= 0, got {self.index}"
            )


@dataclass(frozen=True)
class WorkerChaosEvent:
    """One fleet fault, addressed by worker × request index.

    ``worker`` names the authenticated remote worker the fault
    targets; ``index`` is which of that worker's requests it fires on
    (per-op when ``op`` names a work op, across *all* of the worker's
    requests when ``op`` is ``"*"``).  Kinds:

    * ``partition_worker`` — the server drops ``count`` consecutive
      requests from the worker starting at ``index``, without one
      response byte: a network partition as seen from the worker.
      Claims/heartbeats/completes sent into the partition vanish; the
      worker's lease expires server-side, is re-issued, and its
      post-partition writes must be refused as stale.
    * ``delay_heartbeat`` — the server sleeps ``seconds`` *before*
      processing the request, so the heartbeat lands late by the
      server's clock: the zombie-worker coordinate.  With a grace
      (``clock_skew_grace``) smaller than ``seconds`` the lease is
      forfeited mid-flight; with a grace larger, it survives.
    """

    worker: str
    index: int
    kind: str
    op: str = "*"
    seconds: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _WORKER_KINDS:
            raise ServiceError(
                f"unknown worker chaos kind {self.kind!r}; pick "
                f"from {_WORKER_KINDS}"
            )
        if self.op != "*" and self.op not in NET_OPS:
            raise ServiceError(
                f"unknown worker chaos op {self.op!r}; pick from "
                f"('*',) + {NET_OPS}"
            )
        if self.index < 0:
            raise ServiceError(
                f"request index must be >= 0, got {self.index}"
            )
        if self.count < 1:
            raise ServiceError(
                f"partition span must cover >= 1 request, got "
                f"{self.count}"
            )


@dataclass
class NetChaosPlan:
    """The injection schedule for one networked soak run.

    The server tallies requests per logical op and consults
    :meth:`match` with the current *(op, count)* coordinate; each
    event fires exactly once, so the same plan against the same
    request sequence injects the same faults every run.  Fleet
    faults (:class:`WorkerChaosEvent`) are tallied per authenticated
    worker instead and consulted via :meth:`match_worker`.
    """

    events: List[NetChaosEvent] = field(default_factory=list)
    worker_events: List[WorkerChaosEvent] = field(
        default_factory=list)
    _fired: Set[Tuple[str, int, str]] = field(
        default_factory=set, repr=False)
    _worker_fired: Set[Tuple[str, str, int, str]] = field(
        default_factory=set, repr=False)

    def add(self, event: NetChaosEvent) -> "NetChaosPlan":
        self.events.append(event)
        return self

    def drop(self, op: str, index: int) -> "NetChaosPlan":
        return self.add(NetChaosEvent(op, index, DROP_REQUEST))

    def delay(self, op: str, index: int,
              seconds: float) -> "NetChaosPlan":
        return self.add(NetChaosEvent(op, index, DELAY_RESPONSE,
                                      seconds))

    def duplicate(self, op: str, index: int) -> "NetChaosPlan":
        return self.add(NetChaosEvent(op, index, DUPLICATE_REQUEST))

    def disconnect(self, op: str, index: int) -> "NetChaosPlan":
        return self.add(NetChaosEvent(op, index, DISCONNECT))

    def garble(self, op: str, index: int) -> "NetChaosPlan":
        return self.add(NetChaosEvent(op, index, GARBLE_RESPONSE))

    # -- fleet coordinates -------------------------------------------

    def add_worker(self, event: WorkerChaosEvent) -> "NetChaosPlan":
        self.worker_events.append(event)
        return self

    def partition(self, worker: str, index: int,
                  count: int = 1) -> "NetChaosPlan":
        """Drop ``count`` consecutive requests from ``worker``."""
        return self.add_worker(WorkerChaosEvent(
            worker, index, PARTITION_WORKER, count=count))

    def delay_heartbeat(self, worker: str, index: int,
                        seconds: float) -> "NetChaosPlan":
        """Hold ``worker``'s ``index``-th heartbeat for ``seconds``."""
        return self.add_worker(WorkerChaosEvent(
            worker, index, DELAY_HEARTBEAT, op="work_heartbeat",
            seconds=seconds))

    def duplicate_complete(self, index: int) -> "NetChaosPlan":
        """Process the ``index``-th ``/v1/work/complete`` twice.

        The at-least-once duplicate of the *terminal* write: the
        second processing must be absorbed by the queue's idempotent
        complete (same lease token, same content-addressed verdict),
        never journaled twice.
        """
        return self.duplicate("work_complete", index)

    def match(self, op: str, index: int
              ) -> List[NetChaosEvent]:
        """Every not-yet-fired event at this request coordinate.

        Returns a list so one coordinate can compose faults (e.g.
        duplicate *and* delay); each event is consumed exactly once.
        """
        matched = []
        for event in self.events:
            key = (event.op, event.index, event.kind)
            if key in self._fired:
                continue
            if event.op == op and event.index == index:
                self._fired.add(key)
                matched.append(event)
        return matched

    def match_worker(self, worker: str, op: str, op_index: int,
                     total_index: int) -> List[WorkerChaosEvent]:
        """Every fleet event covering this worker-request coordinate.

        ``op_index`` counts the worker's requests of this op;
        ``total_index`` counts all of the worker's authenticated
        requests.  A ``partition_worker`` span matches ``count``
        consecutive coordinates but tallies as *one* fired fault.
        """
        matched = []
        for event in self.worker_events:
            if event.worker != worker:
                continue
            index = total_index if event.op == "*" else op_index
            if event.op not in ("*", op):
                continue
            if event.index <= index < event.index + event.count:
                self._worker_fired.add(
                    (event.worker, event.op, event.index, event.kind))
                matched.append(event)
        return matched

    @property
    def fired(self) -> int:
        """How many injected faults have actually fired so far."""
        return len(self._fired) + len(self._worker_fired)
