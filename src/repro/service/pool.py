"""Multi-process worker pool and the service facade.

The :class:`WorkerPool` forks ``config.workers`` child processes,
each running the :class:`~repro.service.worker.Worker` claim loop
against the shared on-disk queue, and supervises them from the
parent:

* **reap** — expired leases (dead or silent holders) are returned to
  ``pending`` every scheduling tick;
* **kill** — a child whose lease has passed its hard *deadline* is
  SIGKILLed (it is hung: a healthy worker would have finished or
  stopped heartbeating on its own), which also releases any advisory
  store locks it held;
* **respawn** — children that exit (chaos kills, deadline kills,
  crashes) are replaced while undrained work remains, up to the
  configured pool size.

Coordination is entirely through the filesystem — journal, lease
files, advisory locks — so the pool tolerates losing *any* process,
including the parent: a fresh pool pointed at the same root resumes
exactly where the dead one stopped.

:class:`CertificationService` bundles queue + cache + pool behind
the small facade the CLI and the tests use.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ServiceError
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.policy import RuntimePolicy
from repro.service.cache import ResultCache
from repro.service.chaos import ServiceChaosPlan
from repro.service.jobs import JobSpec, JobStatus
from repro.service.queue import JobQueue
from repro.service.worker import Worker


@dataclass
class ServiceStats:
    """One service-wide observability snapshot.

    Folds together what previously had to be dug out of three
    journals by hand: current job states, lifetime queue events
    (including how many leases ``reap_expired`` ever reclaimed and
    how many jobs were dead-lettered), live leases, and the verdict
    cache's size/quarantine/eviction accounting.  Shaped after
    :meth:`repro.analysis.engine.EngineStats.to_json_dict` so reports
    and the ``/v1/stats`` endpoint serialise it directly.
    """

    jobs: Dict[str, int] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    live_leases: int = 0
    deadletters: int = 0
    deadletter_reasons: List[str] = field(default_factory=list)
    cache_entries: int = 0
    cache_quarantined: int = 0
    cache_evictions: Dict[str, int] = field(default_factory=dict)

    @property
    def reaped_leases(self) -> int:
        """Lifetime ``expire`` events (reaps + forced expiries)."""
        return self.events.get("expire", 0)

    @property
    def dead_lettered(self) -> int:
        """Lifetime ``dead`` events (dead-letter quarantines)."""
        return self.events.get("dead", 0)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "jobs": dict(sorted(self.jobs.items())),
            "events": dict(sorted(self.events.items())),
            "reaped_leases": self.reaped_leases,
            "dead_lettered": self.dead_lettered,
            "live_leases": self.live_leases,
            "deadletters": self.deadletters,
            "deadletter_reasons": list(self.deadletter_reasons),
            "cache_entries": self.cache_entries,
            "cache_quarantined": self.cache_quarantined,
            "cache_evictions": dict(sorted(
                self.cache_evictions.items())),
        }

    def summary_lines(self) -> List[str]:
        """Human-readable block, EngineStats-style."""
        jobs = ", ".join(f"{state}={count}" for state, count in
                         sorted(self.jobs.items())) or "none"
        evictions = ", ".join(
            f"{reason}={count}" for reason, count in
            sorted(self.cache_evictions.items())) or "none"
        reasons = "; ".join(self.deadletter_reasons) or "none"
        return [
            f"service: jobs [{jobs}], {self.live_leases} live "
            f"leases, {self.deadletters} dead-lettered",
            f"  lifetime: {self.events.get('submit', 0)} submits, "
            f"{self.events.get('claim', 0)} claims, "
            f"{self.events.get('complete', 0)} completions, "
            f"{self.events.get('fail', 0)} failed attempts, "
            f"{self.reaped_leases} leases reaped, "
            f"{self.events.get('cancel', 0)} cancelled",
            f"  cache: {self.cache_entries} entries, "
            f"{self.cache_quarantined} quarantined, "
            f"evictions [{evictions}]",
            f"  dead-letter reasons: [{reasons}]",
        ]


@dataclass
class ServiceConfig:
    """Every scheduling knob in one place.

    Defaults suit interactive runs; tests shrink the timing knobs to
    tens of milliseconds so chaos scenarios resolve in seconds.
    """

    workers: int = 2
    lease_ttl: float = 30.0
    heartbeat_interval: Optional[float] = None
    job_deadline: float = 3600.0
    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    poll_interval: float = 0.05
    store_lock_timeout: float = 10.0
    # Expiry padding for remote fleets: a heartbeat landing
    # marginally late by the server's clock (skew + transit) must
    # not forfeit a live lease.  The hard deadline is never padded.
    clock_skew_grace: float = 0.0
    # Verdict-cache eviction policy (None = unbounded, the historic
    # behaviour): an LRU entry bound and/or a TTL in seconds.
    cache_max_entries: Optional[int] = None
    cache_max_age: Optional[float] = None


def _worker_main(root: str, config: ServiceConfig, name: str,
                 chaos: Optional[ServiceChaosPlan],
                 runtime: Optional[RuntimePolicy]) -> None:
    """Child-process entry: claim until the queue drains."""
    service = CertificationService(root, config=config, chaos=chaos,
                                   runtime=runtime)
    worker = service.worker(name)
    while True:
        acted = worker.run_once()
        if acted is not None:
            continue
        if service.queue.drained:
            return
        time.sleep(config.poll_interval)


class WorkerPool:
    """Forks and supervises the worker processes."""

    def __init__(self, root: str, config: ServiceConfig,
                 chaos: Optional[ServiceChaosPlan] = None,
                 runtime: Optional[RuntimePolicy] = None) -> None:
        if config.workers < 1:
            raise ServiceError(
                f"pool needs >= 1 worker, got {config.workers}"
            )
        self.root = os.fspath(root)
        self.config = config
        self.chaos = chaos
        self.runtime = runtime
        self._context = multiprocessing.get_context("fork")
        self._children: List[multiprocessing.Process] = []
        self._spawned = 0

    def _spawn(self) -> None:
        self._spawned += 1
        name = f"worker-{self._spawned}"
        child = self._context.Process(
            target=_worker_main,
            args=(self.root, self.config, name, self.chaos,
                  self.runtime),
            name=name, daemon=True)
        child.start()
        self._children.append(child)

    def _kill_overdeadline(self, queue: JobQueue) -> int:
        """SIGKILL children hung past their job's hard deadline."""
        now = queue.clock()
        hung_workers = {
            lease.get("worker") for lease in queue.leases()
            if now > float(lease.get("deadline_at", now + 1.0))
        }
        killed = 0
        for child in self._children:
            if child.name in hung_workers and child.is_alive():
                os.kill(child.pid, signal.SIGKILL)
                child.join(timeout=5.0)
                killed += 1
        return killed

    def run_until_drained(self, queue: JobQueue,
                          timeout: float = 600.0) -> Dict[str, int]:
        """Supervise until every job is terminal; returns counts.

        Raises :class:`ServiceError` at timeout with the queue's
        counts in the message, after stopping all children.
        """
        deadline = time.monotonic() + timeout
        incidents = {"respawns": 0, "deadline_kills": 0,
                     "reaped_leases": 0}
        try:
            while not queue.drained:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"pool timed out after {timeout:g}s with "
                        f"queue counts {queue.counts()}"
                    )
                incidents["deadline_kills"] += \
                    self._kill_overdeadline(queue)
                incidents["reaped_leases"] += \
                    len(queue.reap_expired())
                self._children = [child for child in self._children
                                  if child.is_alive()]
                while len(self._children) < self.config.workers:
                    self._spawn()
                    if self._spawned > self.config.workers:
                        incidents["respawns"] += 1
                time.sleep(self.config.poll_interval)
        finally:
            self.stop()
        return incidents

    def stop(self) -> None:
        for child in self._children:
            if child.is_alive():
                child.terminate()
            child.join(timeout=5.0)
        self._children = []


class CertificationService:
    """Queue + cache + pool behind one handle.

    Layout under ``root``::

        <root>/queue/   the JobQueue (journal, leases, jobs, ...)
        <root>/cache/   the ResultCache shards
        <root>/sweeps/  per-sweep merge journals (repro.service.sweep)

    The handle is cheap and stateless — every process (submitters,
    workers, watchers) opens its own against the same root.
    """

    def __init__(self, root: str,
                 config: Optional[ServiceConfig] = None,
                 chaos: Optional[ServiceChaosPlan] = None,
                 runtime: Optional[RuntimePolicy] = None) -> None:
        self.root = os.fspath(root)
        self.config = config or ServiceConfig()
        self.chaos = chaos
        self.runtime = runtime
        self.queue = JobQueue(
            os.path.join(self.root, "queue"),
            lease_ttl=self.config.lease_ttl,
            job_deadline=self.config.job_deadline,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_factor=self.config.backoff_factor,
            backoff_jitter=self.config.backoff_jitter,
            clock_skew_grace=self.config.clock_skew_grace)
        self.cache = ResultCache(
            os.path.join(self.root, "cache"),
            max_entries=self.config.cache_max_entries,
            max_age=self.config.cache_max_age)
        self.sweeps = CheckpointStore(
            os.path.join(self.root, "sweeps"))

    # -- submission / inspection -------------------------------------

    def submit(self, spec: JobSpec) -> str:
        return self.queue.submit(spec)

    def cancel(self, fingerprint: str,
               reason: str = "cancelled by client") -> JobStatus:
        return self.queue.cancel(fingerprint, reason)

    def status(self, fingerprint: str) -> Optional[JobStatus]:
        return self.queue.status(fingerprint)

    def watch(self, fingerprint: str, **kwargs):
        return self.queue.watch(fingerprint, **kwargs)

    def counts(self) -> Dict[str, int]:
        return self.queue.counts()

    def stats(self) -> ServiceStats:
        """The service-wide :class:`ServiceStats` snapshot."""
        letters = self.queue.deadletters()
        return ServiceStats(
            jobs=self.queue.counts(),
            events=self.queue.event_counts(),
            live_leases=len(self.queue.leases()),
            deadletters=len(letters),
            deadletter_reasons=[
                f"{letter.get('fingerprint', '')[:12]}…: "
                f"{letter.get('error', '')}"
                for letter in letters],
            cache_entries=len(self.cache.entries()),
            cache_quarantined=len(self.cache.quarantined()),
            cache_evictions=self.cache.eviction_counts())

    def sweep_store(self, fingerprint: str) -> CheckpointStore:
        """The per-sweep merge journal (repro.service.sweep)."""
        return self.sweeps.substore(fingerprint)

    # -- execution ---------------------------------------------------

    def worker(self, name: str = "worker") -> Worker:
        return Worker(
            self.queue, self.cache, name=name,
            heartbeat_interval=self.config.heartbeat_interval,
            runtime=self.runtime, chaos=self.chaos,
            store_lock_timeout=self.config.store_lock_timeout)

    def run_until_drained(self, timeout: float = 600.0
                          ) -> Dict[str, Any]:
        """Drain the queue; forked pool or in-process.

        ``config.workers == 0`` runs a single in-process worker (no
        fork — deterministic, debuggable, used by most tests); any
        positive count forks a supervised pool.
        """
        if self.config.workers == 0:
            turns = self.worker().run_until_drained(
                poll=self.config.poll_interval, timeout=timeout)
            return {"mode": "in-process", "turns": turns,
                    "counts": self.counts()}
        pool = WorkerPool(self.root, self.config, chaos=self.chaos,
                          runtime=self.runtime)
        incidents = pool.run_until_drained(self.queue,
                                           timeout=timeout)
        return {"mode": "pool", "counts": self.counts(),
                **incidents}
