"""Multi-process worker pool and the service facade.

The :class:`WorkerPool` forks ``config.workers`` child processes,
each running the :class:`~repro.service.worker.Worker` claim loop
against the shared on-disk queue, and supervises them from the
parent:

* **reap** — expired leases (dead or silent holders) are returned to
  ``pending`` every scheduling tick;
* **kill** — a child whose lease has passed its hard *deadline* is
  SIGKILLed (it is hung: a healthy worker would have finished or
  stopped heartbeating on its own), which also releases any advisory
  store locks it held;
* **respawn** — children that exit (chaos kills, deadline kills,
  crashes) are replaced while undrained work remains, up to the
  configured pool size.

Coordination is entirely through the filesystem — journal, lease
files, advisory locks — so the pool tolerates losing *any* process,
including the parent: a fresh pool pointed at the same root resumes
exactly where the dead one stopped.

:class:`CertificationService` bundles queue + cache + pool behind
the small facade the CLI and the tests use.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ServiceError
from repro.runtime.policy import RuntimePolicy
from repro.service.cache import ResultCache
from repro.service.chaos import ServiceChaosPlan
from repro.service.jobs import JobSpec, JobStatus
from repro.service.queue import JobQueue
from repro.service.worker import Worker


@dataclass
class ServiceConfig:
    """Every scheduling knob in one place.

    Defaults suit interactive runs; tests shrink the timing knobs to
    tens of milliseconds so chaos scenarios resolve in seconds.
    """

    workers: int = 2
    lease_ttl: float = 30.0
    heartbeat_interval: Optional[float] = None
    job_deadline: float = 3600.0
    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    poll_interval: float = 0.05
    store_lock_timeout: float = 10.0


def _worker_main(root: str, config: ServiceConfig, name: str,
                 chaos: Optional[ServiceChaosPlan],
                 runtime: Optional[RuntimePolicy]) -> None:
    """Child-process entry: claim until the queue drains."""
    service = CertificationService(root, config=config, chaos=chaos,
                                   runtime=runtime)
    worker = service.worker(name)
    while True:
        acted = worker.run_once()
        if acted is not None:
            continue
        if service.queue.drained:
            return
        time.sleep(config.poll_interval)


class WorkerPool:
    """Forks and supervises the worker processes."""

    def __init__(self, root: str, config: ServiceConfig,
                 chaos: Optional[ServiceChaosPlan] = None,
                 runtime: Optional[RuntimePolicy] = None) -> None:
        if config.workers < 1:
            raise ServiceError(
                f"pool needs >= 1 worker, got {config.workers}"
            )
        self.root = os.fspath(root)
        self.config = config
        self.chaos = chaos
        self.runtime = runtime
        self._context = multiprocessing.get_context("fork")
        self._children: List[multiprocessing.Process] = []
        self._spawned = 0

    def _spawn(self) -> None:
        self._spawned += 1
        name = f"worker-{self._spawned}"
        child = self._context.Process(
            target=_worker_main,
            args=(self.root, self.config, name, self.chaos,
                  self.runtime),
            name=name, daemon=True)
        child.start()
        self._children.append(child)

    def _kill_overdeadline(self, queue: JobQueue) -> int:
        """SIGKILL children hung past their job's hard deadline."""
        now = queue.clock()
        hung_workers = {
            lease.get("worker") for lease in queue.leases()
            if now > float(lease.get("deadline_at", now + 1.0))
        }
        killed = 0
        for child in self._children:
            if child.name in hung_workers and child.is_alive():
                os.kill(child.pid, signal.SIGKILL)
                child.join(timeout=5.0)
                killed += 1
        return killed

    def run_until_drained(self, queue: JobQueue,
                          timeout: float = 600.0) -> Dict[str, int]:
        """Supervise until every job is terminal; returns counts.

        Raises :class:`ServiceError` at timeout with the queue's
        counts in the message, after stopping all children.
        """
        deadline = time.monotonic() + timeout
        incidents = {"respawns": 0, "deadline_kills": 0,
                     "reaped_leases": 0}
        try:
            while not queue.drained:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"pool timed out after {timeout:g}s with "
                        f"queue counts {queue.counts()}"
                    )
                incidents["deadline_kills"] += \
                    self._kill_overdeadline(queue)
                incidents["reaped_leases"] += \
                    len(queue.reap_expired())
                self._children = [child for child in self._children
                                  if child.is_alive()]
                while len(self._children) < self.config.workers:
                    self._spawn()
                    if self._spawned > self.config.workers:
                        incidents["respawns"] += 1
                time.sleep(self.config.poll_interval)
        finally:
            self.stop()
        return incidents

    def stop(self) -> None:
        for child in self._children:
            if child.is_alive():
                child.terminate()
            child.join(timeout=5.0)
        self._children = []


class CertificationService:
    """Queue + cache + pool behind one handle.

    Layout under ``root``::

        <root>/queue/   the JobQueue (journal, leases, jobs, ...)
        <root>/cache/   the ResultCache shards

    The handle is cheap and stateless — every process (submitters,
    workers, watchers) opens its own against the same root.
    """

    def __init__(self, root: str,
                 config: Optional[ServiceConfig] = None,
                 chaos: Optional[ServiceChaosPlan] = None,
                 runtime: Optional[RuntimePolicy] = None) -> None:
        self.root = os.fspath(root)
        self.config = config or ServiceConfig()
        self.chaos = chaos
        self.runtime = runtime
        self.queue = JobQueue(
            os.path.join(self.root, "queue"),
            lease_ttl=self.config.lease_ttl,
            job_deadline=self.config.job_deadline,
            max_attempts=self.config.max_attempts,
            backoff_base=self.config.backoff_base,
            backoff_factor=self.config.backoff_factor,
            backoff_jitter=self.config.backoff_jitter)
        self.cache = ResultCache(os.path.join(self.root, "cache"))

    # -- submission / inspection -------------------------------------

    def submit(self, spec: JobSpec) -> str:
        return self.queue.submit(spec)

    def status(self, fingerprint: str) -> Optional[JobStatus]:
        return self.queue.status(fingerprint)

    def watch(self, fingerprint: str, **kwargs):
        return self.queue.watch(fingerprint, **kwargs)

    def counts(self) -> Dict[str, int]:
        return self.queue.counts()

    # -- execution ---------------------------------------------------

    def worker(self, name: str = "worker") -> Worker:
        return Worker(
            self.queue, self.cache, name=name,
            heartbeat_interval=self.config.heartbeat_interval,
            runtime=self.runtime, chaos=self.chaos,
            store_lock_timeout=self.config.store_lock_timeout)

    def run_until_drained(self, timeout: float = 600.0
                          ) -> Dict[str, Any]:
        """Drain the queue; forked pool or in-process.

        ``config.workers == 0`` runs a single in-process worker (no
        fork — deterministic, debuggable, used by most tests); any
        positive count forks a supervised pool.
        """
        if self.config.workers == 0:
            turns = self.worker().run_until_drained(
                poll=self.config.poll_interval, timeout=timeout)
            return {"mode": "in-process", "turns": turns,
                    "counts": self.counts()}
        pool = WorkerPool(self.root, self.config, chaos=self.chaos,
                          runtime=self.runtime)
        incidents = pool.run_until_drained(self.queue,
                                           timeout=timeout)
        return {"mode": "pool", "counts": self.counts(),
                **incidents}
