"""Sweep decomposition: one claim fanned out as many queue jobs.

The paper's headline artefact is a threshold table certified over a
gadget × noise × p grid.  :class:`SweepSpec` is that claim as a
single content-addressed submission: it *decomposes* into one
:class:`~repro.service.jobs.JobSpec` per (gadget, p) cell — each cell
a normal queue job with its own deterministic seed, checkpoint
substore and cached verdict — and a **merge step** reassembles the
cell verdicts into one table.

The merge is held to the same crash-safety standard as everything
else in the service:

* merge state is journaled through a per-sweep
  :class:`~repro.runtime.CheckpointStore`
  (``<root>/sweeps/<sweep_fp>/``) — each cell that reaches a terminal
  state is appended exactly once as a ``cells`` record;
* a merge interrupted mid-way resumes from its journal: already-
  merged cells are never re-read from the queue, so the merged table
  is identical whether the merge ran once or was killed and re-run;
* a cell that dead-lettered, failed or was cancelled is reported as
  a **typed partial verdict** — ``{"state": "dead", "error": ...}``
  in the table with the sweep marked ``partial`` — never as a silent
  gap in the grid;
* cell seeds are a pure function of (sweep seed, gadget, p), so a
  decomposed sweep drained by any pool produces verdicts
  *bit-identical* to :func:`run_sweep_inprocess`, the undisturbed
  serial reference the network-chaos soak compares against.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import CheckpointError, ServiceError
from repro.runtime.checkpoint import CheckpointStore
from repro.service.jobs import JobSpec, SUCCEEDED, canonical_json

#: Job kinds a sweep may decompose into (one cell = one such job).
SWEEP_CELL_KINDS = ("monte_carlo", "sequential_monte_carlo",
                    "stress_certify")

_CELLS = "cells"


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a decomposed sweep."""

    key: str
    gadget: str
    p: float
    spec: JobSpec

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint


@dataclass(frozen=True)
class SweepSpec:
    """One whole-grid claim, content-addressed like a JobSpec.

    ``cell_kind`` picks the per-cell job kind; ``cell_params`` are
    the keyword arguments shared by every cell (trials, chunk_size,
    p0/p1 for sequential cells, ...).  The per-cell seed is derived
    from the sweep seed and the cell coordinate, never from
    submission order, so any subset of cells can be recomputed
    independently and still match the full run.
    """

    cell_kind: str
    code: str
    gadgets: Tuple[str, ...]
    p_grid: Tuple[float, ...]
    seed: int
    cell_params: Tuple[Tuple[str, Any], ...] = field(
        default_factory=tuple)

    @classmethod
    def create(cls, cell_kind: str, *, code: str = "trivial",
               gadgets=("n",), p_grid=(0.01,), seed: int = 0,
               **cell_params: Any) -> "SweepSpec":
        if cell_kind not in SWEEP_CELL_KINDS:
            raise ServiceError(
                f"unknown sweep cell kind {cell_kind!r}; pick from "
                f"{SWEEP_CELL_KINDS}"
            )
        gadgets = tuple(str(g) for g in gadgets)
        if not gadgets:
            raise ServiceError("sweep needs at least one gadget")
        grid = tuple(float(p) for p in p_grid)
        if not grid:
            raise ServiceError("sweep needs at least one p point")
        for p in grid:
            if not math.isfinite(p) or not 0.0 <= p <= 1.0:
                raise ServiceError(
                    f"sweep p values must be finite in [0, 1], "
                    f"got {p!r}"
                )
        if len(set(grid)) != len(grid):
            raise ServiceError("sweep p_grid holds duplicate points")
        try:
            canonical_json(cell_params)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"sweep cell params are not canonically "
                f"JSON-serialisable: {exc}"
            ) from exc
        return cls(cell_kind=cell_kind, code=str(code),
                   gadgets=gadgets, p_grid=grid, seed=int(seed),
                   cell_params=tuple(sorted(cell_params.items())))

    # -- identity ----------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "sweep",
            "cell_kind": self.cell_kind,
            "code": self.code,
            "gadgets": list(self.gadgets),
            "p_grid": list(self.p_grid),
            "seed": self.seed,
            "cell_params": dict(self.cell_params),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        try:
            if data.get("kind") not in (None, "sweep"):
                raise ServiceError(
                    f"not a sweep spec: kind={data.get('kind')!r}"
                )
            return cls.create(
                str(data["cell_kind"]),
                code=str(data.get("code", "trivial")),
                gadgets=data.get("gadgets", ("n",)),
                p_grid=data.get("p_grid", (0.01,)),
                seed=int(data.get("seed", 0)),
                **dict(data.get("cell_params", {})))
        except (TypeError, KeyError, ValueError) as exc:
            raise ServiceError(
                f"malformed sweep spec record: {exc}"
            ) from exc

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the canonical sweep — the claim's identity."""
        return hashlib.sha256(
            canonical_json(self.to_json_dict()).encode("utf-8")
        ).hexdigest()

    # -- decomposition -----------------------------------------------

    def cell_seed(self, gadget: str, p: float) -> int:
        """Deterministic per-cell seed: SHA-256 of the coordinate.

        Hash-derived (not ``seed + index``) so inserting a grid point
        or reordering gadgets never shifts any *other* cell's stream
        — exactly the property that lets a partially-cached sweep
        reuse old cell verdicts.
        """
        blob = f"{self.seed}:{gadget}:{json.dumps(float(p))}"
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    @staticmethod
    def cell_key(gadget: str, p: float) -> str:
        return f"{gadget}@{json.dumps(float(p))}"

    def cells(self) -> List[SweepCell]:
        """Every grid cell, in canonical (gadget, p) order."""
        params = dict(self.cell_params)
        found = []
        for gadget in self.gadgets:
            for p in self.p_grid:
                seed = self.cell_seed(gadget, p)
                if self.cell_kind == "stress_certify":
                    spec = JobSpec.create(
                        self.cell_kind, code=self.code, p=p,
                        seed=seed, gadgets=[gadget], **params)
                else:
                    spec = JobSpec.create(
                        self.cell_kind, code=self.code,
                        gadget=gadget, p=p, seed=seed, **params)
                found.append(SweepCell(
                    key=self.cell_key(gadget, p), gadget=gadget,
                    p=p, spec=spec))
        return found


# ---------------------------------------------------------------------------
# Submission and crash-safe merge
# ---------------------------------------------------------------------------

def submit_sweep(service, sweep: SweepSpec) -> Dict[str, Any]:
    """Register the sweep and enqueue every cell job.

    Idempotent end to end: the sweep journal is keyed by the sweep
    fingerprint (a resubmission finds the existing header and
    verifies it), and each cell submission rides the queue's
    content-addressed dedup — a duplicated or retried sweep
    submission never enqueues a cell twice.
    """
    fingerprint = sweep.fingerprint
    store = service.sweep_store(fingerprint)
    recorded = store.load_header()
    if recorded is None:
        store.write_header(sweep.to_json_dict())
    else:
        store.check_fingerprint(sweep.to_json_dict())
    cells = sweep.cells()
    deduplicated = 0
    cell_fps = {}
    for cell in cells:
        existing = service.queue.status(cell.fingerprint)
        if existing is not None and not existing.terminal:
            deduplicated += 1
        cell_fps[cell.key] = service.submit(cell.spec)
    return {
        "sweep": fingerprint,
        "cell_kind": sweep.cell_kind,
        "cells": cell_fps,
        "submitted": len(cells) - deduplicated,
        "deduplicated": deduplicated,
    }


def load_sweep(service, fingerprint: str) -> Optional[SweepSpec]:
    """Rebuild a registered sweep's spec from its merge journal."""
    store = service.sweep_store(fingerprint)
    header = store.load_header()
    if header is None:
        return None
    sweep = SweepSpec.from_json_dict(header.get("fingerprint", {}))
    if sweep.fingerprint != fingerprint:
        raise CheckpointError(
            f"sweep journal {store.directory!r} records spec "
            f"{sweep.fingerprint[:12]}… under directory "
            f"{fingerprint[:12]}…; refusing the mismatched merge"
        )
    return sweep


def merge_sweep(service, sweep: SweepSpec, *,
                lock_timeout: float = 30.0) -> Dict[str, Any]:
    """Fold terminal cell verdicts into the sweep's merged table.

    Each call journals any *newly* terminal cells (exactly once —
    replayed cells are skipped) and returns the table as merged so
    far.  The table is complete when every cell is journaled; a
    non-succeeded cell appears as a typed partial verdict.  Safe to
    call repeatedly, from any process, before/after crashes: the
    journal, not the caller, is the source of truth.
    """
    fingerprint = sweep.fingerprint
    store = service.sweep_store(fingerprint)
    if store.load_header() is None:
        raise ServiceError(
            f"sweep {fingerprint[:12]}… is not registered; submit "
            "it before merging"
        )
    cells = sweep.cells()
    with store.exclusive(timeout=lock_timeout):
        final = store.load_state("merged")
        if final is not None and final.get("complete"):
            return dict(final["table"])
        merged: Dict[str, Dict[str, Any]] = {}
        for record in store.load_records(_CELLS,
                                         tolerate_tail=True):
            # Last-writer-wins dedup: a crash between append and the
            # caller seeing it can journal one cell twice.
            merged[str(record["cell"])] = {
                key: record[key]
                for key in ("fingerprint", "state", "verdict",
                            "error")
                if key in record
            }
        for cell in cells:
            if cell.key in merged:
                continue
            status = service.queue.status(cell.fingerprint)
            if status is None or not status.terminal:
                continue
            record = {
                "cell": cell.key,
                "fingerprint": cell.fingerprint,
                "state": status.state,
            }
            if status.state == SUCCEEDED:
                record["verdict"] = status.verdict
            else:
                record["error"] = status.error or status.state
            store.append_record(_CELLS, record)
            merged[cell.key] = {
                key: record[key]
                for key in ("fingerprint", "state", "verdict",
                            "error")
                if key in record
            }
        table = _build_table(service, sweep, cells, merged)
        if table["complete"]:
            store.write_state("merged", {"complete": True,
                                         "table": table})
            store.finalize({"sweep": fingerprint,
                            "counts": table["counts"]})
    return table


def _build_table(service, sweep: SweepSpec, cells, merged
                 ) -> Dict[str, Any]:
    """Assemble the deterministic merged verdict table.

    Only journaled (terminal) cell outcomes enter the table payload
    — no attempts, workers or timestamps — so two drains of the same
    sweep compare bit-for-bit regardless of chaos.  Live cells are
    reported in ``counts`` but appear as typed ``missing`` rows.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    counts: Dict[str, int] = {}
    partial = False
    for cell in cells:
        outcome = merged.get(cell.key)
        if outcome is None:
            live = service.queue.status(cell.fingerprint)
            state = live.state if live is not None else "missing"
            counts[state] = counts.get(state, 0) + 1
            rows[cell.key] = {
                "fingerprint": cell.fingerprint,
                "state": "missing",
                "partial": True,
            }
            partial = True
            continue
        state = str(outcome.get("state", "missing"))
        counts[state] = counts.get(state, 0) + 1
        row: Dict[str, Any] = {
            "fingerprint": outcome.get("fingerprint",
                                       cell.fingerprint),
            "state": state,
        }
        if state == SUCCEEDED:
            row["verdict"] = outcome.get("verdict", {})
            row["partial"] = False
        else:
            # The typed partial verdict: the grid point is present,
            # named, and carries its failure — never a silent gap.
            row["error"] = str(outcome.get("error", state))
            row["partial"] = True
            partial = True
        rows[cell.key] = row
    complete = all(key in merged for key in
                   (cell.key for cell in cells))
    return {
        "kind": "sweep_merge",
        "sweep": sweep.fingerprint,
        "cell_kind": sweep.cell_kind,
        "code": sweep.code,
        "complete": complete,
        "partial": partial,
        "counts": dict(sorted(counts.items())),
        "cells": rows,
    }


def run_sweep_inprocess(sweep: SweepSpec, root: str,
                        config=None) -> Dict[str, Any]:
    """The undisturbed serial reference for a decomposed sweep.

    Submits the same cells to a fresh single-process service at
    ``root``, drains them with one in-process worker (no pool, no
    network) and merges.  The chaos soak asserts a networked,
    fault-injected drain of the same sweep is bit-identical to this.
    """
    from repro.service.pool import CertificationService, \
        ServiceConfig
    service = CertificationService(
        root, config=config or ServiceConfig(workers=0))
    submit_sweep(service, sweep)
    service.worker("inprocess").run_until_drained(timeout=600.0)
    table = merge_sweep(service, sweep)
    if not table["complete"]:
        raise ServiceError(
            f"in-process sweep reference did not complete: "
            f"{table['counts']}"
        )
    return table


__all__ = [
    "SWEEP_CELL_KINDS",
    "SweepCell",
    "SweepSpec",
    "load_sweep",
    "merge_sweep",
    "run_sweep_inprocess",
    "submit_sweep",
]
