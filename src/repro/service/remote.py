"""The remote certification worker: the fleet's over-the-wire half.

:class:`RemoteWorker` is the :class:`~repro.service.worker.Worker`
turn rebuilt on HTTP: it runs on any host that can reach the
:class:`~repro.service.net.CertificationServer` and drives jobs
entirely through the authenticated ``/v1/work/*`` surface —

1. **Claim** via ``POST /v1/work/claim`` (HMAC fleet auth,
   :mod:`repro.service.auth`).  The server reaps expired leases
   lazily on every claim, so a fleet needs no local supervisor.
2. **Cache short-circuit**: a claim that comes back with
   ``cached_verdict`` is completed immediately with
   ``meta.evaluations == 0`` — the determinism dividend crosses the
   wire unchanged.
3. **Execute** otherwise, through the exact same transport-agnostic
   :func:`~repro.service.worker.execute_job` the in-process worker
   uses, with engine checkpoints in a **local scratch store** (a
   remote host cannot see the server's job directories) and progress
   posted over the wire, token-checked server-side.
4. **Heartbeat** on a daemon thread via ``POST /v1/work/heartbeat``;
   a 409 marks the lease stale and the attempt is abandoned —
   a partitioned or zombie worker's late ``complete`` is refused
   server-side exactly as :class:`~repro.exceptions.StaleLeaseError`
   refuses it in-process.
5. **Complete** via ``POST /v1/work/complete``.  The lease token
   plus the content-addressed verdict make *blind resubmission*
   safe: an ambiguous network fault (did the complete land?) is
   answered by retrying, and the server absorbs the duplicate
   without a second journal append.

Every network fault on the way is handled by
:class:`~repro.service.client.ServiceClient`'s retry kit (fresh
connections, capped deterministic backoff, digest-checked
envelopes, honored ``Retry-After``), so a remote fleet inherits the
full robustness story without new machinery.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Optional

from repro.exceptions import ReproError, ServiceError, StaleLeaseError
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.policy import RuntimePolicy
from repro.service.auth import WorkerAuth
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.worker import ExecutionContext, execute_job


class _RemoteHeartbeat(threading.Thread):
    """Renews a wire lease on a daemon thread until stopped or stale.

    Mirrors the in-process ``_Heartbeat``: it stops renewing once the
    job's hard deadline passes, and records staleness — a 409 from
    the server, meaning the lease expired away or was re-issued — so
    the executing thread abandons instead of computing a verdict
    nobody will accept.
    """

    def __init__(self, client: ServiceClient, fingerprint: str,
                 token: str, deadline_at: float,
                 interval: float) -> None:
        super().__init__(daemon=True)
        self.client = client
        self.fingerprint = fingerprint
        self.token = token
        self.deadline_at = deadline_at
        self.interval = interval
        self.stop_event = threading.Event()
        self.stale = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            if time.time() >= self.deadline_at:
                break
            try:
                self.client.work_heartbeat(self.fingerprint,
                                           self.token)
            except StaleLeaseError:
                self.stale.set()
                break
            except ServiceError:
                # The network ate the renewal even after the client's
                # retries; keep trying until the lease actually goes
                # stale — a missed beat is not yet an abandoned job.
                continue

    def stop(self) -> None:
        self.stop_event.set()


class RemoteWorker:
    """Drives queue jobs over HTTP; one instance per remote host."""

    def __init__(self, host: str, port: int, *, secret: str,
                 scratch: str, name: str = "remote",
                 heartbeat_interval: Optional[float] = None,
                 runtime: Optional[RuntimePolicy] = None,
                 **client_kwargs: Any) -> None:
        self.name = name
        self.scratch = os.fspath(scratch)
        self.heartbeat_interval = heartbeat_interval
        self.runtime = runtime
        self.client = ServiceClient(
            host, port, auth=WorkerAuth(secret=secret, worker=name),
            **client_kwargs)
        #: Lifetime tallies for soak audits.
        self.claims = 0
        self.completions = 0
        self.duplicates = 0
        self.cache_hits = 0
        self.failures = 0
        self.stale_abandons = 0

    # -- the worker turn ---------------------------------------------

    def run_once(self) -> Optional[str]:
        """Claim and drive one job over the wire.

        Returns the fingerprint acted on, or None when the server had
        no runnable job.  Per-job failures are reported to the queue
        (retry or dead-letter) rather than raised; a stale lease
        abandons the attempt silently — the new holder owns the job.
        """
        answer = self.client.work_claim()
        lease = answer.get("lease")
        if lease is None:
            return None
        return self._drive(lease)

    def _drive(self, lease: Dict[str, Any]) -> str:
        """Execute one claimed lease to a queue transition."""
        self.claims += 1
        fingerprint = str(lease["fingerprint"])
        token = str(lease["token"])
        attempt = int(lease.get("attempt", 1))
        try:
            if "cached_verdict" in lease:
                self.cache_hits += 1
                self.client.work_progress(fingerprint, token, {
                    "cache_hit": True, "worker": self.name,
                    "attempt": attempt,
                })
                self._complete(fingerprint, token,
                               dict(lease["cached_verdict"]),
                               {"cache_hit": True, "evaluations": 0,
                                "worker": self.name,
                                "attempt": attempt})
                return fingerprint
            verdict, meta = self._execute(lease)
            self._complete(fingerprint, token, verdict, meta)
            return fingerprint
        except StaleLeaseError:
            self.stale_abandons += 1
            return fingerprint
        except ReproError as exc:
            self._report_failure(fingerprint, token, exc)
            return fingerprint
        except Exception as exc:  # noqa: BLE001 - typed into queue
            self._report_failure(fingerprint, token, exc)
            return fingerprint

    def _complete(self, fingerprint: str, token: str,
                  verdict: Dict[str, Any],
                  meta: Dict[str, Any]) -> None:
        receipt = self.client.work_complete(fingerprint, token,
                                            verdict, meta=meta)
        self.completions += 1
        if receipt.get("duplicate"):
            self.duplicates += 1

    def _report_failure(self, fingerprint: str, token: str,
                        exc: Exception) -> None:
        self.failures += 1
        try:
            self.client.work_fail(fingerprint, token,
                                  f"{type(exc).__name__}: {exc}")
        except StaleLeaseError:
            pass

    # -- execution ----------------------------------------------------

    def _scratch_store(self, fingerprint: str) -> CheckpointStore:
        """The local engine-checkpoint store for one job.

        Keyed by fingerprint, so a re-claim *on this host* resumes
        from its own journal bit-identically; a re-claim on another
        host restarts from scratch — determinism makes both paths
        land on the same verdict.
        """
        return CheckpointStore(
            os.path.join(self.scratch, fingerprint, "engine"))

    def _execute(self, lease: Dict[str, Any]):
        fingerprint = str(lease["fingerprint"])
        token = str(lease["token"])
        ttl = float(lease.get("lease_ttl", 30.0))
        interval = self.heartbeat_interval \
            if self.heartbeat_interval is not None \
            else max(0.05, ttl / 3.0)
        heartbeat = _RemoteHeartbeat(
            self.client, fingerprint, token,
            float(lease.get("deadline_at", time.time() + 3600.0)),
            interval)
        heartbeat.start()
        store = self._scratch_store(fingerprint)
        context = ExecutionContext(
            spec=JobSpec.from_json_dict(dict(lease["spec"])),
            store=store, worker=self.name,
            attempt=int(lease.get("attempt", 1)),
            runtime=self.runtime,
            stream=lambda payload: self.client.work_progress(
                fingerprint, token, payload))
        try:
            result = execute_job(context)
        finally:
            heartbeat.stop()
        if heartbeat.stale.is_set():
            raise StaleLeaseError(
                f"lease for job {fingerprint[:12]}… went stale "
                "during remote execution; abandoning the attempt"
            )
        return result

    # -- drain loop ----------------------------------------------------

    def run_until_drained(self, poll: float = 0.05,
                          timeout: float = 300.0) -> int:
        """Claim over the wire until the server reports drained.

        Returns the number of turns that acted on a job.  The server
        performs lease reaping on every claim, so this loop needs no
        local supervision.
        """
        turns = 0
        deadline = time.monotonic() + timeout
        while True:
            answer = self.client.work_claim()
            lease = answer.get("lease")
            if lease is not None:
                self._drive(lease)
                turns += 1
                continue
            if answer.get("drained"):
                return turns
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"remote drain timed out after {timeout:g}s"
                )
            time.sleep(poll)


def remote_worker_main(host: str, port: int, secret: str,
                       name: str, scratch: str,
                       poll: float = 0.05,
                       timeout: float = 300.0,
                       **worker_kwargs: Any) -> int:
    """Process entry point: drain the queue from a separate process.

    Importable (not a closure) so it works as a ``multiprocessing``
    target under any start method — the soak harness SIGKILLs these
    processes mid-lease to certify crash recovery over the wire.
    """
    worker = RemoteWorker(host, port, secret=secret, name=name,
                          scratch=scratch, **worker_kwargs)
    return worker.run_until_drained(poll=poll, timeout=timeout)


__all__ = [
    "RemoteWorker",
    "remote_worker_main",
]
