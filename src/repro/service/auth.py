"""HMAC shared-secret authentication for the worker fleet.

The ``/v1/work/*`` endpoints hand out and consume *leases* — the
credentials that make exactly-once completion work — so they must not
be drivable by an unauthenticated peer.  The scheme here is the
smallest thing with the right properties, built entirely from the
stdlib:

* the operator picks one **fleet secret** and gives it to the server
  and to every remote worker;
* each worker request carries three headers::

      X-Repro-Worker:    <worker name>
      X-Repro-Nonce:     <hex nonce chosen by the worker>
      X-Repro-Signature: HMAC-SHA256(secret,
                             method \\n path \\n worker \\n nonce \\n
                             SHA-256(body))

* the server recomputes the signature with :func:`hmac.compare_digest`
  (constant-time, no oracle) and rejects with **typed** errors:
  a missing or syntactically garbled token —
  :class:`~repro.exceptions.AuthenticationError`, HTTP 401; a
  well-formed token that fails verification —
  :class:`~repro.exceptions.AuthorizationError`, HTTP 403.

Signing covers the body digest, so a request tampered in flight fails
auth rather than acting with someone else's credentials; it does not
attempt replay protection — replaying a worker request is harmless by
construction, because every ``/v1/work/*`` mutation is additionally
guarded by its single-use lease token (a replayed ``complete`` is the
exact duplicate-delivery case the queue already absorbs
idempotently).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import AuthenticationError, AuthorizationError

#: Header names, in one place so client and server cannot drift.
WORKER_HEADER = "x-repro-worker"
NONCE_HEADER = "x-repro-nonce"
SIGNATURE_HEADER = "x-repro-signature"

_SIGNATURE_LEN = 64  # hex SHA-256
_HEX = set("0123456789abcdef")


def _body_digest(body: Optional[bytes]) -> str:
    return hashlib.sha256(body or b"").hexdigest()


def sign_request(secret: str, method: str, path: str, worker: str,
                 nonce: str, body: Optional[bytes]) -> str:
    """The canonical request signature (lowercase hex)."""
    message = "\n".join((method.upper(), path, worker, nonce,
                         _body_digest(body)))
    return hmac.new(secret.encode("utf-8"),
                    message.encode("utf-8"),
                    hashlib.sha256).hexdigest()


@dataclass(frozen=True)
class WorkerAuth:
    """One worker's signing identity: fleet secret + worker name."""

    secret: str
    worker: str

    def headers(self, method: str, path: str,
                body: Optional[bytes]) -> Dict[str, str]:
        """Signed headers for one request (fresh nonce per call)."""
        nonce = os.urandom(8).hex()
        return {
            "X-Repro-Worker": self.worker,
            "X-Repro-Nonce": nonce,
            "X-Repro-Signature": sign_request(
                self.secret, method, path, self.worker, nonce, body),
        }


def verify_request(secret: str, method: str, path: str,
                   headers: Mapping[str, str],
                   body: Optional[bytes]) -> str:
    """Validate a signed worker request; returns the worker name.

    ``headers`` keys are expected lower-cased (the server's request
    parser normalises them).  Raises
    :class:`~repro.exceptions.AuthenticationError` for absent or
    garbled tokens and
    :class:`~repro.exceptions.AuthorizationError` for signatures that
    fail verification.
    """
    worker = headers.get(WORKER_HEADER, "")
    nonce = headers.get(NONCE_HEADER, "")
    signature = headers.get(SIGNATURE_HEADER, "")
    if not worker or not nonce or not signature:
        missing = [name for name, value in
                   ((WORKER_HEADER, worker), (NONCE_HEADER, nonce),
                    (SIGNATURE_HEADER, signature)) if not value]
        raise AuthenticationError(
            f"worker request is unauthenticated: missing header(s) "
            f"{missing}; the /v1/work surface requires the fleet "
            "secret"
        )
    signature = signature.strip().lower()
    if (len(signature) != _SIGNATURE_LEN
            or any(c not in _HEX for c in signature)):
        raise AuthenticationError(
            f"worker token is garbled: signature "
            f"{signature[:16]!r}… is not a {_SIGNATURE_LEN}-digit "
            "hex HMAC"
        )
    expected = sign_request(secret, method, path, worker, nonce, body)
    if not hmac.compare_digest(expected, signature):
        raise AuthorizationError(
            f"worker {worker!r} presented a token that fails HMAC "
            "verification (wrong fleet secret or tampered request); "
            "refusing the claim"
        )
    return worker


__all__ = [
    "NONCE_HEADER",
    "SIGNATURE_HEADER",
    "WORKER_HEADER",
    "WorkerAuth",
    "sign_request",
    "verify_request",
]
