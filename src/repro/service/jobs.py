"""Job specifications and content-addressed fingerprints.

A certification *job* is a pure function of its spec: a job kind
(which analysis entry point runs) plus a canonical parameter dict
(gadget, code, noise strength, budget, seed).  Two submissions with
the same spec are the *same* job — they share a fingerprint, a
checkpoint substore, a queue entry and a cached verdict.  The
fingerprint is the SHA-256 of the spec's canonical JSON, the same
content-addressing discipline :class:`~repro.runtime.CheckpointStore`
applies to record payloads, promoted to the job level.

Determinism is the load-bearing property: every job kind threads an
explicit seed into a seeded analysis entry point, so a job re-run
after a crash, a lease expiry or a cache miss must produce a verdict
*bit-identical* to the undisturbed run.  The service asserts exactly
that in its chaos suite.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.exceptions import ServiceError

#: Job states, in lifecycle order.  ``pending`` and ``running`` are
#: transient; the other four are terminal.
PENDING = "pending"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
DEAD = "dead"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, DEAD, CANCELLED})

#: Kinds the worker knows how to dispatch (see
#: :mod:`repro.service.worker`).
JOB_KINDS = ("monte_carlo", "sequential_monte_carlo", "stress_certify")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


@dataclass(frozen=True)
class JobSpec:
    """One certification request, content-addressed by its params.

    ``kind`` selects the analysis entry point; ``params`` are its
    keyword arguments in JSON-serialisable form.  The spec is frozen
    and canonicalised at construction so its fingerprint is stable no
    matter which process or dict ordering produced it.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @classmethod
    def create(cls, kind: str, **params: Any) -> "JobSpec":
        if kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {kind!r}; pick from {JOB_KINDS}"
            )
        try:
            canonical_json(params)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"job params are not canonically JSON-serialisable: "
                f"{exc}"
            ) from exc
        return cls(kind=kind,
                   params=tuple(sorted(params.items())))

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_json_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params_dict}

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from a journal record.

        Deliberately does *not* validate the kind: a journal written
        by a newer service version must still replay here, with the
        unknown kind surfacing as a typed dispatch failure (and
        eventually a dead letter) rather than an unreadable queue.
        """
        try:
            kind = data["kind"]
            params = dict(data["params"])
        except (TypeError, KeyError) as exc:
            raise ServiceError(
                f"malformed job spec record: {data!r}"
            ) from exc
        return cls(kind=str(kind),
                   params=tuple(sorted(params.items())))

    @property
    def fingerprint(self) -> str:
        """SHA-256 of the canonical spec — the job's identity."""
        return hashlib.sha256(
            canonical_json(self.to_json_dict()).encode("utf-8")
        ).hexdigest()


@dataclass
class JobStatus:
    """Replay-derived view of one job's queue state."""

    spec: JobSpec
    fingerprint: str
    state: str = PENDING
    attempt: int = 0
    not_before: float = 0.0
    submit_index: int = 0
    worker: str = ""
    error: str = ""
    verdict: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_json_dict(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "attempt": self.attempt,
            "submit_index": self.submit_index,
            "worker": self.worker,
            "error": self.error,
            "verdict": self.verdict,
            "meta": self.meta,
        }
