"""Scaling fits: certifying the O(p^2) claim from sampled data.

A fault-tolerant gadget's logical failure rate must vanish
quadratically with the physical rate p; an unprotected operation
degrades linearly.  :func:`fit_power_law` extracts the exponent from a
(p, rate) series by least squares in log-log space, which is what the
benchmark harness reports next to the paper's analytic claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError


@dataclass(frozen=True)
class PowerLawFit:
    """rate ~ coefficient * p^exponent."""

    exponent: float
    coefficient: float
    points_used: int
    residual: float

    def predict(self, p: float) -> float:
        return self.coefficient * p**self.exponent


def fit_power_law(p_values: Sequence[float],
                  rates: Sequence[float],
                  stderrs: Optional[Sequence[float]] = None,
                  intervals: Optional[Sequence] = None
                  ) -> PowerLawFit:
    """Least-squares log-log fit, dropping zero-rate points.

    Zero observed failures at small p carry no log-space information;
    they are excluded (with at least two informative points required).
    ``intervals`` (a :class:`~repro.analysis.stats.BinomialInterval`
    per point, e.g. from :func:`~repro.analysis.sequential.
    adaptive_sweep_p`) supersedes ``stderrs``: points whose interval
    reaches 0 are statistically consistent with a zero rate and are
    excluded the same way.
    """
    xs: List[float] = []
    ys: List[float] = []
    for index, (p, rate) in enumerate(zip(p_values, rates)):
        if p <= 0:
            raise AnalysisError("p values must be positive")
        if rate <= 0:
            continue
        if intervals is not None:
            if intervals[index].lower <= 0.0:
                # Interval reaches zero: too noisy to place.
                continue
        elif stderrs is not None and rate <= stderrs[index]:
            # Rate indistinguishable from zero: too noisy to place.
            continue
        xs.append(np.log(p))
        ys.append(np.log(rate))
    if len(xs) < 2:
        raise AnalysisError(
            f"need >= 2 nonzero points for a power-law fit, got {len(xs)}"
        )
    design = np.vstack([xs, np.ones(len(xs))]).T
    solution, residual, _, _ = np.linalg.lstsq(design, np.array(ys),
                                               rcond=None)
    slope, intercept = solution
    residual_value = float(residual[0]) if residual.size else 0.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        points_used=len(xs),
        residual=residual_value,
    )


def scaling_is_quadratic(fit: PowerLawFit, tolerance: float = 0.5) -> bool:
    """Whether the fitted exponent is ~2 (the FT signature)."""
    return abs(fit.exponent - 2.0) <= tolerance


def scaling_is_linear(fit: PowerLawFit, tolerance: float = 0.5) -> bool:
    """Whether the fitted exponent is ~1 (unprotected behaviour)."""
    return abs(fit.exponent - 1.0) <= tolerance


def format_series(p_values: Sequence[float], rates: Sequence[float],
                  stderrs: Optional[Sequence[float]] = None,
                  label: str = "",
                  intervals: Optional[Sequence] = None) -> str:
    """Human-readable table of a failure-rate series.

    ``intervals`` adds certified confidence-interval columns (and
    supersedes the ``stderr`` column).
    """
    if intervals is not None:
        lines = [f"  {'p':>10s} {'failure rate':>14s} "
                 f"{'ci low':>10s} {'ci high':>10s}"]
        for index, (p, rate) in enumerate(zip(p_values, rates)):
            interval = intervals[index]
            lines.append(f"  {p:10.2e} {rate:14.6e} "
                         f"{interval.lower:10.2e} "
                         f"{interval.upper:10.2e}")
        header = f"{label}\n" if label else ""
        return header + "\n".join(lines)
    lines = [f"  {'p':>10s} {'failure rate':>14s}"
             + ("" if stderrs is None else f" {'stderr':>10s}")]
    for index, (p, rate) in enumerate(zip(p_values, rates)):
        row = f"  {p:10.2e} {rate:14.6e}"
        if stderrs is not None:
            row += f" {stderrs[index]:10.1e}"
        lines.append(row)
    header = f"{label}\n" if label else ""
    return header + "\n".join(lines)
