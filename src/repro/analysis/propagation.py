"""Symbolic fault analysis of gadget circuits (conservative bounds).

Works at any qubit count: faults are pushed through the gadget circuit
in the Heisenberg picture (:class:`~repro.simulators.pauli_tracker.
PauliPropagator`), and the propagated residual is judged per register
block — the style of evaluation the paper performs by hand ("the
threshold can easily be calculated by counting the potential places
for two errors").

IMPORTANT CAVEAT: the symbolic analysis is a *strict over-
approximation*.  The classical correction logic inside N_1 cancels a
propagated bit error conditionally on the syndrome bits' values; that
value-dependent cancellation is invisible to worst-case Pauli
propagation (and the Toffoli gates of the OR box additionally trigger
the "wild" fallback).  Consequently this module reports some benign
single faults as failures.  Its legitimate uses are (a) exact fault
*location* counting, (b) conservative *upper bounds* on malignant
pairs, and (c) relative comparisons between gadget variants.  The
authoritative certification — zero malignant single faults, and
sampled malignant-pair counts — comes from exact simulation in
:mod:`repro.analysis.montecarlo`
(:func:`~repro.analysis.montecarlo.exhaustive_single_faults_sparse`).

Acceptance criteria per block role:

* ``data`` / ``quantum_ancilla``: the residual restricted to the block
  must be correctable by the code, judging X and Z species separately
  (CSS decoders are independent per species) and counting *wild*
  qubits — positions whose error is unknown after a non-Clifford gate
  — as both species.  Phase errors on ``quantum_ancilla`` blocks are
  ignored: those blocks never act on data again after the N gate reads
  them (the paper's Sec. 4.1 argument).
* ``classical_ancilla``: only bit (X) errors count, and up to
  floor((width-1)/2) of them are tolerated (the repetition code's
  radius); a downstream bitwise controlled-U converts them into
  equally many correctable data errors.
* everything else (cat, scratch, work, parity bits): ignored at end of
  circuit — they are junk by then; any harm they could do was done
  *during* the circuit and is already reflected in the other blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.circuits.pauli import PauliString
from repro.codes.quantum.css import CssCode
from repro.exceptions import AnalysisError
from repro.ft.gadget import Gadget
from repro.noise.locations import FaultLocation, enumerate_locations
from repro.noise.model import NoiseModel
from repro.simulators.pauli_tracker import PauliPropagator, PropagatedFault


@dataclass(frozen=True)
class ResidualSignature:
    """Per-block (X support, Z support) of a propagated fault."""

    x_support: Tuple[Tuple[str, FrozenSet[int]], ...]
    z_support: Tuple[Tuple[str, FrozenSet[int]], ...]

    def combine(self, other: "ResidualSignature") -> "ResidualSignature":
        """Worst-case union (supports can only grow when combining)."""
        return ResidualSignature(
            x_support=_union_supports(self.x_support, other.x_support),
            z_support=_union_supports(self.z_support, other.z_support),
        )


def _union_supports(first, second):
    merged: Dict[str, FrozenSet[int]] = dict(first)
    for name, support in second:
        merged[name] = merged.get(name, frozenset()) | support
    return tuple(sorted(merged.items()))


class GadgetFaultAnalyzer:
    """Propagates and judges faults for one gadget."""

    def __init__(self, gadget: Gadget, code: CssCode,
                 ignore_quantum_ancilla_phase: bool = True,
                 input_roles: Sequence[str] = ("data", "quantum_ancilla")
                 ) -> None:
        self.gadget = gadget
        self.code = code
        self.ignore_quantum_ancilla_phase = ignore_quantum_ancilla_phase
        self._propagator = PauliPropagator(gadget.circuit)
        input_qubits: List[int] = []
        for register in gadget.registers.values():
            if register.role in input_roles:
                input_qubits.extend(register.qubits)
        self.locations: List[FaultLocation] = enumerate_locations(
            gadget.circuit, input_qubits=sorted(input_qubits),
        )
        self._noise = NoiseModel.uniform(1.0)

    # -- judging ---------------------------------------------------------

    def signature_of(self, fault: PauliString,
                     after_op: int) -> ResidualSignature:
        propagated = self._propagator.propagate(fault, after_op)
        return self._signature(propagated)

    def _signature(self, propagated: PropagatedFault) -> ResidualSignature:
        x_support = propagated.x_support()
        z_support = propagated.z_support()
        x_entries = []
        z_entries = []
        for register in self.gadget.registers.values():
            qubits = set(register.qubits)
            x_local = frozenset(
                register.qubits.index(q) for q in (x_support & qubits)
            )
            z_local = frozenset(
                register.qubits.index(q) for q in (z_support & qubits)
            )
            if x_local:
                x_entries.append((register.name, x_local))
            if z_local:
                z_entries.append((register.name, z_local))
        return ResidualSignature(
            x_support=tuple(sorted(x_entries)),
            z_support=tuple(sorted(z_entries)),
        )

    def is_acceptable(self, signature: ResidualSignature) -> bool:
        """Judge a residual signature against the block tolerances."""
        limits = self._block_limits()
        for name, support in signature.x_support:
            limit = limits.get(name)
            if limit is not None and len(support) > limit:
                return False
        for name, support in signature.z_support:
            register = self.gadget.registers[name]
            if register.role == "classical_ancilla":
                continue  # phase errors on classical bits are harmless
            if register.role == "quantum_ancilla" \
                    and self.ignore_quantum_ancilla_phase:
                continue
            limit = limits.get(name)
            if limit is not None and len(support) > limit:
                return False
        return True

    def _block_limits(self) -> Dict[str, int]:
        limits: Dict[str, int] = {}
        for register in self.gadget.registers.values():
            if register.role in ("data", "quantum_ancilla"):
                limits[register.name] = self.code.correctable_errors
            elif register.role == "classical_ancilla":
                limits[register.name] = max(0, (register.size - 1) // 2)
        return limits

    # -- surveys -----------------------------------------------------------

    def single_fault_survey(self) -> "SingleFaultSurvey":
        """Propagate every single-location Pauli fault and judge it."""
        per_location: List[List[ResidualSignature]] = []
        failures: List[Tuple[FaultLocation, PauliString]] = []
        for location in self.locations:
            signatures: List[ResidualSignature] = []
            for pauli in self._noise.fault_choices(
                    location, self.gadget.num_qubits):
                signature = self.signature_of(pauli, location.after_op)
                signatures.append(signature)
                if not self.is_acceptable(signature):
                    failures.append((location, pauli))
            per_location.append(_dedupe(signatures))
        return SingleFaultSurvey(
            analyzer=self,
            signatures_per_location=per_location,
            failures=failures,
        )


def _dedupe(signatures: List[ResidualSignature]) -> List[ResidualSignature]:
    seen: Set[ResidualSignature] = set()
    unique: List[ResidualSignature] = []
    for signature in signatures:
        if signature not in seen:
            seen.add(signature)
            unique.append(signature)
    return unique


@dataclass
class SingleFaultSurvey:
    """Results of propagating every single fault of a gadget."""

    analyzer: GadgetFaultAnalyzer
    signatures_per_location: List[List[ResidualSignature]]
    failures: List[Tuple[FaultLocation, PauliString]]

    @property
    def num_locations(self) -> int:
        return len(self.analyzer.locations)

    @property
    def is_fault_tolerant(self) -> bool:
        """The paper's headline property: no single fault fails."""
        return not self.failures

    def count_malignant_pairs(self) -> int:
        """Location pairs with some Pauli choice driving a failure.

        The paper's two-error counting: a pair (i, j) is malignant when
        there exist Pauli faults at i and j whose combined propagated
        residual is unacceptable.  Signature combination by support
        union is a sound over-approximation (Pauli products never have
        larger support than the union), so the count upper-bounds the
        true malignant-pair number and the derived threshold is a
        safe lower bound.
        """
        malignant = 0
        count = self.num_locations
        for i in range(count):
            for j in range(i + 1, count):
                if self._pair_is_malignant(i, j):
                    malignant += 1
        return malignant

    def _pair_is_malignant(self, i: int, j: int) -> bool:
        for first in self.signatures_per_location[i]:
            for second in self.signatures_per_location[j]:
                if not self.analyzer.is_acceptable(first.combine(second)):
                    return True
        return False
