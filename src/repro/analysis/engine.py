"""Parallel fault-injection execution engine.

Every O(p^2) curve and threshold estimate in the reproduction is a
statistical statement over a huge fault-sample space (Shor
quant-ph/9605011, Preskill quant-ph/9712048), produced until now by
the strictly serial loops in :mod:`repro.analysis.montecarlo`.  This
module is the scalable replacement.  It runs the same three workloads
— stochastic Monte-Carlo trials, exhaustive single-fault enumeration
and malignant-pair sampling — through a shared three-phase schedule:

1. **Sample** (parent process, deterministic).  Trials are split into
   fixed-size chunks; chunk ``c`` draws its faults from an RNG seeded
   with ``SeedSequence(seed).spawn(n_chunks)[c]``.  The chunk layout
   depends only on ``(seed, trials, chunk_size)``, never on the worker
   count, so a seeded run is bit-identical for ``workers=1`` and
   ``workers=64``.  Location strike draws are vectorised.
2. **Deduplicate.**  Each sampled fault set is canonicalised to a
   sorted ``((pauli, after_op), ...)`` tuple.  At low p most non-empty
   samples are single-fault repeats, so the number of *distinct*
   patterns is far below the number of trials; verdicts are reused
   through a :class:`FaultPatternCache` instead of re-running the
   sparse simulator.  Deduplication happens in the parent, so workers
   never simulate the same pattern twice regardless of scheduling.
3. **Evaluate** (worker pool).  Only cache-missing patterns are
   simulated, fanned out across a ``multiprocessing`` fork pool in
   chunks.  Verdicts are independent booleans, so evaluation order
   cannot affect results.

Since PR 3 the evaluate phase runs under the resilience layer of
:mod:`repro.runtime`:

* pool scheduling goes through a :class:`~repro.runtime.Supervisor`
  (per-chunk deadlines, bounded retry with backoff, in-parent
  quarantine of chunks that keep failing — recorded in
  :class:`EngineStats`, never dropped);
* per-pattern evaluation degrades down a
  :class:`~repro.runtime.FallbackPolicy` ladder (sparse →
  statevector → density matrix) on ``MemoryError`` /
  ``SimulationError``, with retry-once on invariant
  ``VerificationError``;
* ``checkpoint=`` journals completed evaluation chunks through a
  :class:`~repro.runtime.CheckpointStore`, and ``resume=`` replays
  them so an interrupted campaign finishes bit-identically to an
  uninterrupted one (verdicts depend only on the canonical pattern,
  and the sample phase is already deterministic per seed).

Caching assumes evaluators are *phase-insensitive*: two fault lists
with the same canonical pattern can differ by a global phase (Paulis
inserted at the same point in either order), which every shipped
evaluator — overlap magnitudes and basis-term predicates — ignores.

The platform must support ``fork`` for ``workers > 1`` (fork lets
workers inherit the gadget/evaluator closures without pickling); where
it is unavailable the engine transparently degrades to in-process
evaluation with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.circuits.pauli import PauliString
from repro.exceptions import (
    AnalysisError,
    SimulationError,
    VerificationError,
)
from repro.ft.gadget import Gadget, apply_circuit_with_faults
from repro.noise.locations import FaultLocation
from repro.noise.model import NoiseModel
from repro.runtime.checkpoint import CheckpointStore, as_store
from repro.runtime.fallback import FallbackRecord
from repro.runtime.policy import RuntimePolicy, resolve_policy
from repro.runtime.supervisor import Supervisor
from repro.simulators.batched import (
    BATCHED_PATH,
    SERIAL_PATH,
    evaluate_fault_patterns_batched,
)
from repro.simulators.sparse import SparseState

#: One concrete fault: (pauli, after_op) exactly as the injector takes it.
Fault = Tuple[PauliString, int]
#: Canonicalised fault set (sorted tuple of faults) — the cache key.
FaultPattern = Tuple[Fault, ...]

#: Default number of trials sampled per RNG chunk.  Part of the
#: determinism contract: results depend on (seed, trials, chunk_size).
DEFAULT_CHUNK_SIZE = 256

#: Generous default bound on memoised verdicts; far above any shipped
#: workload, but finite so a runaway campaign cannot OOM the parent.
DEFAULT_CACHE_MAX_ENTRIES = 1 << 20

#: Ceiling on trials/samples per run.  Far beyond anything the sparse
#: simulator could evaluate in a lifetime; its real job is rejecting
#: corrupted inputs (e.g. an overflowed or negative count fed from a
#: config file) before they reach the multiprocessing machinery.
MAX_WORK_ITEMS = 1 << 48

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Fork-inherited evaluation context for pool workers (set in the
#: parent immediately before the pool is created; children copy it at
#: fork time, so nothing unpicklable ever crosses the pipe).
_WORKER_CONTEXT: Optional["_EvalContext"] = None


# ---------------------------------------------------------------------------
# Input validation (shared by every public entry point)
# ---------------------------------------------------------------------------

def _coerce_count(value, name: str,
                  maximum: int = MAX_WORK_ITEMS) -> int:
    """Strictly validate a work-item count (trials/samples)."""
    if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)):
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        else:
            raise AnalysisError(
                f"{name} must be an integer, got {value!r} "
                f"({type(value).__name__})"
            )
    value = int(value)
    if value < 0:
        raise AnalysisError(
            f"{name} must be non-negative, got {value}"
        )
    if value > maximum:
        raise AnalysisError(
            f"{name}={value} exceeds the engine's {maximum} "
            f"work-item ceiling; this is almost certainly a "
            f"corrupted or overflowed count"
        )
    return value


def _coerce_chunk_size(value) -> int:
    """Strictly validate ``chunk_size`` (part of the seed contract)."""
    if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)):
        raise AnalysisError(
            f"chunk_size must be an integer, got {value!r} "
            f"({type(value).__name__}); it is part of the "
            f"determinism contract and cannot be rounded silently"
        )
    value = int(value)
    if value < 1:
        raise AnalysisError(
            f"chunk_size must be >= 1, got {value}"
        )
    return value


def _coerce_batch_size(value) -> int:
    """Strictly validate the evaluation ``batch_size`` knob.

    Unlike ``chunk_size`` this is *not* part of the determinism
    contract — verdicts are bit-identical for every batch size — but a
    silent rounding would still hide a corrupted config, so it gets
    the same strict treatment.
    """
    if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)):
        raise AnalysisError(
            f"batch_size must be a positive integer, got {value!r} "
            f"({type(value).__name__})"
        )
    value = int(value)
    if value < 1:
        raise AnalysisError(
            f"batch_size must be >= 1, got {value}"
        )
    return value


def _coerce_workers(value) -> int:
    """Strictly validate an explicit worker count."""
    if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)):
        raise AnalysisError(
            f"workers must be a positive integer, got {value!r} "
            f"({type(value).__name__})"
        )
    value = int(value)
    if value < 1:
        raise AnalysisError(
            f"workers must be >= 1, got {value}; pass workers=None "
            f"(with parallel=False) for the serial path"
        )
    return value


def resolve_workers(parallel: bool, workers: Optional[int]) -> int:
    """Shared resolution of the public ``parallel=``/``workers=`` knobs.

    An explicit ``workers`` must be a positive integer — zero,
    negative or fractional counts raise :class:`AnalysisError` instead
    of falling through to an opaque ``multiprocessing`` failure.
    """
    if workers is not None:
        return _coerce_workers(workers)
    if parallel:
        return max(1, os.cpu_count() or 1)
    return 1


def _fault_sort_key(fault: Fault) -> Tuple[int, Tuple[int, ...],
                                           Tuple[int, ...], int]:
    pauli, after_op = fault
    return (after_op, pauli.x_bits, pauli.z_bits, pauli.phase)


def canonical_pattern(faults: Sequence[Fault]) -> FaultPattern:
    """Order-independent canonical form of a sampled fault set."""
    return tuple(sorted(faults, key=_fault_sort_key))


def evaluate_fault_pattern(gadget: Gadget, initial_state: SparseState,
                           evaluator: Callable[[SparseState], bool],
                           faults: Sequence[Fault],
                           invariant: Optional[
                               Callable[[SparseState], None]] = None
                           ) -> bool:
    """Fresh (uncached) simulation of one fault pattern.

    ``invariant`` is the differential-verification hook: when given,
    it is called with the final state of every fresh simulation and
    must raise :class:`~repro.exceptions.VerificationError` on
    violation (see :func:`repro.verify.norm_invariant` for ready-made
    checks).  Cached verdicts skip the invariant — it certifies the
    simulator runs, which is exactly the set of states that were
    actually computed.
    """
    state = initial_state.copy()
    apply_circuit_with_faults(state, gadget.circuit, list(faults))
    if invariant is not None:
        invariant(state)
    return bool(evaluator(state))


class FaultPatternCache:
    """Memoised verdicts keyed by (evaluation path, canonical pattern).

    Verdicts depend only on the fault pattern (the gadget, input state
    and evaluator are fixed per cache), not on the error rate p, so
    one cache can be shared across an entire p sweep.

    Keys carry the evaluation path (:data:`~repro.simulators.batched.
    SERIAL_PATH` or :data:`~repro.simulators.batched.BATCHED_PATH`) so
    a batched run never silently replays a serial-cached verdict — the
    paths are proved equivalent by the differential suite, but the
    cache refuses to *assume* it: each path revalidates its own
    verdicts, keeping a cross-path disagreement observable instead of
    papered over.  ``get``/``store``/``contains``/``__contains__``
    default to the serial path, preserving every pre-existing caller.

    The cache is LRU-bounded: ``max_entries`` (default generous —
    :data:`DEFAULT_CACHE_MAX_ENTRIES`) caps memory on unbounded
    campaigns, evicting the least-recently-used verdict and counting
    it in :attr:`evictions`.  The same pattern cached under both paths
    occupies two entries and ages independently.  Eviction is
    invisible to correctness — an evicted pattern is simply
    re-simulated on next request — and surfaces in
    :class:`EngineStats` so capped runs are diagnosable.
    ``max_entries=None`` disables the bound.
    """

    def __init__(self, max_entries: Optional[int]
                 = DEFAULT_CACHE_MAX_ENTRIES) -> None:
        if max_entries is not None:
            if isinstance(max_entries, bool) or not isinstance(
                    max_entries, (int, np.integer)):
                raise AnalysisError(
                    f"max_entries must be an integer or None, got "
                    f"{max_entries!r}"
                )
            max_entries = int(max_entries)
            if max_entries < 1:
                raise AnalysisError(
                    f"max_entries must be >= 1, got {max_entries}"
                )
        self.max_entries = max_entries
        self._verdicts: "OrderedDict[Tuple[str, FaultPattern], bool]" \
            = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def __contains__(self, pattern: FaultPattern) -> bool:
        return (SERIAL_PATH, pattern) in self._verdicts

    def contains(self, pattern: FaultPattern,
                 path: str = SERIAL_PATH) -> bool:
        return (path, pattern) in self._verdicts

    def get(self, pattern: FaultPattern,
            path: str = SERIAL_PATH) -> Optional[bool]:
        key = (path, pattern)
        verdict = self._verdicts.get(key)
        if verdict is not None or key in self._verdicts:
            self._verdicts.move_to_end(key)
        return verdict

    def store(self, pattern: FaultPattern, verdict: bool,
              path: str = SERIAL_PATH) -> None:
        key = (path, pattern)
        self._verdicts[key] = bool(verdict)
        self._verdicts.move_to_end(key)
        if self.max_entries is not None:
            while len(self._verdicts) > self.max_entries:
                self._verdicts.popitem(last=False)
                self.evictions += 1

    def items(self):
        """(pattern, verdict) pairs, least-recently-used first.

        Kept path-agnostic for backward compatibility: yields every
        entry's pattern with its verdict (a pattern cached under both
        paths appears twice).  Use :meth:`items_with_paths` for the
        full keys.
        """
        return (((pattern, verdict) for (_, pattern), verdict
                 in self._verdicts.items()))

    def items_with_paths(self):
        """((path, pattern), verdict) pairs, least-recently-used
        first."""
        return self._verdicts.items()

    def clear(self) -> None:
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock record for one evaluation chunk."""

    index: int
    patterns: int
    seconds: float
    worker_pid: int


@dataclass(frozen=True)
class ProgressEvent:
    """Passed to the ``progress`` callback after each chunk completes.

    ``phase`` is 'sample' or 'evaluate'; ``done``/``total`` count work
    items (trials for sampling, patterns for evaluation).
    """

    phase: str
    done: int
    total: int
    chunk_index: int
    chunks_total: int
    elapsed_seconds: float


@dataclass
class EngineStats:
    """Per-run instrumentation surfaced through benchmark reports."""

    trials: int = 0
    requests: int = 0       # verdict lookups (non-empty trials/samples)
    evaluations: int = 0    # fresh simulator runs
    cache_hits: int = 0
    distinct_patterns: int = 0
    chunks: int = 0
    workers: int = 1
    sample_seconds: float = 0.0
    eval_seconds: float = 0.0
    total_seconds: float = 0.0
    worker_busy_seconds: float = 0.0
    chunk_timings: List[ChunkTiming] = field(default_factory=list)
    # -- resilience accounting (repro.runtime) ----------------------
    retries: int = 0
    hung_chunks: int = 0
    worker_errors: int = 0
    pool_restarts: int = 0
    quarantined_chunks: int = 0
    degraded_evaluations: Dict[str, int] = field(default_factory=dict)
    invariant_retries: int = 0
    cache_evictions: int = 0
    resumed_verdicts: int = 0
    # -- batched-path accounting (repro.simulators.batched) ---------
    batched_batches: int = 0       # stacked simulations run
    batched_evaluations: int = 0   # verdicts produced by the stack
    batched_fallbacks: int = 0     # patterns degraded to serial

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def trials_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.trials / self.total_seconds

    @property
    def worker_utilization(self) -> float:
        """Busy time across workers / (evaluation wall time * workers)."""
        denominator = self.eval_seconds * max(self.workers, 1)
        if denominator <= 0:
            return 0.0
        return min(1.0, self.worker_busy_seconds / denominator)

    @property
    def degraded_total(self) -> int:
        return sum(self.degraded_evaluations.values())

    def absorb(self, other: "EngineStats") -> None:
        """Fold another run's stats into this one (multi-phase
        reports: exhaustive + pair sampling share one block)."""
        self.trials += other.trials
        self.requests += other.requests
        self.evaluations += other.evaluations
        self.cache_hits += other.cache_hits
        self.distinct_patterns += other.distinct_patterns
        self.chunks += other.chunks
        self.workers = max(self.workers, other.workers)
        self.sample_seconds += other.sample_seconds
        self.eval_seconds += other.eval_seconds
        self.total_seconds += other.total_seconds
        self.worker_busy_seconds += other.worker_busy_seconds
        self.chunk_timings.extend(other.chunk_timings)
        self.retries += other.retries
        self.hung_chunks += other.hung_chunks
        self.worker_errors += other.worker_errors
        self.pool_restarts += other.pool_restarts
        self.quarantined_chunks += other.quarantined_chunks
        for backend, count in other.degraded_evaluations.items():
            self.degraded_evaluations[backend] = \
                self.degraded_evaluations.get(backend, 0) + count
        self.invariant_retries += other.invariant_retries
        self.cache_evictions += other.cache_evictions
        self.resumed_verdicts += other.resumed_verdicts
        self.batched_batches += other.batched_batches
        self.batched_evaluations += other.batched_evaluations
        self.batched_fallbacks += other.batched_fallbacks

    def summary_lines(self) -> List[str]:
        """Human-readable block for benchmark reports."""
        lines = [
            f"engine: {self.trials} trials in {self.total_seconds:.2f}s "
            f"({self.trials_per_second:.0f} trials/s), "
            f"workers={self.workers}, chunks={self.chunks}",
            f"  cache: {self.cache_hits}/{self.requests} hits "
            f"({100 * self.cache_hit_rate:.1f}%), "
            f"{self.evaluations} simulator runs over "
            f"{self.distinct_patterns} distinct patterns",
            f"  timing: sample {self.sample_seconds:.2f}s, "
            f"evaluate {self.eval_seconds:.2f}s, "
            f"worker utilization {100 * self.worker_utilization:.0f}%",
        ]
        if self.batched_batches or self.batched_fallbacks:
            lines.append(
                f"  batched: {self.batched_evaluations} verdicts in "
                f"{self.batched_batches} stacked batches, "
                f"{self.batched_fallbacks} fell back to serial"
            )
        incidents = (self.retries or self.hung_chunks
                     or self.worker_errors or self.pool_restarts
                     or self.quarantined_chunks or self.degraded_total
                     or self.invariant_retries or self.cache_evictions
                     or self.resumed_verdicts)
        if incidents:
            degraded = ", ".join(
                f"{backend}={count}" for backend, count in
                sorted(self.degraded_evaluations.items())
            ) or "none"
            lines.append(
                f"  resilience: {self.retries} retries, "
                f"{self.hung_chunks} hung, "
                f"{self.worker_errors} worker errors, "
                f"{self.pool_restarts} pool restarts, "
                f"{self.quarantined_chunks} quarantined; "
                f"degraded [{degraded}], "
                f"{self.invariant_retries} invariant retries, "
                f"{self.resumed_verdicts} resumed verdicts, "
                f"{self.cache_evictions} cache evictions"
            )
        return lines

    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot for job metadata and reports.

        The service records this alongside each verdict so a cache hit
        (``evaluations == 0``) is distinguishable from a recompute.
        """
        return {
            "trials": self.trials,
            "chunks": self.chunks,
            "workers": self.workers,
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "evaluations": self.evaluations,
            "distinct_patterns": self.distinct_patterns,
            "total_seconds": self.total_seconds,
            "retries": self.retries,
            "hung_chunks": self.hung_chunks,
            "worker_errors": self.worker_errors,
            "pool_restarts": self.pool_restarts,
            "quarantined_chunks": self.quarantined_chunks,
            "degraded_evaluations": dict(sorted(
                self.degraded_evaluations.items())),
            "invariant_retries": self.invariant_retries,
            "resumed_verdicts": self.resumed_verdicts,
            "cache_evictions": self.cache_evictions,
            "batched_evaluations": self.batched_evaluations,
            "batched_batches": self.batched_batches,
            "batched_fallbacks": self.batched_fallbacks,
        }


@dataclass
class ExhaustiveSurvey:
    """Result of an engine-driven exhaustive single-fault sweep."""

    failures: List[Tuple[FaultLocation, PauliString]]
    checked: int
    stats: EngineStats


class _EvalContext:
    """Everything a worker needs to turn a pattern into a verdict.

    Carries the runtime policy's fallback ladder and chaos plan into
    forked workers (by inheritance — nothing crosses the pipe).
    """

    def __init__(self, gadget: Gadget, initial_state: SparseState,
                 evaluator: Callable[[SparseState], bool],
                 invariant: Optional[Callable[[SparseState], None]]
                 = None,
                 policy: Optional[RuntimePolicy] = None,
                 batch_size: int = 1) -> None:
        self.gadget = gadget
        self.initial_state = initial_state
        self.evaluator = evaluator
        self.invariant = invariant
        self.policy = resolve_policy(policy)
        self.batch_size = batch_size

    @property
    def eval_path(self) -> str:
        """Cache/fingerprint marker for this context's evaluation path."""
        return BATCHED_PATH if self.batch_size > 1 else SERIAL_PATH

    def evaluate(self, pattern: FaultPattern) -> bool:
        """Plain single-pattern evaluation (no chaos coordinates)."""
        return evaluate_fault_pattern(self.gadget, self.initial_state,
                                      self.evaluator, pattern,
                                      invariant=self.invariant)

    def evaluate_one(self, pattern: FaultPattern,
                     record: FallbackRecord, chunk_index: int,
                     attempt: int, in_worker: bool) -> bool:
        chaos = self.policy.chaos
        fallback = self.policy.fallback
        if fallback is not None:
            return fallback.evaluate(
                self.gadget, self.initial_state, self.evaluator,
                pattern, invariant=self.invariant, record=record,
                chaos=chaos, chunk_index=chunk_index, attempt=attempt,
                in_worker=in_worker,
            )
        if chaos is not None:
            injected = chaos.primary_backend_error(
                chunk_index, attempt, in_worker)
            if injected is not None:
                raise injected
        return evaluate_fault_pattern(self.gadget, self.initial_state,
                                      self.evaluator, pattern,
                                      invariant=self.invariant)


#: Worker result: (index, verdicts, seconds, pid, resilience payload).
_ChunkResult = Tuple[int, List[bool], float, int, Dict[str, object]]


def _evaluate_chunk(context: _EvalContext, index: int,
                    patterns: Sequence[FaultPattern], attempt: int,
                    in_worker: bool) -> _ChunkResult:
    """Evaluate one chunk under the context's runtime policy."""
    start = time.perf_counter()
    chaos = context.policy.chaos
    if chaos is not None and in_worker:
        chaos.on_chunk_start(index, attempt, in_worker=True)
    record = FallbackRecord()
    resilience: Dict[str, object]
    if context.batch_size > 1:
        verdicts, resilience = _evaluate_chunk_batched(
            context, patterns, record, index, attempt, in_worker)
    else:
        verdicts = [context.evaluate_one(pattern, record, index,
                                         attempt, in_worker)
                    for pattern in patterns]
        resilience = {}
    resilience["degraded"] = dict(record.degraded)
    resilience["invariant_retries"] = record.invariant_retries
    return (index, verdicts, time.perf_counter() - start, os.getpid(),
            resilience)


def _evaluate_chunk_batched(context: _EvalContext,
                            patterns: Sequence[FaultPattern],
                            record: FallbackRecord, index: int,
                            attempt: int, in_worker: bool
                            ) -> Tuple[List[bool], Dict[str, object]]:
    """One chunk's verdicts through the stacked batched evaluator.

    Patterns are sliced into ``batch_size`` stacks; a stack that the
    batched path cannot handle — register too wide for the lane bits
    (``SimulationError``), out of memory, or an invariant violation
    that needs the retry-once shield — degrades to the serial
    per-pattern ladder of :meth:`_EvalContext.evaluate_one`, exactly
    the rung structure a serial run would use.  Verdict values are
    unaffected either way (the lanes are bit-identical to serial
    evolution); only the accounting differs, surfaced through the
    ``batched_*`` counters of :class:`EngineStats`.
    """
    verdicts: List[bool] = []
    batches = 0
    stacked = 0
    fallbacks = 0
    for lo in range(0, len(patterns), context.batch_size):
        stack = patterns[lo:lo + context.batch_size]
        try:
            stack_verdicts = evaluate_fault_patterns_batched(
                context.gadget, context.initial_state,
                context.evaluator, stack, invariant=context.invariant)
            batches += 1
            stacked += len(stack)
        except (MemoryError, SimulationError, VerificationError):
            stack_verdicts = [
                context.evaluate_one(pattern, record, index, attempt,
                                     in_worker)
                for pattern in stack
            ]
            fallbacks += len(stack)
        verdicts.extend(stack_verdicts)
    return verdicts, {
        "batched_batches": batches,
        "batched_evaluations": stacked,
        "batched_fallbacks": fallbacks,
    }


def _eval_chunk(task: Tuple[int, List[FaultPattern], int]
                ) -> _ChunkResult:
    """Pool entry point: evaluate one chunk via the forked context."""
    index, patterns, attempt = task
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise AnalysisError("engine worker started without a context")
    return _evaluate_chunk(context, index, patterns, attempt,
                           in_worker=True)


def _chunk_slices(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


def _evaluate_patterns(context: _EvalContext,
                       patterns: List[FaultPattern],
                       workers: int,
                       chunk_size: int,
                       stats: EngineStats,
                       progress: Optional[Callable[[ProgressEvent], None]],
                       journal: Optional[CheckpointStore] = None,
                       ) -> List[bool]:
    """Verdicts for ``patterns``, fanned out when ``workers > 1``.

    Evaluation chunking never affects results (verdicts are
    independent), only scheduling granularity.  In pool mode the fan-
    out is supervised (deadlines, retries, quarantine — see
    :mod:`repro.runtime.supervisor`); completed chunks are journaled
    to ``journal`` *before* the progress callback fires, so an
    interrupt raised from ``progress`` never loses a finished chunk.
    """
    verdicts: List[bool] = [False] * len(patterns)
    if not patterns:
        return verdicts
    slices = _chunk_slices(len(patterns), chunk_size)
    payloads = [patterns[lo:hi] for lo, hi in slices]
    pool_workers = min(workers, len(payloads))
    use_pool = pool_workers > 1 and _HAS_FORK
    stats.workers = max(stats.workers, pool_workers if use_pool else 1)
    start = time.perf_counter()
    done_patterns = 0

    def _record(index: int, chunk_verdicts: List[bool],
                seconds: float, pid: int,
                resilience: Optional[Dict[str, object]] = None
                ) -> None:
        nonlocal done_patterns
        lo, hi = slices[index]
        verdicts[lo:hi] = chunk_verdicts
        done_patterns += hi - lo
        stats.worker_busy_seconds += seconds
        stats.chunk_timings.append(ChunkTiming(
            index=index, patterns=hi - lo, seconds=seconds,
            worker_pid=pid,
        ))
        if resilience:
            for backend, count in resilience.get(
                    "degraded", {}).items():
                stats.degraded_evaluations[backend] = \
                    stats.degraded_evaluations.get(backend, 0) + count
            stats.invariant_retries += \
                int(resilience.get("invariant_retries", 0))
            stats.batched_batches += \
                int(resilience.get("batched_batches", 0))
            stats.batched_evaluations += \
                int(resilience.get("batched_evaluations", 0))
            stats.batched_fallbacks += \
                int(resilience.get("batched_fallbacks", 0))
        if journal is not None:
            journal.append_verdicts(
                zip(patterns[lo:hi], chunk_verdicts))
        if progress is not None:
            progress(ProgressEvent(
                phase="evaluate", done=done_patterns,
                total=len(patterns), chunk_index=index,
                chunks_total=len(payloads),
                elapsed_seconds=time.perf_counter() - start,
            ))

    if use_pool:
        supervisor = Supervisor(context.policy.supervisor)
        global _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            report = supervisor.run(
                num_tasks=len(payloads),
                make_task=lambda index, attempt: (
                    index, payloads[index], attempt),
                worker_fn=_eval_chunk,
                workers=pool_workers,
                on_result=lambda index, result: _record(*result),
                local_eval=lambda index: _evaluate_chunk(
                    context, index, payloads[index],
                    attempt=context.policy.supervisor.max_retries + 1,
                    in_worker=False),
            )
        finally:
            _WORKER_CONTEXT = None
        stats.retries += report.retries
        stats.hung_chunks += report.expired_chunks
        stats.worker_errors += report.worker_errors
        stats.pool_restarts += report.pool_restarts
        stats.quarantined_chunks += len(report.quarantined)
    else:
        for index, chunk_patterns in enumerate(payloads):
            result = _evaluate_chunk(context, index, chunk_patterns,
                                     attempt=0, in_worker=False)
            _record(result[0], result[1], result[2], result[3],
                    result[4])
    stats.eval_seconds += time.perf_counter() - start
    return verdicts


def _resolve_verdicts(context: _EvalContext,
                      pattern_counts: Dict[FaultPattern, int],
                      memoize: bool,
                      cache: Optional[FaultPatternCache],
                      workers: int,
                      chunk_size: int,
                      stats: EngineStats,
                      progress: Optional[Callable[[ProgressEvent], None]],
                      journal: Optional[CheckpointStore] = None,
                      ) -> Dict[FaultPattern, bool]:
    """Map each distinct pattern to its verdict.

    With ``memoize`` each distinct pattern is simulated at most once
    (and not at all when the shared ``cache`` already knows it); with
    ``memoize=False`` every occurrence is simulated fresh — same
    verdicts, no reuse — which is the honest baseline for speedup
    measurements.
    """
    requests = sum(pattern_counts.values())
    stats.requests += requests
    stats.distinct_patterns += len(pattern_counts)
    verdict_map: Dict[FaultPattern, bool] = {}
    path = context.eval_path
    if memoize:
        evictions_before = cache.evictions if cache is not None else 0
        missing = [pattern for pattern in pattern_counts
                   if cache is None or not cache.contains(pattern,
                                                          path)]
        if cache is not None:
            for pattern in pattern_counts:
                if cache.contains(pattern, path):
                    verdict_map[pattern] = bool(
                        cache.get(pattern, path))
        verdicts = _evaluate_patterns(context, missing, workers,
                                      chunk_size, stats, progress,
                                      journal=journal)
        for pattern, verdict in zip(missing, verdicts):
            verdict_map[pattern] = verdict
            if cache is not None:
                cache.store(pattern, verdict, path)
        stats.evaluations += len(missing)
        stats.cache_hits += requests - len(missing)
        if cache is not None:
            cache.misses += len(missing)
            cache.hits += requests - len(missing)
            stats.cache_evictions += cache.evictions - evictions_before
    else:
        expanded: List[FaultPattern] = []
        for pattern, multiplicity in pattern_counts.items():
            expanded.extend([pattern] * multiplicity)
        verdicts = _evaluate_patterns(context, expanded, workers,
                                      chunk_size, stats, progress,
                                      journal=journal)
        for pattern, verdict in zip(expanded, verdicts):
            verdict_map[pattern] = verdict
        stats.evaluations += len(expanded)
    return verdict_map


def _location_setup(noise: Optional[NoiseModel], gadget: Gadget,
                    locations: Sequence[FaultLocation]
                    ) -> Tuple[np.ndarray, List[List[PauliString]],
                               List[int]]:
    """Precompute per-location strike probabilities and fault choices.

    The serial loops recompute ``fault_choices`` (a ``pauli_basis``
    walk) for every struck location of every trial; doing it once per
    run is a measurable win on its own.
    """
    model = noise if noise is not None else NoiseModel.uniform(1.0)
    probs = np.array([model.probability_for(loc) for loc in locations],
                     dtype=float)
    choices = [model.fault_choices(loc, gadget.num_qubits)
               for loc in locations]
    after_ops = [loc.after_op for loc in locations]
    return probs, choices, after_ops


def _spawn_chunks(seed: Optional[int], total: int, chunk_size: int,
                  stream_key: Sequence[int] = ()
                  ) -> List[Tuple[int, np.random.SeedSequence]]:
    """(chunk_length, child seed) pairs — worker-count independent.

    ``stream_key`` is the noise model's ``stream_key()``: empty for the
    baseline models (the root stays ``SeedSequence(seed)``, preserving
    every historical seeded stream byte-for-byte) and a
    fingerprint-derived spawn key for structured models, so two
    different models never share a fault stream at the same seed.
    """
    slices = _chunk_slices(total, chunk_size)
    if stream_key:
        root = np.random.SeedSequence(seed, spawn_key=tuple(stream_key))
    else:
        root = np.random.SeedSequence(seed)
    children = root.spawn(len(slices))
    return [(hi - lo, child) for (lo, hi), child in zip(slices, children)]


def chunk_seed_sequence(seed: int, chunk_index: int,
                        stream_key: Sequence[int] = ()
                        ) -> np.random.SeedSequence:
    """The SeedSequence :func:`_spawn_chunks` assigns to chunk ``i`` —
    computed directly, without knowing the total trial count.

    ``SeedSequence(seed).spawn(n)[i]`` equals
    ``SeedSequence(seed, spawn_key=(i,))`` for every explicit seed
    (spawning appends the child index to the spawn key), so a
    sequential run that decides its stopping time on the fly draws the
    *same* fault stream, chunk for chunk, as a fixed-budget run at the
    same ``(seed, chunk_size)``.  That prefix property is what makes
    early stopping bias-free at the sampling level and what the
    resume-invariance tests pin down.

    Requires an explicit seed: with ``seed=None`` each SeedSequence
    construction draws fresh OS entropy and the equivalence (and any
    notion of resuming) is meaningless.
    """
    if seed is None:
        raise AnalysisError(
            "sequential sampling requires an explicit seed: chunk "
            "streams are addressed by (seed, chunk_index) and cannot "
            "be reproduced from OS entropy"
        )
    key = tuple(int(part) for part in stream_key) + (int(chunk_index),)
    return np.random.SeedSequence(seed, spawn_key=key)


def sample_fault_chunk(noise: NoiseModel, gadget: Gadget,
                       locations: Sequence[FaultLocation],
                       probs: np.ndarray,
                       choices: List[List[PauliString]],
                       after_ops: List[int],
                       rng: np.random.Generator,
                       length: int,
                       histogram: Dict[int, int],
                       pattern_counts: Dict[FaultPattern, int]) -> None:
    """Sample ``length`` Monte-Carlo trials from one chunk RNG.

    Folds fault-count tallies into ``histogram`` and canonical
    patterns into ``pattern_counts`` in place.  This is the exact draw
    sequence the historical ``run_monte_carlo`` loop used (structured
    per-trial path, vectorised iid fast path) — extracted so the
    sequential runner can consume the same streams batch by batch.
    The seeded-stream stability tests pin the draw order; do not
    reorder RNG calls here.
    """
    if noise.structured:
        # Structured models own their sampling (correlations, weights,
        # time dependence live in the model); the vectorised iid fast
        # path below would miss all of that.
        for _ in range(length):
            sampled = noise.sample_faults(gadget.circuit, rng,
                                          locations)
            faults = [(fault.pauli, fault.after_op)
                      for fault in sampled]
            count = len(faults)
            histogram[count] = histogram.get(count, 0) + 1
            if count:
                key = canonical_pattern(faults)
                pattern_counts[key] = pattern_counts.get(key, 0) + 1
        return
    strikes = rng.random((length, len(locations)))
    for row in range(length):
        struck = np.nonzero(strikes[row] < probs)[0]
        faults: List[Fault] = []
        for loc_index in struck:
            loc_choices = choices[loc_index]
            if not loc_choices:
                continue
            pauli = loc_choices[int(rng.integers(0, len(loc_choices)))]
            faults.append((pauli, after_ops[loc_index]))
        count = len(faults)
        histogram[count] = histogram.get(count, 0) + 1
        if count:
            key = canonical_pattern(faults)
            pattern_counts[key] = pattern_counts.get(key, 0) + 1


def sample_pair_chunk(choices: List[List[PauliString]],
                      after_ops: List[int],
                      num_locations: int,
                      rng: np.random.Generator,
                      length: int,
                      pattern_counts: Dict[FaultPattern, int]) -> None:
    """Sample ``length`` uniform distinct location pairs from one chunk
    RNG, folding canonical two-fault patterns into ``pattern_counts``.

    Extracted from ``run_malignant_pairs`` unchanged (same draw order)
    so sequential pair certification shares its fault stream.
    """
    for _ in range(length):
        i = int(rng.integers(0, num_locations))
        j = int(rng.integers(0, num_locations - 1))
        if j >= i:
            j += 1
        faults: List[Fault] = []
        for loc_index in (i, j):
            loc_choices = choices[loc_index]
            pauli = loc_choices[int(rng.integers(0, len(loc_choices)))]
            faults.append((pauli, after_ops[loc_index]))
        key = canonical_pattern(faults)
        pattern_counts[key] = pattern_counts.get(key, 0) + 1


def _open_journal(checkpoint, resume: bool, seed: Optional[int],
                  memoize: bool,
                  cache: Optional[FaultPatternCache],
                  fingerprint: Dict[str, object],
                  stats: EngineStats,
                  needs_seed: bool = True,
                  eval_path: str = SERIAL_PATH,
                  ) -> Tuple[Optional[CheckpointStore],
                             Optional[FaultPatternCache]]:
    """Shared ``checkpoint=``/``resume=`` handling for the run_* entry
    points.

    Returns the opened store (or None) and the cache to use —
    checkpointing requires a cache, so one is created when the caller
    did not supply one.  On resume the journal's verdicts are
    replayed into the cache after the fingerprint check; on a fresh
    run the directory is cleared and a new header written.

    ``eval_path`` routes replayed verdicts to the run's own cache
    path.  The fingerprint already refuses cross-path resumes (the
    caller stamps ``eval_path`` into it for batched runs), so a
    journal's verdicts always re-enter the path that produced them.
    """
    store = as_store(checkpoint)
    if store is None:
        return None, cache
    if needs_seed and seed is None:
        raise AnalysisError(
            "checkpointing requires an explicit seed: an unseeded run "
            "draws OS entropy and cannot be resumed bit-identically"
        )
    if not memoize:
        raise AnalysisError(
            "checkpointing requires memoize=True (the journal replays "
            "verdicts through the fault-pattern cache)"
        )
    if cache is None:
        cache = FaultPatternCache()
    if resume and store.exists():
        store.check_fingerprint(fingerprint)
        entries = store.load_verdicts()
        for pattern, verdict in entries:
            cache.store(pattern, verdict, eval_path)
        stats.resumed_verdicts = len(entries)
    else:
        store.clear()
        store.write_header(fingerprint)
    return store, cache


def _apply_optimizer(gadget: Gadget, optimize,
                     locations) -> Tuple[Gadget, Optional[str]]:
    """Resolve the ``optimize=`` knob for a gadget workload.

    Returns the (possibly rewritten) gadget and the pipeline marker to
    stamp into the checkpoint fingerprint, or ``(gadget, None)`` when
    optimization is off.  Explicit ``locations`` are refused: fault
    locations index into the original circuit's operation list, so
    pairing them with a rewritten circuit would silently misplace
    every fault.
    """
    from repro.optimize.pipeline import (
        _resolve_pipeline,
        optimize_gadget,
    )

    pipeline = _resolve_pipeline(optimize, gadget=True)
    if pipeline is None:
        return gadget, None
    if locations is not None:
        raise AnalysisError(
            "optimize= cannot be combined with explicit locations=: "
            "fault locations reference operation indices of the "
            "original circuit; pass locations enumerated from the "
            "optimized gadget instead"
        )
    return optimize_gadget(gadget, pipeline), pipeline.marker


def run_monte_carlo(gadget: Gadget,
                    initial_state: SparseState,
                    evaluator: Callable[[SparseState], bool],
                    noise: NoiseModel,
                    trials: int,
                    locations: Optional[Sequence[FaultLocation]] = None,
                    seed: Optional[int] = None,
                    workers: int = 1,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    batch_size: int = 1,
                    memoize: bool = True,
                    cache: Optional[FaultPatternCache] = None,
                    progress: Optional[Callable[[ProgressEvent], None]]
                    = None,
                    invariant: Optional[Callable[[SparseState], None]]
                    = None,
                    checkpoint=None,
                    resume: bool = True,
                    runtime: Optional[RuntimePolicy] = None,
                    optimize=False):
    """Engine-scheduled equivalent of ``gadget_monte_carlo``.

    Returns a :class:`~repro.analysis.montecarlo.GadgetMonteCarloResult`
    with ``engine_stats`` attached.  For a fixed ``(seed, trials,
    chunk_size)`` the result is bit-identical for every ``workers``
    value, every ``batch_size`` and for ``memoize`` on or off.

    ``batch_size > 1`` routes evaluation through the vectorised
    :mod:`repro.simulators.batched` path: up to ``batch_size`` distinct
    patterns are stacked into one sparse register and advanced
    together, with per-lane amplitudes bit-identical to serial
    evolution.  Sampling, dedup, seeds and verdicts are unchanged; an
    unbatchable stack degrades automatically to the serial
    :class:`~repro.runtime.FallbackPolicy` ladder (counted in
    ``engine_stats.batched_fallbacks``).  Checkpoint fingerprints gain
    an ``eval_path`` marker for batched runs, so a journal written by
    one path refuses to silently resume under the other.

    ``invariant`` enables validation mode: every fresh simulation's
    final state is passed to the callable, which raises
    :class:`~repro.exceptions.VerificationError` on violation (see
    :mod:`repro.verify` for ready-made invariants).

    ``checkpoint`` (a path or :class:`~repro.runtime.CheckpointStore`)
    journals completed evaluation chunks; with ``resume=True`` (the
    default) an existing journal with a matching fingerprint is
    replayed first, so a killed run picks up where it stopped and
    finishes bit-identically to an uninterrupted one.  A mismatched
    or corrupted journal raises
    :class:`~repro.exceptions.CheckpointError` rather than risk a
    wrong number.  ``runtime`` tunes supervision/fallback (default:
    production :class:`~repro.runtime.RuntimePolicy`).

    ``optimize`` (``False`` | ``True`` | a qubit-preserving
    :class:`~repro.optimize.PassPipeline`) rewrites the gadget's
    circuit through the certified optimizer before fault locations are
    enumerated, so trials pay for measurably fewer locations.
    Incompatible with explicit ``locations=``.  Checkpoint
    fingerprints gain an ``optimizer`` marker (the pipeline identity),
    so an optimized journal refuses to resume an unoptimized run and
    vice versa — mirroring the ``eval_path`` marker.
    """
    from repro.analysis.montecarlo import (
        GadgetMonteCarloResult,
        _default_locations,
    )

    start = time.perf_counter()
    if not noise.samplable:
        raise AnalysisError(
            f"{type(noise).__name__} has no stochastic Pauli "
            "unravelling and cannot feed the sampling engine; compose "
            "it exactly with repro.noise.injection."
            "run_with_coherent_noise or sample its Pauli twirl"
        )
    gadget, optimizer_marker = _apply_optimizer(gadget, optimize,
                                                locations)
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    trials = _coerce_count(trials, "trials")
    workers = _coerce_workers(workers)
    chunk_size = _coerce_chunk_size(chunk_size)
    batch_size = _coerce_batch_size(batch_size)
    stats = EngineStats(trials=trials, workers=1)
    fingerprint = {
        "workload": "monte_carlo",
        "gadget": gadget.name,
        "locations": len(locations),
        "seed": seed,
        "trials": trials,
        "chunk_size": chunk_size,
        "p_gate": float(noise.p_gate),
        "p_input": float(noise.p_input),
        "p_delay": float(noise.p_delay),
        "channel": noise.channel,
    }
    if noise.structured:
        # Structured models carry their full identity; baseline
        # fingerprints stay exactly as before so existing journals
        # keep resuming.
        fingerprint["model"] = repr(noise.fingerprint())
    if batch_size > 1:
        # Serial fingerprints stay byte-identical to before (existing
        # journals keep resuming); batched runs are marked so a
        # journal never silently swaps evaluation paths.
        fingerprint["eval_path"] = BATCHED_PATH
    if optimizer_marker is not None:
        # Same contract as eval_path: unoptimized fingerprints stay
        # byte-identical, optimized journals can never silently mix
        # with unoptimized ones (the location sets differ).
        fingerprint["optimizer"] = optimizer_marker
    store, cache = _open_journal(
        checkpoint, resume, seed, memoize, cache, fingerprint, stats,
        eval_path=BATCHED_PATH if batch_size > 1 else SERIAL_PATH)
    probs, choices, after_ops = _location_setup(noise, gadget, locations)

    histogram: Dict[int, int] = {}
    pattern_counts: Dict[FaultPattern, int] = {}
    sample_start = time.perf_counter()
    chunks = _spawn_chunks(seed, trials, chunk_size,
                           stream_key=noise.stream_key())
    stats.chunks = len(chunks)
    sampled_trials = 0
    for chunk_index, (length, child) in enumerate(chunks):
        rng = np.random.default_rng(child)
        sample_fault_chunk(noise, gadget, locations, probs, choices,
                           after_ops, rng, length, histogram,
                           pattern_counts)
        sampled_trials += length
        if progress is not None:
            progress(ProgressEvent(
                phase="sample", done=sampled_trials, total=trials,
                chunk_index=chunk_index, chunks_total=len(chunks),
                elapsed_seconds=time.perf_counter() - sample_start,
            ))
    stats.sample_seconds = time.perf_counter() - sample_start
    if store is not None:
        store.write_state("cursor", {
            "sample_chunks_done": len(chunks),
            "distinct_patterns": len(pattern_counts),
        })

    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=batch_size)
    try:
        verdict_map = _resolve_verdicts(context, pattern_counts,
                                        memoize, cache, workers,
                                        chunk_size, stats, progress,
                                        journal=store)
    except KeyboardInterrupt:
        # Completed chunks are already journaled; mark the interrupt
        # so the resume path (and the operator) can see it was clean.
        if store is not None:
            store.write_state("cursor", {
                "sample_chunks_done": len(chunks),
                "distinct_patterns": len(pattern_counts),
                "interrupted": True,
            })
        raise

    failures = 0
    failures_by_count: Dict[int, int] = {}
    for pattern, multiplicity in pattern_counts.items():
        if not verdict_map[pattern]:
            failures += multiplicity
            count = len(pattern)
            failures_by_count[count] = \
                failures_by_count.get(count, 0) + multiplicity
    stats.total_seconds = time.perf_counter() - start
    if store is not None:
        store.finalize({
            "trials": trials,
            "failures": failures,
            "distinct_patterns": len(pattern_counts),
        })
    return GadgetMonteCarloResult(
        p=noise.p_gate,
        trials=trials,
        failures=failures,
        failures_by_fault_count=failures_by_count,
        fault_count_histogram=histogram,
        engine_stats=stats,
    )


def run_malignant_pairs(gadget: Gadget,
                        initial_state: SparseState,
                        evaluator: Callable[[SparseState], bool],
                        samples: int,
                        locations: Optional[Sequence[FaultLocation]]
                        = None,
                        seed: Optional[int] = None,
                        channel: str = "depolarizing",
                        workers: int = 1,
                        chunk_size: int = DEFAULT_CHUNK_SIZE,
                        batch_size: int = 1,
                        memoize: bool = True,
                        cache: Optional[FaultPatternCache] = None,
                        progress: Optional[Callable[[ProgressEvent], None]]
                        = None,
                        invariant: Optional[
                            Callable[[SparseState], None]] = None,
                        checkpoint=None,
                        resume: bool = True,
                        runtime: Optional[RuntimePolicy] = None,
                        optimize=False):
    """Engine-scheduled equivalent of ``sample_malignant_pairs``.

    ``invariant``, ``checkpoint``/``resume``, ``runtime``,
    ``batch_size`` and ``optimize`` behave as in
    :func:`run_monte_carlo`.  Pair patterns are mostly distinct, so
    this workload is evaluation-dominated and gains the most from
    ``batch_size > 1``.
    """
    from repro.analysis.montecarlo import (
        MalignantPairSample,
        _default_locations,
    )

    start = time.perf_counter()
    gadget, optimizer_marker = _apply_optimizer(gadget, optimize,
                                                locations)
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    samples = _coerce_count(samples, "samples")
    if samples > 0 and len(locations) < 2:
        raise AnalysisError(
            "malignant-pair sampling needs at least two fault locations"
        )
    workers = _coerce_workers(workers)
    chunk_size = _coerce_chunk_size(chunk_size)
    batch_size = _coerce_batch_size(batch_size)
    stats = EngineStats(trials=samples, workers=1)
    fingerprint = {
        "workload": "malignant_pairs",
        "gadget": gadget.name,
        "locations": len(locations),
        "seed": seed,
        "samples": samples,
        "chunk_size": chunk_size,
        "channel": channel,
    }
    if batch_size > 1:
        fingerprint["eval_path"] = BATCHED_PATH
    if optimizer_marker is not None:
        fingerprint["optimizer"] = optimizer_marker
    store, cache = _open_journal(
        checkpoint, resume, seed, memoize, cache, fingerprint, stats,
        eval_path=BATCHED_PATH if batch_size > 1 else SERIAL_PATH)
    model = NoiseModel.uniform(1.0, channel=channel)
    _, choices, after_ops = _location_setup(model, gadget, locations)

    pattern_counts: Dict[FaultPattern, int] = {}
    sample_start = time.perf_counter()
    chunks = _spawn_chunks(seed, samples, chunk_size)
    stats.chunks = len(chunks)
    count = len(locations)
    sampled = 0
    for chunk_index, (length, child) in enumerate(chunks):
        rng = np.random.default_rng(child)
        sample_pair_chunk(choices, after_ops, count, rng, length,
                          pattern_counts)
        sampled += length
        if progress is not None:
            progress(ProgressEvent(
                phase="sample", done=sampled, total=samples,
                chunk_index=chunk_index, chunks_total=len(chunks),
                elapsed_seconds=time.perf_counter() - sample_start,
            ))
    stats.sample_seconds = time.perf_counter() - sample_start
    if store is not None:
        store.write_state("cursor", {
            "sample_chunks_done": len(chunks),
            "distinct_patterns": len(pattern_counts),
        })

    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=batch_size)
    try:
        verdict_map = _resolve_verdicts(context, pattern_counts,
                                        memoize, cache, workers,
                                        chunk_size, stats, progress,
                                        journal=store)
    except KeyboardInterrupt:
        if store is not None:
            store.write_state("cursor", {
                "sample_chunks_done": len(chunks),
                "distinct_patterns": len(pattern_counts),
                "interrupted": True,
            })
        raise
    malignant = sum(multiplicity
                    for pattern, multiplicity in pattern_counts.items()
                    if not verdict_map[pattern])
    stats.total_seconds = time.perf_counter() - start
    if store is not None:
        store.finalize({"samples": samples, "malignant": malignant})
    return MalignantPairSample(
        samples=samples,
        malignant=malignant,
        num_locations=count,
        engine_stats=stats,
    )


def run_exhaustive(gadget: Gadget,
                   initial_state: SparseState,
                   evaluator: Callable[[SparseState], bool],
                   locations: Optional[Sequence[FaultLocation]] = None,
                   channel: str = "depolarizing",
                   workers: int = 1,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   batch_size: int = 1,
                   memoize: bool = True,
                   cache: Optional[FaultPatternCache] = None,
                   progress: Optional[Callable[[ProgressEvent], None]]
                   = None,
                   invariant: Optional[Callable[[SparseState], None]]
                   = None,
                   checkpoint=None,
                   resume: bool = True,
                   runtime: Optional[RuntimePolicy] = None,
                   optimize=False) -> ExhaustiveSurvey:
    """Engine-scheduled exhaustive single-fault certification.

    The failure list preserves the serial (location, pauli) order, so
    it is interchangeable with ``exhaustive_single_faults_sparse``.
    Memoization deduplicates coincident faults (e.g. a delay fault
    anchored at the same ``after_op`` as an equal gate-location Pauli).
    ``checkpoint``/``resume``, ``runtime`` and ``optimize`` behave as
    in :func:`run_monte_carlo`; the enumeration is deterministic, so
    no seed is required to resume.
    """
    from repro.analysis.montecarlo import _default_locations

    start = time.perf_counter()
    gadget, optimizer_marker = _apply_optimizer(gadget, optimize,
                                                locations)
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    workers = _coerce_workers(workers)
    chunk_size = _coerce_chunk_size(chunk_size)
    batch_size = _coerce_batch_size(batch_size)
    model = NoiseModel.uniform(1.0, channel=channel)

    items: List[Tuple[FaultLocation, PauliString, FaultPattern]] = []
    for location in locations:
        for pauli in model.fault_choices(location, gadget.num_qubits):
            items.append((location, pauli,
                          canonical_pattern([(pauli, location.after_op)])))
    stats = EngineStats(trials=len(items), workers=1, chunks=0)
    fingerprint = {
        "workload": "exhaustive",
        "gadget": gadget.name,
        "locations": len(locations),
        "items": len(items),
        "chunk_size": chunk_size,
        "channel": channel,
    }
    if batch_size > 1:
        fingerprint["eval_path"] = BATCHED_PATH
    if optimizer_marker is not None:
        fingerprint["optimizer"] = optimizer_marker
    store, cache = _open_journal(
        checkpoint, resume, None, memoize, cache, fingerprint, stats,
        needs_seed=False,
        eval_path=BATCHED_PATH if batch_size > 1 else SERIAL_PATH)
    pattern_counts: Dict[FaultPattern, int] = {}
    for _, _, key in items:
        pattern_counts[key] = pattern_counts.get(key, 0) + 1
    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=batch_size)
    try:
        verdict_map = _resolve_verdicts(context, pattern_counts,
                                        memoize, cache, workers,
                                        chunk_size, stats, progress,
                                        journal=store)
    except KeyboardInterrupt:
        if store is not None:
            store.write_state("cursor", {"interrupted": True})
        raise
    failures = [(location, pauli) for location, pauli, key in items
                if not verdict_map[key]]
    stats.total_seconds = time.perf_counter() - start
    if store is not None:
        store.finalize({"checked": len(items),
                        "failures": len(failures)})
    return ExhaustiveSurvey(failures=failures, checked=len(items),
                            stats=stats)
