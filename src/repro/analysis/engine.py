"""Parallel fault-injection execution engine.

Every O(p^2) curve and threshold estimate in the reproduction is a
statistical statement over a huge fault-sample space (Shor
quant-ph/9605011, Preskill quant-ph/9712048), produced until now by
the strictly serial loops in :mod:`repro.analysis.montecarlo`.  This
module is the scalable replacement.  It runs the same three workloads
— stochastic Monte-Carlo trials, exhaustive single-fault enumeration
and malignant-pair sampling — through a shared three-phase schedule:

1. **Sample** (parent process, deterministic).  Trials are split into
   fixed-size chunks; chunk ``c`` draws its faults from an RNG seeded
   with ``SeedSequence(seed).spawn(n_chunks)[c]``.  The chunk layout
   depends only on ``(seed, trials, chunk_size)``, never on the worker
   count, so a seeded run is bit-identical for ``workers=1`` and
   ``workers=64``.  Location strike draws are vectorised.
2. **Deduplicate.**  Each sampled fault set is canonicalised to a
   sorted ``((pauli, after_op), ...)`` tuple.  At low p most non-empty
   samples are single-fault repeats, so the number of *distinct*
   patterns is far below the number of trials; verdicts are reused
   through a :class:`FaultPatternCache` instead of re-running the
   sparse simulator.  Deduplication happens in the parent, so workers
   never simulate the same pattern twice regardless of scheduling.
3. **Evaluate** (worker pool).  Only cache-missing patterns are
   simulated, fanned out across a ``multiprocessing`` fork pool in
   chunks.  Verdicts are independent booleans, so evaluation order
   cannot affect results.

Caching assumes evaluators are *phase-insensitive*: two fault lists
with the same canonical pattern can differ by a global phase (Paulis
inserted at the same point in either order), which every shipped
evaluator — overlap magnitudes and basis-term predicates — ignores.

The platform must support ``fork`` for ``workers > 1`` (fork lets
workers inherit the gadget/evaluator closures without pickling); where
it is unavailable the engine transparently degrades to in-process
evaluation with identical results.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.circuits.pauli import PauliString
from repro.exceptions import AnalysisError
from repro.ft.gadget import Gadget, apply_circuit_with_faults
from repro.noise.locations import FaultLocation
from repro.noise.model import NoiseModel
from repro.simulators.sparse import SparseState

#: One concrete fault: (pauli, after_op) exactly as the injector takes it.
Fault = Tuple[PauliString, int]
#: Canonicalised fault set (sorted tuple of faults) — the cache key.
FaultPattern = Tuple[Fault, ...]

#: Default number of trials sampled per RNG chunk.  Part of the
#: determinism contract: results depend on (seed, trials, chunk_size).
DEFAULT_CHUNK_SIZE = 256

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Fork-inherited evaluation context for pool workers (set in the
#: parent immediately before the pool is created; children copy it at
#: fork time, so nothing unpicklable ever crosses the pipe).
_WORKER_CONTEXT: Optional["_EvalContext"] = None


def _fault_sort_key(fault: Fault) -> Tuple[int, Tuple[int, ...],
                                           Tuple[int, ...], int]:
    pauli, after_op = fault
    return (after_op, pauli.x_bits, pauli.z_bits, pauli.phase)


def canonical_pattern(faults: Sequence[Fault]) -> FaultPattern:
    """Order-independent canonical form of a sampled fault set."""
    return tuple(sorted(faults, key=_fault_sort_key))


def evaluate_fault_pattern(gadget: Gadget, initial_state: SparseState,
                           evaluator: Callable[[SparseState], bool],
                           faults: Sequence[Fault],
                           invariant: Optional[
                               Callable[[SparseState], None]] = None
                           ) -> bool:
    """Fresh (uncached) simulation of one fault pattern.

    ``invariant`` is the differential-verification hook: when given,
    it is called with the final state of every fresh simulation and
    must raise :class:`~repro.exceptions.VerificationError` on
    violation (see :func:`repro.verify.norm_invariant` for ready-made
    checks).  Cached verdicts skip the invariant — it certifies the
    simulator runs, which is exactly the set of states that were
    actually computed.
    """
    state = initial_state.copy()
    apply_circuit_with_faults(state, gadget.circuit, list(faults))
    if invariant is not None:
        invariant(state)
    return bool(evaluator(state))


class FaultPatternCache:
    """Memoised verdicts keyed by canonical fault pattern.

    Verdicts depend only on the fault pattern (the gadget, input state
    and evaluator are fixed per cache), not on the error rate p, so
    one cache can be shared across an entire p sweep.
    """

    def __init__(self) -> None:
        self._verdicts: Dict[FaultPattern, bool] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._verdicts)

    def __contains__(self, pattern: FaultPattern) -> bool:
        return pattern in self._verdicts

    def get(self, pattern: FaultPattern) -> Optional[bool]:
        return self._verdicts.get(pattern)

    def store(self, pattern: FaultPattern, verdict: bool) -> None:
        self._verdicts[pattern] = bool(verdict)

    def items(self):
        """(pattern, verdict) pairs, in first-stored order."""
        return self._verdicts.items()

    def clear(self) -> None:
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock record for one evaluation chunk."""

    index: int
    patterns: int
    seconds: float
    worker_pid: int


@dataclass(frozen=True)
class ProgressEvent:
    """Passed to the ``progress`` callback after each chunk completes.

    ``phase`` is 'sample' or 'evaluate'; ``done``/``total`` count work
    items (trials for sampling, patterns for evaluation).
    """

    phase: str
    done: int
    total: int
    chunk_index: int
    chunks_total: int
    elapsed_seconds: float


@dataclass
class EngineStats:
    """Per-run instrumentation surfaced through benchmark reports."""

    trials: int = 0
    requests: int = 0       # verdict lookups (non-empty trials/samples)
    evaluations: int = 0    # fresh simulator runs
    cache_hits: int = 0
    distinct_patterns: int = 0
    chunks: int = 0
    workers: int = 1
    sample_seconds: float = 0.0
    eval_seconds: float = 0.0
    total_seconds: float = 0.0
    worker_busy_seconds: float = 0.0
    chunk_timings: List[ChunkTiming] = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def trials_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.trials / self.total_seconds

    @property
    def worker_utilization(self) -> float:
        """Busy time across workers / (evaluation wall time * workers)."""
        denominator = self.eval_seconds * max(self.workers, 1)
        if denominator <= 0:
            return 0.0
        return min(1.0, self.worker_busy_seconds / denominator)

    def summary_lines(self) -> List[str]:
        """Human-readable block for benchmark reports."""
        return [
            f"engine: {self.trials} trials in {self.total_seconds:.2f}s "
            f"({self.trials_per_second:.0f} trials/s), "
            f"workers={self.workers}, chunks={self.chunks}",
            f"  cache: {self.cache_hits}/{self.requests} hits "
            f"({100 * self.cache_hit_rate:.1f}%), "
            f"{self.evaluations} simulator runs over "
            f"{self.distinct_patterns} distinct patterns",
            f"  timing: sample {self.sample_seconds:.2f}s, "
            f"evaluate {self.eval_seconds:.2f}s, "
            f"worker utilization {100 * self.worker_utilization:.0f}%",
        ]


@dataclass
class ExhaustiveSurvey:
    """Result of an engine-driven exhaustive single-fault sweep."""

    failures: List[Tuple[FaultLocation, PauliString]]
    checked: int
    stats: EngineStats


class _EvalContext:
    """Everything a worker needs to turn a pattern into a verdict."""

    def __init__(self, gadget: Gadget, initial_state: SparseState,
                 evaluator: Callable[[SparseState], bool],
                 invariant: Optional[Callable[[SparseState], None]]
                 = None) -> None:
        self.gadget = gadget
        self.initial_state = initial_state
        self.evaluator = evaluator
        self.invariant = invariant

    def evaluate(self, pattern: FaultPattern) -> bool:
        return evaluate_fault_pattern(self.gadget, self.initial_state,
                                      self.evaluator, pattern,
                                      invariant=self.invariant)


def _eval_chunk(task: Tuple[int, List[FaultPattern]]
                ) -> Tuple[int, List[bool], float, int]:
    """Pool entry point: evaluate one chunk via the forked context."""
    index, patterns = task
    context = _WORKER_CONTEXT
    if context is None:  # pragma: no cover - defensive
        raise AnalysisError("engine worker started without a context")
    start = time.perf_counter()
    verdicts = [context.evaluate(pattern) for pattern in patterns]
    return index, verdicts, time.perf_counter() - start, os.getpid()


def _chunk_slices(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(start, min(start + chunk_size, total))
            for start in range(0, total, chunk_size)]


def _evaluate_patterns(context: _EvalContext,
                       patterns: List[FaultPattern],
                       workers: int,
                       chunk_size: int,
                       stats: EngineStats,
                       progress: Optional[Callable[[ProgressEvent], None]],
                       ) -> List[bool]:
    """Verdicts for ``patterns``, fanned out when ``workers > 1``.

    Evaluation chunking never affects results (verdicts are
    independent), only scheduling granularity.
    """
    verdicts: List[bool] = [False] * len(patterns)
    if not patterns:
        return verdicts
    slices = _chunk_slices(len(patterns), chunk_size)
    tasks = [(i, patterns[lo:hi]) for i, (lo, hi) in enumerate(slices)]
    pool_workers = min(workers, len(tasks))
    use_pool = pool_workers > 1 and _HAS_FORK
    stats.workers = max(stats.workers, pool_workers if use_pool else 1)
    start = time.perf_counter()
    done_patterns = 0

    def _record(index: int, chunk_verdicts: List[bool],
                seconds: float, pid: int) -> None:
        nonlocal done_patterns
        lo, hi = slices[index]
        verdicts[lo:hi] = chunk_verdicts
        done_patterns += hi - lo
        stats.worker_busy_seconds += seconds
        stats.chunk_timings.append(ChunkTiming(
            index=index, patterns=hi - lo, seconds=seconds,
            worker_pid=pid,
        ))
        if progress is not None:
            progress(ProgressEvent(
                phase="evaluate", done=done_patterns,
                total=len(patterns), chunk_index=index,
                chunks_total=len(tasks),
                elapsed_seconds=time.perf_counter() - start,
            ))

    if use_pool:
        global _WORKER_CONTEXT
        _WORKER_CONTEXT = context
        try:
            fork = multiprocessing.get_context("fork")
            with fork.Pool(processes=pool_workers) as pool:
                for result in pool.imap(_eval_chunk, tasks):
                    _record(*result)
        finally:
            _WORKER_CONTEXT = None
    else:
        for task in tasks:
            chunk_start = time.perf_counter()
            index, chunk_patterns = task
            chunk_verdicts = [context.evaluate(p) for p in chunk_patterns]
            _record(index, chunk_verdicts,
                    time.perf_counter() - chunk_start, os.getpid())
    stats.eval_seconds += time.perf_counter() - start
    return verdicts


def _resolve_verdicts(context: _EvalContext,
                      pattern_counts: Dict[FaultPattern, int],
                      memoize: bool,
                      cache: Optional[FaultPatternCache],
                      workers: int,
                      chunk_size: int,
                      stats: EngineStats,
                      progress: Optional[Callable[[ProgressEvent], None]],
                      ) -> Dict[FaultPattern, bool]:
    """Map each distinct pattern to its verdict.

    With ``memoize`` each distinct pattern is simulated at most once
    (and not at all when the shared ``cache`` already knows it); with
    ``memoize=False`` every occurrence is simulated fresh — same
    verdicts, no reuse — which is the honest baseline for speedup
    measurements.
    """
    requests = sum(pattern_counts.values())
    stats.requests += requests
    stats.distinct_patterns += len(pattern_counts)
    verdict_map: Dict[FaultPattern, bool] = {}
    if memoize:
        missing = [pattern for pattern in pattern_counts
                   if cache is None or pattern not in cache]
        if cache is not None:
            for pattern in pattern_counts:
                if pattern in cache:
                    verdict_map[pattern] = bool(cache.get(pattern))
        verdicts = _evaluate_patterns(context, missing, workers,
                                      chunk_size, stats, progress)
        for pattern, verdict in zip(missing, verdicts):
            verdict_map[pattern] = verdict
            if cache is not None:
                cache.store(pattern, verdict)
        stats.evaluations += len(missing)
        stats.cache_hits += requests - len(missing)
        if cache is not None:
            cache.misses += len(missing)
            cache.hits += requests - len(missing)
    else:
        expanded: List[FaultPattern] = []
        for pattern, multiplicity in pattern_counts.items():
            expanded.extend([pattern] * multiplicity)
        verdicts = _evaluate_patterns(context, expanded, workers,
                                      chunk_size, stats, progress)
        for pattern, verdict in zip(expanded, verdicts):
            verdict_map[pattern] = verdict
        stats.evaluations += len(expanded)
    return verdict_map


def _location_setup(noise: Optional[NoiseModel], gadget: Gadget,
                    locations: Sequence[FaultLocation]
                    ) -> Tuple[np.ndarray, List[List[PauliString]],
                               List[int]]:
    """Precompute per-location strike probabilities and fault choices.

    The serial loops recompute ``fault_choices`` (a ``pauli_basis``
    walk) for every struck location of every trial; doing it once per
    run is a measurable win on its own.
    """
    model = noise if noise is not None else NoiseModel.uniform(1.0)
    probs = np.array([model.probability_for(loc) for loc in locations],
                     dtype=float)
    choices = [model.fault_choices(loc, gadget.num_qubits)
               for loc in locations]
    after_ops = [loc.after_op for loc in locations]
    return probs, choices, after_ops


def _spawn_chunks(seed: Optional[int], total: int, chunk_size: int
                  ) -> List[Tuple[int, np.random.SeedSequence]]:
    """(chunk_length, child seed) pairs — worker-count independent."""
    slices = _chunk_slices(total, chunk_size)
    children = np.random.SeedSequence(seed).spawn(len(slices))
    return [(hi - lo, child) for (lo, hi), child in zip(slices, children)]


def run_monte_carlo(gadget: Gadget,
                    initial_state: SparseState,
                    evaluator: Callable[[SparseState], bool],
                    noise: NoiseModel,
                    trials: int,
                    locations: Optional[Sequence[FaultLocation]] = None,
                    seed: Optional[int] = None,
                    workers: int = 1,
                    chunk_size: int = DEFAULT_CHUNK_SIZE,
                    memoize: bool = True,
                    cache: Optional[FaultPatternCache] = None,
                    progress: Optional[Callable[[ProgressEvent], None]]
                    = None,
                    invariant: Optional[Callable[[SparseState], None]]
                    = None):
    """Engine-scheduled equivalent of ``gadget_monte_carlo``.

    Returns a :class:`~repro.analysis.montecarlo.GadgetMonteCarloResult`
    with ``engine_stats`` attached.  For a fixed ``(seed, trials,
    chunk_size)`` the result is bit-identical for every ``workers``
    value and for ``memoize`` on or off.

    ``invariant`` enables validation mode: every fresh simulation's
    final state is passed to the callable, which raises
    :class:`~repro.exceptions.VerificationError` on violation (see
    :mod:`repro.verify` for ready-made invariants).
    """
    from repro.analysis.montecarlo import (
        GadgetMonteCarloResult,
        _default_locations,
    )

    start = time.perf_counter()
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    trials = int(trials)
    if trials < 0:
        raise AnalysisError("trials must be non-negative")
    workers = max(1, int(workers))
    chunk_size = max(1, int(chunk_size))
    stats = EngineStats(trials=trials, workers=1)
    probs, choices, after_ops = _location_setup(noise, gadget, locations)

    histogram: Dict[int, int] = {}
    pattern_counts: Dict[FaultPattern, int] = {}
    sample_start = time.perf_counter()
    chunks = _spawn_chunks(seed, trials, chunk_size)
    stats.chunks = len(chunks)
    sampled_trials = 0
    for chunk_index, (length, child) in enumerate(chunks):
        rng = np.random.default_rng(child)
        strikes = rng.random((length, len(locations)))
        for row in range(length):
            struck = np.nonzero(strikes[row] < probs)[0]
            faults: List[Fault] = []
            for loc_index in struck:
                loc_choices = choices[loc_index]
                if not loc_choices:
                    continue
                pauli = loc_choices[int(rng.integers(0, len(loc_choices)))]
                faults.append((pauli, after_ops[loc_index]))
            count = len(faults)
            histogram[count] = histogram.get(count, 0) + 1
            if count:
                key = canonical_pattern(faults)
                pattern_counts[key] = pattern_counts.get(key, 0) + 1
        sampled_trials += length
        if progress is not None:
            progress(ProgressEvent(
                phase="sample", done=sampled_trials, total=trials,
                chunk_index=chunk_index, chunks_total=len(chunks),
                elapsed_seconds=time.perf_counter() - sample_start,
            ))
    stats.sample_seconds = time.perf_counter() - sample_start

    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant)
    verdict_map = _resolve_verdicts(context, pattern_counts, memoize,
                                    cache, workers, chunk_size, stats,
                                    progress)

    failures = 0
    failures_by_count: Dict[int, int] = {}
    for pattern, multiplicity in pattern_counts.items():
        if not verdict_map[pattern]:
            failures += multiplicity
            count = len(pattern)
            failures_by_count[count] = \
                failures_by_count.get(count, 0) + multiplicity
    stats.total_seconds = time.perf_counter() - start
    return GadgetMonteCarloResult(
        p=noise.p_gate,
        trials=trials,
        failures=failures,
        failures_by_fault_count=failures_by_count,
        fault_count_histogram=histogram,
        engine_stats=stats,
    )


def run_malignant_pairs(gadget: Gadget,
                        initial_state: SparseState,
                        evaluator: Callable[[SparseState], bool],
                        samples: int,
                        locations: Optional[Sequence[FaultLocation]]
                        = None,
                        seed: Optional[int] = None,
                        channel: str = "depolarizing",
                        workers: int = 1,
                        chunk_size: int = DEFAULT_CHUNK_SIZE,
                        memoize: bool = True,
                        cache: Optional[FaultPatternCache] = None,
                        progress: Optional[Callable[[ProgressEvent], None]]
                        = None,
                        invariant: Optional[
                            Callable[[SparseState], None]] = None):
    """Engine-scheduled equivalent of ``sample_malignant_pairs``.

    ``invariant`` behaves as in :func:`run_monte_carlo`.
    """
    from repro.analysis.montecarlo import (
        MalignantPairSample,
        _default_locations,
    )

    start = time.perf_counter()
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    samples = int(samples)
    if samples < 0:
        raise AnalysisError("samples must be non-negative")
    if samples > 0 and len(locations) < 2:
        raise AnalysisError(
            "malignant-pair sampling needs at least two fault locations"
        )
    workers = max(1, int(workers))
    chunk_size = max(1, int(chunk_size))
    stats = EngineStats(trials=samples, workers=1)
    model = NoiseModel.uniform(1.0, channel=channel)
    _, choices, after_ops = _location_setup(model, gadget, locations)

    pattern_counts: Dict[FaultPattern, int] = {}
    sample_start = time.perf_counter()
    chunks = _spawn_chunks(seed, samples, chunk_size)
    stats.chunks = len(chunks)
    count = len(locations)
    sampled = 0
    for chunk_index, (length, child) in enumerate(chunks):
        rng = np.random.default_rng(child)
        for _ in range(length):
            i = int(rng.integers(0, count))
            j = int(rng.integers(0, count - 1))
            if j >= i:
                j += 1
            faults: List[Fault] = []
            for loc_index in (i, j):
                loc_choices = choices[loc_index]
                pauli = loc_choices[int(rng.integers(0, len(loc_choices)))]
                faults.append((pauli, after_ops[loc_index]))
            key = canonical_pattern(faults)
            pattern_counts[key] = pattern_counts.get(key, 0) + 1
        sampled += length
        if progress is not None:
            progress(ProgressEvent(
                phase="sample", done=sampled, total=samples,
                chunk_index=chunk_index, chunks_total=len(chunks),
                elapsed_seconds=time.perf_counter() - sample_start,
            ))
    stats.sample_seconds = time.perf_counter() - sample_start

    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant)
    verdict_map = _resolve_verdicts(context, pattern_counts, memoize,
                                    cache, workers, chunk_size, stats,
                                    progress)
    malignant = sum(multiplicity
                    for pattern, multiplicity in pattern_counts.items()
                    if not verdict_map[pattern])
    stats.total_seconds = time.perf_counter() - start
    return MalignantPairSample(
        samples=samples,
        malignant=malignant,
        num_locations=count,
        engine_stats=stats,
    )


def run_exhaustive(gadget: Gadget,
                   initial_state: SparseState,
                   evaluator: Callable[[SparseState], bool],
                   locations: Optional[Sequence[FaultLocation]] = None,
                   channel: str = "depolarizing",
                   workers: int = 1,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   memoize: bool = True,
                   cache: Optional[FaultPatternCache] = None,
                   progress: Optional[Callable[[ProgressEvent], None]]
                   = None,
                   invariant: Optional[Callable[[SparseState], None]]
                   = None) -> ExhaustiveSurvey:
    """Engine-scheduled exhaustive single-fault certification.

    The failure list preserves the serial (location, pauli) order, so
    it is interchangeable with ``exhaustive_single_faults_sparse``.
    Memoization deduplicates coincident faults (e.g. a delay fault
    anchored at the same ``after_op`` as an equal gate-location Pauli).
    """
    from repro.analysis.montecarlo import _default_locations

    start = time.perf_counter()
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    workers = max(1, int(workers))
    chunk_size = max(1, int(chunk_size))
    model = NoiseModel.uniform(1.0, channel=channel)

    items: List[Tuple[FaultLocation, PauliString, FaultPattern]] = []
    for location in locations:
        for pauli in model.fault_choices(location, gadget.num_qubits):
            items.append((location, pauli,
                          canonical_pattern([(pauli, location.after_op)])))
    stats = EngineStats(trials=len(items), workers=1, chunks=0)
    pattern_counts: Dict[FaultPattern, int] = {}
    for _, _, key in items:
        pattern_counts[key] = pattern_counts.get(key, 0) + 1
    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant)
    verdict_map = _resolve_verdicts(context, pattern_counts, memoize,
                                    cache, workers, chunk_size, stats,
                                    progress)
    failures = [(location, pauli) for location, pauli, key in items
                if not verdict_map[key]]
    stats.total_seconds = time.perf_counter() - start
    return ExhaustiveSurvey(failures=failures, checked=len(items),
                            stats=stats)


def resolve_workers(parallel: bool, workers: Optional[int]) -> int:
    """Shared resolution of the public ``parallel=``/``workers=`` knobs."""
    if workers is not None:
        return max(1, int(workers))
    if parallel:
        return max(1, os.cpu_count() or 1)
    return 1
