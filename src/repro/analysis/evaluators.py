"""Standard acceptance evaluators for gadget outputs.

An *evaluator* maps a gadget's (possibly fault-corrupted) output state
to accept/reject.  The shared definition of "acceptable" throughout
the experiments: after IDEAL error correction of the protected blocks,
the intended logical output state is recovered exactly (junk registers
may hold anything).  This matches the paper's failure notion — a
gadget fails only when it leaves an *uncorrectable* error behind.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.codes.quantum.css import CssCode
from repro.ft.gadget import Gadget
from repro.ft.ideal_recovery import apply_perfect_recovery
from repro.ft.ngate import classical_majority_value
from repro.simulators.sparse import SparseState

_DEFAULT_TOLERANCE = 1e-7


def recovered_overlap_evaluator(gadget: Gadget, code: CssCode,
                                blocks: Sequence[str],
                                expected: SparseState,
                                tolerance: float = _DEFAULT_TOLERANCE
                                ) -> Callable[[SparseState], bool]:
    """Accept when ideal recovery restores the expected block state.

    Args:
        gadget: supplies the register layout.
        code: the CSS code protecting the blocks.
        blocks: register names, concatenated in order to match
            ``expected``.
        expected: the ideal joint state of those blocks.
        tolerance: acceptable deviation from overlap 1.
    """
    qubit_lists = [list(gadget.qubits(name)) for name in blocks]
    all_qubits: List[int] = [q for qubits in qubit_lists for q in qubits]

    def evaluate(state: SparseState) -> bool:
        scratch = state.copy()
        for qubits in qubit_lists:
            apply_perfect_recovery(scratch, qubits, code)
        overlap = scratch.block_overlap(all_qubits, expected)
        return overlap > 1.0 - tolerance

    return evaluate


def n_gadget_evaluator(gadget: Gadget, code: CssCode,
                       logical_bit: int
                       ) -> Callable[[SparseState], bool]:
    """Per-basis-term acceptance for the N gadget on a basis input.

    Every computational-basis term of the output must have

    * at most floor((m-1)/2) classical-ancilla bits differing from the
      input's logical value (majority/repetition radius), and
    * a quantum-ancilla word within the code's correction radius of a
      codeword carrying that same logical value.

    Phase errors are ignored on both blocks: the classical ancilla has
    no phase to protect and the quantum ancilla never touches data
    again (paper Sec. 4.1/4.2).
    """
    classical = gadget.qubits("classical")
    quantum = gadget.qubits("quantum")
    tolerance = max(0, (len(classical) - 1) // 2)
    classical_code = code.classical_code

    def evaluate(state: SparseState) -> bool:
        top = state.num_qubits - 1
        for index in state.iter_ints():
            wrong = sum(
                ((index >> (top - qubit)) & 1) != logical_bit
                for qubit in classical
            )
            if wrong > tolerance:
                return False
            word = [(index >> (top - qubit)) & 1 for qubit in quantum]
            try:
                corrected = classical_code.correct(word)
            except Exception:
                return False
            if code.logical_readout(corrected) != logical_bit:
                return False
            flips = sum(int(w != c) for w, c in zip(word, corrected))
            if flips > code.correctable_errors:
                return False
        return True

    return evaluate


def classical_block_value_evaluator(gadget: Gadget, block: str,
                                    expected_bit: int,
                                    max_wrong: int
                                    ) -> Callable[[SparseState], bool]:
    """Accept when a classical block majority-decodes to the bit with
    at most ``max_wrong`` corrupted positions in every basis term."""
    qubits = gadget.qubits(block)

    def evaluate(state: SparseState) -> bool:
        top = state.num_qubits - 1
        for index in state.iter_ints():
            bits = [(index >> (top - qubit)) & 1 for qubit in qubits]
            wrong = sum(int(b != expected_bit) for b in bits)
            if wrong > max_wrong:
                return False
            if classical_majority_value(bits) != expected_bit:
                return False
        return True

    return evaluate
