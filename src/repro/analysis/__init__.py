"""Fault analysis: propagation surveys, counting thresholds, scaling."""

from repro.analysis.engine import (
    DEFAULT_CHUNK_SIZE,
    EngineStats,
    ExhaustiveSurvey,
    FaultPatternCache,
    ProgressEvent,
    canonical_pattern,
    evaluate_fault_pattern,
)
from repro.analysis.evaluators import (
    classical_block_value_evaluator,
    n_gadget_evaluator,
    recovered_overlap_evaluator,
)
from repro.analysis.montecarlo import (
    GadgetMonteCarloResult,
    MalignantPairSample,
    exhaustive_single_faults_sparse,
    gadget_monte_carlo,
    sample_malignant_pairs,
    sweep_p,
)
from repro.analysis.propagation import (
    GadgetFaultAnalyzer,
    ResidualSignature,
    SingleFaultSurvey,
)
from repro.analysis.scaling import (
    PowerLawFit,
    fit_power_law,
    format_series,
    scaling_is_linear,
    scaling_is_quadratic,
)
from repro.analysis.stress import (
    StressReport,
    StressVerdict,
    certify_phase_immunity,
    gadget_cases,
    majority_burst_break_point,
    stress_certify,
    structured_model_family,
)
from repro.analysis.threshold import (
    ThresholdReport,
    analyze_gadget,
    sampled_threshold_report,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "EngineStats",
    "ExhaustiveSurvey",
    "FaultPatternCache",
    "GadgetFaultAnalyzer",
    "GadgetMonteCarloResult",
    "MalignantPairSample",
    "PowerLawFit",
    "ProgressEvent",
    "ResidualSignature",
    "SingleFaultSurvey",
    "StressReport",
    "StressVerdict",
    "ThresholdReport",
    "analyze_gadget",
    "canonical_pattern",
    "certify_phase_immunity",
    "classical_block_value_evaluator",
    "evaluate_fault_pattern",
    "exhaustive_single_faults_sparse",
    "fit_power_law",
    "format_series",
    "gadget_cases",
    "gadget_monte_carlo",
    "majority_burst_break_point",
    "n_gadget_evaluator",
    "recovered_overlap_evaluator",
    "sample_malignant_pairs",
    "sampled_threshold_report",
    "scaling_is_linear",
    "scaling_is_quadratic",
    "stress_certify",
    "structured_model_family",
]
