"""Fault analysis: propagation surveys, counting thresholds, scaling."""

from repro.analysis.evaluators import (
    classical_block_value_evaluator,
    n_gadget_evaluator,
    recovered_overlap_evaluator,
)
from repro.analysis.montecarlo import (
    GadgetMonteCarloResult,
    MalignantPairSample,
    exhaustive_single_faults_sparse,
    gadget_monte_carlo,
    sample_malignant_pairs,
    sweep_p,
)
from repro.analysis.propagation import (
    GadgetFaultAnalyzer,
    ResidualSignature,
    SingleFaultSurvey,
)
from repro.analysis.scaling import (
    PowerLawFit,
    fit_power_law,
    format_series,
    scaling_is_linear,
    scaling_is_quadratic,
)
from repro.analysis.threshold import ThresholdReport, analyze_gadget

__all__ = [
    "GadgetFaultAnalyzer",
    "GadgetMonteCarloResult",
    "MalignantPairSample",
    "PowerLawFit",
    "ResidualSignature",
    "SingleFaultSurvey",
    "ThresholdReport",
    "analyze_gadget",
    "classical_block_value_evaluator",
    "exhaustive_single_faults_sparse",
    "fit_power_law",
    "format_series",
    "gadget_monte_carlo",
    "n_gadget_evaluator",
    "recovered_overlap_evaluator",
    "sample_malignant_pairs",
    "scaling_is_linear",
    "scaling_is_quadratic",
    "sweep_p",
]
