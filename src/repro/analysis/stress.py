"""Protocol stress certification under structured noise.

PR 3 proved the *harness* never lies (chaos-certified runtime); this
module proves what the *protocol* actually withstands.  It sweeps each
paper gadget (N gate, T gadget, Toffoli gadget, recovery) across the
structured model family of :mod:`repro.noise.structured` and emits a
pass/degrade/fail verdict table per paper claim:

* **phase-immunity** (Eq. 1 / Fig. 1 / Sec. 4.1): the classical
  ancilla only ever serves as a control, so fully phase-biased noise
  must produce *zero* N-gadget failures at every tested strength —
  :func:`certify_phase_immunity` checks exactly that, by Monte Carlo
  through the engine;
* **burst-radius** (Sec. 2): the 2k+1 repetition + majority vote
  survives every bit-error burst of weight <= k and fails at weight
  k+1 — :func:`majority_burst_break_point` finds the break point
  *exhaustively* (every contiguous burst window, full X weight) and
  certifies it lands exactly at k+1;
* **graceful-degradation**: under every samplable structured model
  (biased, burst, drift, crosstalk, twirled over-rotation) each
  gadget's failure rate stays within a declared factor of its iid
  depolarizing baseline at matched per-location strength — degrading
  is allowed (structured noise is adversarial), collapsing is not.

The table is the PR's robustness deliverable; the CI stress job runs a
bounded sweep and uploads it as an artifact.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import run_monte_carlo
from repro.analysis.evaluators import (
    n_gadget_evaluator,
    recovered_overlap_evaluator,
)
from repro.codes import SteaneCode, TrivialCode
from repro.exceptions import AnalysisError
from repro.ft import (
    build_n_gadget,
    build_recovery_gadget,
    build_t_gadget,
    build_toffoli_gadget,
    expected_t_output,
    expected_toffoli_output,
    recovery_ancilla_state,
    sparse_logical_state,
    t_gadget_inputs,
)
from repro.ft.gadget import Gadget, apply_circuit_with_faults
from repro.ft.special_states import sparse_coset_state
from repro.ft.toffoli_gadget import toffoli_initial_state, toffoli_inputs
from repro.runtime.checkpoint import as_store
from repro.noise import (
    BiasedPauliModel,
    CoherentOverRotationModel,
    CorrelatedBurstModel,
    CrosstalkModel,
    DriftingRateModel,
    NoiseModel,
    RateSchedule,
    burst_locations,
)
from repro.simulators.sparse import SparseState

#: Verdict grades, in decreasing order of health.
PASS, DEGRADE, FAIL = "pass", "degrade", "fail"


@dataclass(frozen=True)
class StressVerdict:
    """One row of the certification table.

    Attributes:
        claim: the paper claim being probed (``phase-immunity``,
            ``burst-radius``, ``graceful-degradation``).
        gadget: gadget under test.
        model: human-readable model description.
        verdict: ``pass`` / ``degrade`` / ``fail``.
        failure_rate: measured failure rate (None for exhaustive
            yes/no probes).
        baseline_rate: matched iid baseline rate (None when the claim
            is absolute rather than relative).
        detail: what was measured, in words.
        ci_low / ci_high: confidence-interval endpoints on the
            measured rate (None for exhaustive yes/no probes).
        trials_used: trials actually consumed — below the budget when
            a sequential run stopped early.
    """

    claim: str
    gadget: str
    model: str
    verdict: str
    failure_rate: Optional[float] = None
    baseline_rate: Optional[float] = None
    detail: str = ""
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    trials_used: Optional[int] = None


@dataclass
class StressReport:
    """The certification table plus its summary accounting."""

    verdicts: List[StressVerdict] = field(default_factory=list)

    def add(self, verdict: StressVerdict) -> None:
        self.verdicts.append(verdict)

    def counts(self) -> Dict[str, int]:
        tally = {PASS: 0, DEGRADE: 0, FAIL: 0}
        for verdict in self.verdicts:
            tally[verdict.verdict] = tally.get(verdict.verdict, 0) + 1
        return tally

    @property
    def certified(self) -> bool:
        """True when no row failed (degrading is within contract)."""
        return all(v.verdict != FAIL for v in self.verdicts)

    def rows(self) -> List[Tuple[str, ...]]:
        def fmt(rate: Optional[float]) -> str:
            return "-" if rate is None else f"{rate:.4f}"

        return [(v.claim, v.gadget, v.model, v.verdict,
                 fmt(v.failure_rate), fmt(v.baseline_rate), v.detail)
                for v in self.verdicts]

    def format_table(self) -> str:
        header = ("claim", "gadget", "model", "verdict", "rate",
                  "baseline", "detail")
        rows = [header] + self.rows()
        widths = [max(len(row[col]) for row in rows)
                  for col in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(row, widths))
                         .rstrip())
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        tally = self.counts()
        lines.append("")
        lines.append(
            f"pass={tally[PASS]} degrade={tally[DEGRADE]} "
            f"fail={tally[FAIL]} -> "
            f"{'CERTIFIED' if self.certified else 'NOT CERTIFIED'}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "verdicts": [
                {
                    "claim": v.claim, "gadget": v.gadget,
                    "model": v.model, "verdict": v.verdict,
                    "failure_rate": v.failure_rate,
                    "baseline_rate": v.baseline_rate,
                    "detail": v.detail,
                    "ci_low": v.ci_low,
                    "ci_high": v.ci_high,
                    "trials_used": v.trials_used,
                }
                for v in self.verdicts
            ],
            "counts": self.counts(),
            "certified": self.certified,
        }, indent=2)


# ---------------------------------------------------------------------------
# Claim 1: classical-ancilla phase immunity
# ---------------------------------------------------------------------------

def certify_phase_immunity(code=None,
                           p_values: Sequence[float] = (0.05, 0.2, 0.5),
                           trials: int = 400,
                           seed: int = 20260806,
                           report: Optional[StressReport] = None
                           ) -> StressReport:
    """Certify Eq. 1's structural claim under fully phase-biased noise.

    The N gadget's classical ancilla is only ever a *control* of
    bitwise gates and the evaluator reads computational-basis terms,
    so pure-Z noise — at any strength — must never produce a failure.
    A single failure at any tested p is a FAIL: the claim is
    structural, not statistical.
    """
    if code is None:
        code = SteaneCode()
    if report is None:
        report = StressReport()
    gadget = build_n_gadget(code)
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    for p in p_values:
        model = BiasedPauliModel.phase_biased(p)
        result = run_monte_carlo(gadget, initial, evaluator, model,
                                 trials=trials, seed=seed, workers=1)
        nonzero = result.trials - result.fault_count_histogram.get(0, 0)
        interval = result.interval()
        detail = (f"{result.failures} failures / {nonzero} faulty "
                  f"runs of {result.trials}")
        if result.failures == 0 and result.trials:
            # A clean run still bounds the rate: the rule-of-three
            # upper limit is the honest zero-failure statement.
            from repro.analysis.stats import rule_of_three_upper

            detail += (f"; rate <= "
                       f"{rule_of_three_upper(result.trials):.2e} "
                       f"at 95%")
        report.add(StressVerdict(
            claim="phase-immunity",
            gadget=f"N[{code.name}]",
            model=f"phase_biased(p={p})",
            verdict=PASS if result.failures == 0 else FAIL,
            failure_rate=result.failure_rate,
            baseline_rate=0.0,
            detail=detail,
            ci_low=interval.lower,
            ci_high=interval.upper,
            trials_used=result.trials,
        ))
    return report


# ---------------------------------------------------------------------------
# Claim 2: majority-vote burst radius
# ---------------------------------------------------------------------------

def majority_burst_break_point(k: int = 2,
                               report: Optional[StressReport] = None
                               ) -> Tuple[int, StressReport]:
    """Find, exhaustively, the burst weight that breaks the 2k+1 vote.

    Builds the trivial-code N gadget with a 2k+1-wide classical block
    (each output bit one CNOT — the repetition code in its purest
    form), then injects every contiguous full-weight X burst of every
    weight 1..2k+1 on the classical block after the last operation.
    The paper's claim is sharp: every burst of weight <= k must be
    voted away, and *some* burst of weight k+1 must flip the majority.

    Returns:
        (measured break point, report) — break point is the smallest
        weight with at least one failing burst.
    """
    if k < 1:
        raise AnalysisError(f"majority radius k must be >= 1, got {k}")
    if report is None:
        report = StressReport()
    code = TrivialCode()
    width = 2 * k + 1
    gadget = build_n_gadget(code, output_width=width)
    initial = gadget.initial_state(
        {"quantum": sparse_coset_state(code, 0)}
    )
    evaluator = n_gadget_evaluator(gadget, code, 0)
    classical = list(gadget.qubits("classical"))
    last = len(gadget.circuit.operations) - 1
    break_point = None
    for weight in range(1, width + 1):
        failing = 0
        windows = burst_locations(gadget.circuit, weight,
                                  qubits=classical, after_ops=(last,))
        for location in windows:
            pauli = _full_weight_burst(location, gadget.num_qubits)
            state = initial.copy()
            apply_circuit_with_faults(state, gadget.circuit,
                                      [(pauli, location.after_op)])
            if not evaluator(state):
                failing += 1
        if failing and break_point is None:
            break_point = weight
        if weight <= k:
            verdict = PASS if failing == 0 else FAIL
            expectation = "must survive"
        else:
            verdict = PASS if failing == len(windows) else FAIL
            expectation = "must break"
        report.add(StressVerdict(
            claim="burst-radius",
            gadget=f"N[trivial,m={width}]",
            model=f"X-burst(weight={weight})",
            verdict=verdict,
            failure_rate=failing / len(windows) if windows else None,
            detail=f"{failing}/{len(windows)} windows failed "
                   f"({expectation}, k={k})",
        ))
    if break_point != k + 1:
        report.add(StressVerdict(
            claim="burst-radius",
            gadget=f"N[trivial,m={width}]",
            model="break-point",
            verdict=FAIL,
            detail=f"break point {break_point} != k+1 = {k + 1}",
        ))
    else:
        report.add(StressVerdict(
            claim="burst-radius",
            gadget=f"N[trivial,m={width}]",
            model="break-point",
            verdict=PASS,
            detail=f"majority vote breaks exactly at weight "
                   f"{break_point} = k+1",
        ))
    return break_point, report


def _full_weight_burst(location, num_qubits: int):
    from repro.circuits.pauli import PauliString

    label = ["I"] * num_qubits
    for qubit in location.qubits:
        label[qubit] = "X"
    return PauliString.from_label("".join(label))


# ---------------------------------------------------------------------------
# Claim 3: graceful degradation across the model family
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GadgetCase:
    """One gadget wired for stress: factory returns the MC triple."""

    name: str
    factory: Callable[[], Tuple[Gadget, SparseState,
                                Callable[[SparseState], bool]]]


def _n_case(code, optimize=False) -> GadgetCase:
    def build():
        gadget = build_n_gadget(code, optimize=optimize)
        initial = gadget.initial_state(
            {"quantum": sparse_coset_state(code, 0)}
        )
        return gadget, initial, n_gadget_evaluator(gadget, code, 0)

    return GadgetCase(f"N[{code.name}]", build)


def _t_case(code, optimize=False) -> GadgetCase:
    def build():
        gadget = build_t_gadget(code, optimize=optimize)
        data = sparse_logical_state(code, {(0,): 1.0})
        initial = gadget.initial_state(
            t_gadget_inputs(gadget, code, data)
        )
        evaluator = recovered_overlap_evaluator(
            gadget, code, ["data"], expected_t_output(code, 1.0, 0.0)
        )
        return gadget, initial, evaluator

    return GadgetCase(f"T[{code.name}]", build)


def _toffoli_case(code, optimize=False) -> GadgetCase:
    def build():
        gadget = build_toffoli_gadget(code, optimize=optimize)
        zero = sparse_logical_state(code, {(0,): 1.0})
        blocks = toffoli_inputs(gadget, code, zero, zero, zero)
        initial = toffoli_initial_state(gadget, code, blocks)
        evaluator = recovered_overlap_evaluator(
            gadget, code, ["data_x", "data_y", "data_z"],
            expected_toffoli_output(code, {(0, 0, 0): 1.0}),
        )
        return gadget, initial, evaluator

    return GadgetCase(f"Toffoli[{code.name}]", build)


def _recovery_case(code, optimize=False) -> GadgetCase:
    def build():
        gadget = build_recovery_gadget(code, "X", optimize=optimize)
        data = sparse_logical_state(code, {(0,): 0.6, (1,): 0.8})
        initial = gadget.initial_state({
            "data": data,
            "ancilla": recovery_ancilla_state(code, "X"),
        })
        evaluator = recovered_overlap_evaluator(gadget, code,
                                                ["data"], data)
        return gadget, initial, evaluator

    return GadgetCase(f"recovery[{code.name}]", build)


def gadget_cases(code=None,
                 gadgets: Sequence[str] = ("n", "t", "toffoli",
                                           "recovery"),
                 toffoli_code=None,
                 optimize=False) -> List[GadgetCase]:
    """The paper's gadget suite, wired for Monte-Carlo stress.

    The Toffoli gadget defaults to the trivial code: on Steane it
    spans 154 qubits / 656 operations and a single faulty run takes
    minutes (the repo keeps even one such run in the veryslow test
    tier), while the trivial-code gadget exercises the identical
    Fig. 4 pipeline — resource consumption, N copies, classically
    controlled corrections — at stress-sweep cost.  Pass
    ``toffoli_code=SteaneCode()`` to override when you have hours.

    ``optimize`` is forwarded to every gadget constructor, so a sweep
    over optimized gadgets is the same call with one extra flag.
    """
    if code is None:
        code = SteaneCode()
    if toffoli_code is None:
        toffoli_code = TrivialCode()
    builders = {
        "n": _n_case,
        "t": _t_case,
        "toffoli": _toffoli_case,
        "recovery": _recovery_case,
    }
    cases = []
    for name in gadgets:
        if name not in builders:
            raise AnalysisError(
                f"unknown gadget {name!r}; pick from "
                f"{sorted(builders)}"
            )
        cases.append(builders[name](
            toffoli_code if name == "toffoli" else code,
            optimize=optimize))
    return cases


def structured_model_family(p: float) -> List[Tuple[str, NoiseModel]]:
    """The default stress sweep: one representative per model class.

    Every model is calibrated so its per-location strike strength is
    comparable to an iid model at probability p, making the
    depolarizing baseline a fair yardstick.
    """
    import math

    theta = 2.0 * math.asin(math.sqrt(min(1.0, p)))
    return [
        ("phase_biased", BiasedPauliModel.phase_biased(p)),
        ("bit_biased", BiasedPauliModel.bit_biased(p)),
        ("eta10_biased", BiasedPauliModel.with_eta(p, 10.0)),
        ("burst_w2", CorrelatedBurstModel(p, weight=2, decay=0.5,
                                          channel="depolarizing")),
        ("drift_linear", DriftingRateModel(
            RateSchedule.linear(0.0, 2.0 * p))),
        ("drift_sinusoidal", DriftingRateModel(
            RateSchedule.sinusoidal(p, p / 2.0))),
        ("drift_step", DriftingRateModel(
            RateSchedule.step(p / 2.0, 2.0 * p))),
        ("crosstalk", CrosstalkModel(p, p_spectator=p)),
        ("twirled_rotation", CoherentOverRotationModel.uniform(
            theta, axis="Z").twirled()),
    ]


def stress_certify(code=None,
                   p: float = 0.005,
                   trials: int = 300,
                   seed: int = 20260806,
                   gadgets: Sequence[str] = ("n", "t", "toffoli",
                                             "recovery"),
                   models: Optional[Sequence[Tuple[str, NoiseModel]]]
                   = None,
                   degrade_factor: float = 3.0,
                   fail_factor: float = 10.0,
                   include_structural: bool = True,
                   progress: Optional[Callable[[str], None]] = None,
                   sequential: bool = False,
                   alpha: float = 0.05,
                   beta: float = 0.05,
                   sequential_method: str = "sprt",
                   optimize=False,
                   checkpoint=None,
                   resume: bool = True,
                   ) -> StressReport:
    """Sweep the gadget suite across the structured model family.

    Per (gadget, model) pair the measured failure rate is compared to
    the gadget's iid depolarizing baseline at the same p:

    * ``pass``    — within ``degrade_factor`` x (baseline + 3 sigma);
    * ``degrade`` — above that but within ``fail_factor`` x;
    * ``fail``    — worse, i.e. the structured noise collapsed the
      gadget rather than degrading it.

    With ``include_structural`` the two sharp paper claims
    (:func:`certify_phase_immunity`, exhaustive
    :func:`majority_burst_break_point`) are appended to the same
    report, so one call produces the full certification table.

    With ``sequential=True`` each structured row runs a sequential
    test (``sequential_method``, error rates ``alpha``/``beta``) of
    "rate <= degrade boundary" against "rate >= fail boundary";
    ``trials`` becomes the per-row budget *ceiling* and rows whose
    claim is decided early stop there (``trials_used`` records the
    spend).  An accepted claim is a PASS, a rejected one a FAIL, and
    an undecided row falls back to the point-estimate classification
    above.  Rows whose boundaries degenerate (e.g. a zero baseline
    pushing both below resolution) silently use the fixed-budget path.

    ``optimize`` runs the whole sweep on optimizer-rewritten gadgets
    (see :mod:`repro.optimize`): same verdicts expected, measurably
    fewer fault locations paid per trial.

    ``checkpoint``/``resume`` make the sweep crash-safe: every
    baseline and every (gadget, model) row journals into its own
    substore of the given store, so a killed sweep re-run with the
    same arguments replays finished rows from their journals and
    recomputes only the interrupted one — with verdicts bit-identical
    to an uninterrupted sweep.
    """
    if code is None:
        code = SteaneCode()
    store = as_store(checkpoint)
    report = StressReport()
    family = structured_model_family(p) if models is None else models
    for case in gadget_cases(code, gadgets, optimize=optimize):
        gadget, initial, evaluator = case.factory()
        if progress is not None:
            progress(f"baseline {case.name}")
        baseline = run_monte_carlo(
            gadget, initial, evaluator, NoiseModel.uniform(p),
            trials=trials, seed=seed, workers=1,
            checkpoint=_row_store(store, "baseline", case.name),
            resume=resume,
        )
        allowance = baseline.failure_rate \
            + 3.0 * baseline.stderr + 1.0 / trials
        for model_name, model in family:
            if progress is not None:
                progress(f"{case.name} x {model_name}")
            report.add(_degradation_row(
                case.name, model_name, gadget, initial, evaluator,
                model, baseline, allowance, trials=trials, seed=seed,
                degrade_factor=degrade_factor,
                fail_factor=fail_factor, sequential=sequential,
                alpha=alpha, beta=beta, method=sequential_method,
                checkpoint=_row_store(store, case.name, model_name),
                resume=resume,
            ))
    if include_structural:
        certify_phase_immunity(code, trials=trials, seed=seed,
                               report=report)
        majority_burst_break_point(k=2, report=report)
    return report


def _row_store(store, *parts: str):
    """A sanitized substore for one sweep row (None passes through)."""
    if store is None:
        return None
    name = re.sub(r"[^A-Za-z0-9._-]+", "_", "-".join(parts))
    return store.substore(name)


def _degradation_row(case_name: str, model_name: str, gadget: Gadget,
                     initial: SparseState,
                     evaluator: Callable[[SparseState], bool],
                     model: NoiseModel, baseline, allowance: float,
                     *, trials: int, seed: int, degrade_factor: float,
                     fail_factor: float, sequential: bool,
                     alpha: float, beta: float,
                     method: str, checkpoint=None,
                     resume: bool = True) -> StressVerdict:
    """One graceful-degradation row (fixed-budget or sequential)."""
    p0 = min(max(degrade_factor * allowance, 1e-6), 0.49)
    p1 = min(max(fail_factor * allowance, 2.0 * p0), 0.98)
    use_sequential = sequential and p0 < p1 < 1.0
    detail_extra = ""
    if use_sequential:
        from repro.analysis.sequential import (
            run_sequential_monte_carlo,
        )

        outcome = run_sequential_monte_carlo(
            gadget, initial, evaluator, model,
            p0=p0, p1=p1, alpha=alpha, beta=beta,
            max_trials=trials, seed=seed, method=method,
            claim=f"{case_name} x {model_name} rate <= {p0:g}",
            checkpoint=checkpoint, resume=resume,
        )
        result = outcome.result
        decision = outcome.verdict.decision
        if decision == "accept":
            verdict = PASS
        elif decision == "reject":
            verdict = FAIL
        else:
            verdict = None
        detail_extra = (f"; sequential {decision} after "
                        f"{result.trials}/{trials} trials")
    else:
        result = run_monte_carlo(
            gadget, initial, evaluator, model,
            trials=trials, seed=seed, workers=1,
            checkpoint=checkpoint, resume=resume,
        )
        verdict = None
    rate = result.failure_rate
    if verdict is None:
        if rate <= degrade_factor * allowance:
            verdict = PASS
        elif rate <= fail_factor * allowance:
            verdict = DEGRADE
        else:
            verdict = FAIL
    interval = result.interval()
    return StressVerdict(
        claim="graceful-degradation",
        gadget=case_name,
        model=model_name,
        verdict=verdict,
        failure_rate=rate,
        baseline_rate=baseline.failure_rate,
        detail=f"{result.failures}/{result.trials} failures "
               f"(allowance {degrade_factor * allowance:.4f})"
               + detail_extra,
        ci_low=interval.lower,
        ci_high=interval.upper,
        trials_used=result.trials,
    )
