"""Threshold estimation by fault counting (paper Sec. 4.2).

"The threshold can easily be calculated by counting the potential
places for two errors."  With N fault locations, each failing
independently with probability p, and M malignant location pairs, the
gadget's logical failure probability is bounded by

    P_fail <= M p^2 + O(p^3),

so the gadget improves on a bare physical gate whenever M p^2 < p,
i.e. below the threshold estimate p_th ~ 1 / M.  The counts here are
upper bounds (see :meth:`~repro.analysis.propagation.SingleFaultSurvey.
count_malignant_pairs`), making the thresholds safe lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, TYPE_CHECKING

from repro.analysis.propagation import GadgetFaultAnalyzer, SingleFaultSurvey
from repro.codes.quantum.css import CssCode
from repro.ft.gadget import Gadget
from repro.noise.locations import FaultLocation, count_locations
from repro.simulators.sparse import SparseState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import EngineStats, FaultPatternCache


@dataclass
class ThresholdReport:
    """Counting summary for one gadget.

    Attributes:
        gadget_name: display name.
        location_counts: {'input': ..., 'gate': ..., 'delay': ...,
            'total': ...}.
        single_fault_failures: single faults with unacceptable
            residuals (0 = the fault-tolerance property holds).
        malignant_pairs: the paper's two-error count (upper bound).
        threshold_estimate: 1 / malignant_pairs (None when the pair
            count is zero).
    """

    gadget_name: str
    location_counts: Dict[str, int]
    single_fault_failures: int
    malignant_pairs: int
    engine_stats: Optional["EngineStats"] = field(
        default=None, compare=False, repr=False,
    )

    @property
    def is_fault_tolerant(self) -> bool:
        return self.single_fault_failures == 0

    @property
    def threshold_estimate(self) -> Optional[float]:
        if self.malignant_pairs == 0:
            return None
        return 1.0 / self.malignant_pairs

    def summary_row(self) -> str:
        threshold = self.threshold_estimate
        threshold_text = f"{threshold:.2e}" if threshold else "-"
        return (
            f"{self.gadget_name:40s} "
            f"{self.location_counts['total']:6d} "
            f"{self.single_fault_failures:6d} "
            f"{self.malignant_pairs:8d} "
            f"{threshold_text:>9s}"
        )

    @staticmethod
    def header_row() -> str:
        return (
            f"{'gadget':40s} {'locs':>6s} {'1flt':>6s} "
            f"{'mal.pairs':>8s} {'p_th':>9s}"
        )


def analyze_gadget(gadget: Gadget, code: CssCode,
                   count_pairs: bool = True) -> ThresholdReport:
    """Run the full paper-style counting analysis on one gadget."""
    analyzer = GadgetFaultAnalyzer(gadget, code)
    survey = analyzer.single_fault_survey()
    malignant = survey.count_malignant_pairs() if count_pairs else -1
    return ThresholdReport(
        gadget_name=gadget.name,
        location_counts=count_locations(
            gadget.circuit,
            input_qubits=[q for loc in analyzer.locations
                          if loc.kind == "input" for q in loc.qubits],
        ),
        single_fault_failures=len(survey.failures),
        malignant_pairs=malignant,
    )


def sampled_threshold_report(gadget: Gadget,
                             initial_state: SparseState,
                             evaluator: Callable[[SparseState], bool],
                             samples: int = 400,
                             seed: Optional[int] = None,
                             channel: str = "depolarizing",
                             locations: Optional[Sequence[FaultLocation]]
                             = None,
                             *,
                             parallel: bool = False,
                             workers: Optional[int] = None,
                             chunk_size: Optional[int] = None,
                             memoize: Optional[bool] = None,
                             cache: Optional["FaultPatternCache"] = None,
                             checkpoint=None,
                             resume: bool = True,
                             runtime=None,
                             ) -> ThresholdReport:
    """Exact state-based counterpart of :func:`analyze_gadget`.

    Where the symbolic analyzer over-counts (worst-case Pauli
    propagation cannot see value-dependent cancellation inside the
    classical correction logic), this report certifies the single
    faults exhaustively on the sparse simulator and samples the
    malignant-pair count, both scheduled through
    :mod:`repro.analysis.engine` so large gadgets can use a worker
    pool and a shared verdict cache.  ``malignant_pairs`` is the
    rounded sampled estimate M_eff.

    ``checkpoint`` journals the two phases into ``exhaustive`` and
    ``pairs`` subdirectories of the run directory, so a crashed report
    resumes mid-phase; ``runtime`` tunes supervision/fallback for
    both (see :func:`repro.analysis.engine.run_monte_carlo`).
    """
    from repro.analysis import engine
    from repro.analysis.montecarlo import _default_locations
    from repro.runtime.checkpoint import as_store

    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    resolved_workers = engine.resolve_workers(parallel, workers)
    resolved_chunk = chunk_size or engine.DEFAULT_CHUNK_SIZE
    resolved_memoize = True if memoize is None else memoize
    if cache is None and resolved_memoize:
        cache = engine.FaultPatternCache()
    store = as_store(checkpoint)
    survey = engine.run_exhaustive(
        gadget, initial_state, evaluator, locations=locations,
        channel=channel, workers=resolved_workers,
        chunk_size=resolved_chunk, memoize=resolved_memoize,
        cache=cache,
        checkpoint=store.substore("exhaustive") if store else None,
        resume=resume, runtime=runtime,
    )
    pair_sample = engine.run_malignant_pairs(
        gadget, initial_state, evaluator, samples,
        locations=locations, seed=seed, channel=channel,
        workers=resolved_workers, chunk_size=resolved_chunk,
        memoize=resolved_memoize, cache=cache,
        checkpoint=store.substore("pairs") if store else None,
        resume=resume, runtime=runtime,
    )
    counts = {"input": 0, "gate": 0, "delay": 0}
    for location in locations:
        counts[location.kind] += 1
    counts["total"] = sum(counts.values())
    stats = survey.stats
    stats.absorb(pair_sample.engine_stats)
    return ThresholdReport(
        gadget_name=gadget.name,
        location_counts=counts,
        single_fault_failures=len(survey.failures),
        malignant_pairs=int(round(pair_sample.estimated_malignant_pairs)),
        engine_stats=stats,
    )
