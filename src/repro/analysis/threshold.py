"""Threshold estimation by fault counting (paper Sec. 4.2).

"The threshold can easily be calculated by counting the potential
places for two errors."  With N fault locations, each failing
independently with probability p, and M malignant location pairs, the
gadget's logical failure probability is bounded by

    P_fail <= M p^2 + O(p^3),

so the gadget improves on a bare physical gate whenever M p^2 < p,
i.e. below the threshold estimate p_th ~ 1 / M.  The counts here are
upper bounds (see :meth:`~repro.analysis.propagation.SingleFaultSurvey.
count_malignant_pairs`), making the thresholds safe lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, TYPE_CHECKING

from repro.analysis.propagation import GadgetFaultAnalyzer, SingleFaultSurvey
from repro.codes.quantum.css import CssCode
from repro.ft.gadget import Gadget
from repro.noise.locations import FaultLocation, count_locations
from repro.simulators.sparse import SparseState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import EngineStats, FaultPatternCache
    from repro.analysis.stats import BinomialInterval, ClaimVerdict


@dataclass
class ThresholdReport:
    """Counting summary for one gadget.

    Attributes:
        gadget_name: display name.
        location_counts: {'input': ..., 'gate': ..., 'delay': ...,
            'total': ...}.
        single_fault_failures: single faults with unacceptable
            residuals (0 = the fault-tolerance property holds).
        malignant_pairs: the paper's two-error count (upper bound).
        threshold_estimate: 1 / malignant_pairs (None when the pair
            count is zero).
    """

    gadget_name: str
    location_counts: Dict[str, int]
    single_fault_failures: int
    malignant_pairs: int
    engine_stats: Optional["EngineStats"] = field(
        default=None, compare=False, repr=False,
    )
    #: Confidence interval on the sampled malignant fraction
    #: (sampled reports only).
    pair_interval: Optional["BinomialInterval"] = field(
        default=None, compare=False, repr=False,
    )
    #: Sequential certification outcome for ``p_th >= p_target``
    #: (only when ``certify_threshold_at=`` was requested).
    threshold_verdict: Optional["ClaimVerdict"] = field(
        default=None, compare=False, repr=False,
    )

    @property
    def is_fault_tolerant(self) -> bool:
        return self.single_fault_failures == 0

    @property
    def threshold_estimate(self) -> Optional[float]:
        if self.malignant_pairs == 0:
            return None
        return 1.0 / self.malignant_pairs

    def summary_row(self) -> str:
        threshold = self.threshold_estimate
        threshold_text = f"{threshold:.2e}" if threshold else "-"
        return (
            f"{self.gadget_name:40s} "
            f"{self.location_counts['total']:6d} "
            f"{self.single_fault_failures:6d} "
            f"{self.malignant_pairs:8d} "
            f"{threshold_text:>9s}"
        )

    @staticmethod
    def header_row() -> str:
        return (
            f"{'gadget':40s} {'locs':>6s} {'1flt':>6s} "
            f"{'mal.pairs':>8s} {'p_th':>9s}"
        )


def analyze_gadget(gadget: Gadget, code: CssCode,
                   count_pairs: bool = True) -> ThresholdReport:
    """Run the full paper-style counting analysis on one gadget."""
    analyzer = GadgetFaultAnalyzer(gadget, code)
    survey = analyzer.single_fault_survey()
    malignant = survey.count_malignant_pairs() if count_pairs else -1
    return ThresholdReport(
        gadget_name=gadget.name,
        location_counts=count_locations(
            gadget.circuit,
            input_qubits=[q for loc in analyzer.locations
                          if loc.kind == "input" for q in loc.qubits],
        ),
        single_fault_failures=len(survey.failures),
        malignant_pairs=malignant,
    )


def sampled_threshold_report(gadget: Gadget,
                             initial_state: SparseState,
                             evaluator: Callable[[SparseState], bool],
                             samples: int = 400,
                             seed: Optional[int] = None,
                             channel: str = "depolarizing",
                             locations: Optional[Sequence[FaultLocation]]
                             = None,
                             *,
                             parallel: bool = False,
                             workers: Optional[int] = None,
                             chunk_size: Optional[int] = None,
                             memoize: Optional[bool] = None,
                             cache: Optional["FaultPatternCache"] = None,
                             checkpoint=None,
                             resume: bool = True,
                             runtime=None,
                             certify_threshold_at: Optional[float] = None,
                             alpha: float = 0.05,
                             beta: float = 0.05,
                             threshold_margin: float = 4.0,
                             sequential_method: str = "sprt",
                             ) -> ThresholdReport:
    """Exact state-based counterpart of :func:`analyze_gadget`.

    Where the symbolic analyzer over-counts (worst-case Pauli
    propagation cannot see value-dependent cancellation inside the
    classical correction logic), this report certifies the single
    faults exhaustively on the sparse simulator and samples the
    malignant-pair count, both scheduled through
    :mod:`repro.analysis.engine` so large gadgets can use a worker
    pool and a shared verdict cache.  ``malignant_pairs`` is the
    rounded sampled estimate M_eff.

    ``checkpoint`` journals the two phases into ``exhaustive`` and
    ``pairs`` subdirectories of the run directory, so a crashed report
    resumes mid-phase; ``runtime`` tunes supervision/fallback for
    both (see :func:`repro.analysis.engine.run_monte_carlo`).

    ``certify_threshold_at=p_target`` switches the pair phase to a
    sequential certification of the claim ``p_th >= p_target``
    (equivalently: malignant fraction <= 1 / (p_target *
    location_pairs)), run at error rates ``alpha``/``beta`` against
    the alternative that the fraction is ``threshold_margin`` times
    larger.  The run stops as soon as the claim is decided (``samples``
    becomes the budget ceiling) and the typed verdict lands in
    ``report.threshold_verdict``; requires an explicit ``seed``.
    ``report.pair_interval`` always carries the malignant-fraction
    confidence interval.
    """
    from repro.analysis import engine
    from repro.analysis.montecarlo import _default_locations
    from repro.runtime.checkpoint import as_store

    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    resolved_workers = engine.resolve_workers(parallel, workers)
    resolved_chunk = chunk_size or engine.DEFAULT_CHUNK_SIZE
    resolved_memoize = True if memoize is None else memoize
    if cache is None and resolved_memoize:
        cache = engine.FaultPatternCache()
    store = as_store(checkpoint)
    survey = engine.run_exhaustive(
        gadget, initial_state, evaluator, locations=locations,
        channel=channel, workers=resolved_workers,
        chunk_size=resolved_chunk, memoize=resolved_memoize,
        cache=cache,
        checkpoint=store.substore("exhaustive") if store else None,
        resume=resume, runtime=runtime,
    )
    threshold_verdict = None
    if certify_threshold_at is not None:
        from repro.analysis.sequential import (
            run_sequential_pair_sampling,
        )
        from repro.exceptions import AnalysisError

        pairs = len(locations) * (len(locations) - 1) // 2
        if certify_threshold_at <= 0 or pairs == 0:
            raise AnalysisError(
                f"certify_threshold_at must be positive with >= 2 "
                f"locations, got p_target={certify_threshold_at} over "
                f"{len(locations)} locations"
            )
        if threshold_margin <= 1.0:
            raise AnalysisError(
                f"threshold_margin must exceed 1, got "
                f"{threshold_margin}"
            )
        f0 = min(1.0 / (certify_threshold_at * pairs), 0.49)
        f1 = min(threshold_margin * f0, 0.99)
        if f1 <= f0:
            raise AnalysisError(
                f"degenerate certification boundaries f0={f0:g}, "
                f"f1={f1:g}; pick a smaller p_target or margin"
            )
        sequential = run_sequential_pair_sampling(
            gadget, initial_state, evaluator,
            f0=f0, f1=f1, alpha=alpha, beta=beta,
            max_samples=samples, seed=seed,
            batch_size=resolved_chunk, method=sequential_method,
            claim=(f"{gadget.name} p_th >= {certify_threshold_at:g} "
                   f"(malignant_fraction <= {f0:g})"),
            locations=locations, channel=channel,
            workers=resolved_workers, memoize=resolved_memoize,
            cache=cache,
            checkpoint=store.substore("pairs") if store else None,
            resume=resume, runtime=runtime,
        )
        pair_sample = sequential.sample
        threshold_verdict = sequential.verdict
    else:
        pair_sample = engine.run_malignant_pairs(
            gadget, initial_state, evaluator, samples,
            locations=locations, seed=seed, channel=channel,
            workers=resolved_workers, chunk_size=resolved_chunk,
            memoize=resolved_memoize, cache=cache,
            checkpoint=store.substore("pairs") if store else None,
            resume=resume, runtime=runtime,
        )
    counts = {"input": 0, "gate": 0, "delay": 0}
    for location in locations:
        counts[location.kind] += 1
    counts["total"] = sum(counts.values())
    stats = survey.stats
    stats.absorb(pair_sample.engine_stats)
    return ThresholdReport(
        gadget_name=gadget.name,
        location_counts=counts,
        single_fault_failures=len(survey.failures),
        malignant_pairs=int(round(pair_sample.estimated_malignant_pairs)),
        engine_stats=stats,
        pair_interval=pair_sample.interval(),
        threshold_verdict=threshold_verdict,
    )
