"""Threshold estimation by fault counting (paper Sec. 4.2).

"The threshold can easily be calculated by counting the potential
places for two errors."  With N fault locations, each failing
independently with probability p, and M malignant location pairs, the
gadget's logical failure probability is bounded by

    P_fail <= M p^2 + O(p^3),

so the gadget improves on a bare physical gate whenever M p^2 < p,
i.e. below the threshold estimate p_th ~ 1 / M.  The counts here are
upper bounds (see :meth:`~repro.analysis.propagation.SingleFaultSurvey.
count_malignant_pairs`), making the thresholds safe lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.propagation import GadgetFaultAnalyzer, SingleFaultSurvey
from repro.codes.quantum.css import CssCode
from repro.ft.gadget import Gadget
from repro.noise.locations import count_locations


@dataclass
class ThresholdReport:
    """Counting summary for one gadget.

    Attributes:
        gadget_name: display name.
        location_counts: {'input': ..., 'gate': ..., 'delay': ...,
            'total': ...}.
        single_fault_failures: single faults with unacceptable
            residuals (0 = the fault-tolerance property holds).
        malignant_pairs: the paper's two-error count (upper bound).
        threshold_estimate: 1 / malignant_pairs (None when the pair
            count is zero).
    """

    gadget_name: str
    location_counts: Dict[str, int]
    single_fault_failures: int
    malignant_pairs: int

    @property
    def is_fault_tolerant(self) -> bool:
        return self.single_fault_failures == 0

    @property
    def threshold_estimate(self) -> Optional[float]:
        if self.malignant_pairs == 0:
            return None
        return 1.0 / self.malignant_pairs

    def summary_row(self) -> str:
        threshold = self.threshold_estimate
        threshold_text = f"{threshold:.2e}" if threshold else "-"
        return (
            f"{self.gadget_name:40s} "
            f"{self.location_counts['total']:6d} "
            f"{self.single_fault_failures:6d} "
            f"{self.malignant_pairs:8d} "
            f"{threshold_text:>9s}"
        )

    @staticmethod
    def header_row() -> str:
        return (
            f"{'gadget':40s} {'locs':>6s} {'1flt':>6s} "
            f"{'mal.pairs':>8s} {'p_th':>9s}"
        )


def analyze_gadget(gadget: Gadget, code: CssCode,
                   count_pairs: bool = True) -> ThresholdReport:
    """Run the full paper-style counting analysis on one gadget."""
    analyzer = GadgetFaultAnalyzer(gadget, code)
    survey = analyzer.single_fault_survey()
    malignant = survey.count_malignant_pairs() if count_pairs else -1
    return ThresholdReport(
        gadget_name=gadget.name,
        location_counts=count_locations(
            gadget.circuit,
            input_qubits=[q for loc in analyzer.locations
                          if loc.kind == "input" for q in loc.qubits],
        ),
        single_fault_failures=len(survey.failures),
        malignant_pairs=malignant,
    )
