"""Sequential and adaptive Monte-Carlo certification runners.

The fixed-budget samplers in :mod:`repro.analysis.montecarlo` burn
their entire trial budget even when the claim under test ("this
gadget's failure rate is below p0") was decided thousands of trials
ago.  This module adds the sequential layer on top of the engine:

* :func:`run_sequential_monte_carlo` — batchwise Monte Carlo whose
  stopping time is driven by an :class:`~repro.analysis.stats.Sprt`
  or always-valid confidence sequence, returning a typed
  :class:`~repro.analysis.stats.ClaimVerdict` alongside the ordinary
  :class:`~repro.analysis.montecarlo.GadgetMonteCarloResult`.
* :func:`run_sequential_pair_sampling` — the same treatment for the
  malignant-pair fraction behind the paper's threshold estimate.
* :func:`adaptive_sweep_p` — a variance-aware ``sweep_p``: a shared
  trial budget is allocated batch-by-batch to the p-points whose
  confidence intervals are widest (or nearest a decision boundary),
  under a deterministic schedule.

**Determinism contract.**  Batch ``b`` of a sequential run draws its
faults from ``chunk_seed_sequence(seed, b, stream_key)`` — exactly the
stream the fixed-budget engine assigns to chunk ``b`` at the same
``(seed, chunk_size)``.  Stopping after ``n`` batches therefore
consumes a bit-identical *prefix* of the fixed run's fault stream: the
decision changes how many trials are drawn, never which ones.  The
adaptive sweep keys point ``i`` by ``seed + i`` (the ``sweep_p``
convention), and its allocation schedule is a pure function of the
accumulated counts, so results are reproducible for any worker count.

**Resume safety.**  With ``checkpoint=`` every completed batch is
journaled (counts per batch, plus the engine's verdict journal) and
the estimator state is a deterministic function of those counts, so a
killed run resumed from its journal replays the identical decision
sequence, reaches the identical verdict and trial count, and continues
the identical fault stream — proven by the chaos tests in
``tests/runtime/test_sequential_resume.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.exceptions import AnalysisError
from repro.ft.gadget import Gadget
from repro.noise.locations import FaultLocation
from repro.noise.model import NoiseModel
from repro.runtime.policy import RuntimePolicy
from repro.simulators.sparse import SparseState

from repro.analysis.engine import (
    BATCHED_PATH,
    DEFAULT_CHUNK_SIZE,
    SERIAL_PATH,
    EngineStats,
    FaultPattern,
    FaultPatternCache,
    ProgressEvent,
    _coerce_batch_size,
    _coerce_chunk_size,
    _coerce_count,
    _coerce_workers,
    _EvalContext,
    _location_setup,
    _open_journal,
    _resolve_verdicts,
    chunk_seed_sequence,
    sample_fault_chunk,
    sample_pair_chunk,
)
from repro.analysis.montecarlo import (
    GadgetMonteCarloResult,
    MalignantPairSample,
    _default_locations,
)
from repro.analysis.stats import (
    BinomialInterval,
    ClaimVerdict,
    binomial_interval,
    build_claim_verdict,
    make_sequential_test,
)


@dataclass
class SequentialResult:
    """A sequential certification run's full outcome."""

    verdict: ClaimVerdict
    result: GadgetMonteCarloResult
    batches: int

    @property
    def decision(self) -> str:
        return self.verdict.decision


@dataclass
class SequentialPairResult:
    """Sequential malignant-pair certification outcome."""

    verdict: ClaimVerdict
    sample: MalignantPairSample
    batches: int

    @property
    def decision(self) -> str:
        return self.verdict.decision


def _merge_counts(total: Dict[int, int], delta: Dict[int, int]) -> None:
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value


def _batch_failures(pattern_counts: Dict[FaultPattern, int],
                    verdict_map: Dict[FaultPattern, bool],
                    failures_by_count: Dict[int, int]) -> int:
    failures = 0
    for pattern, multiplicity in pattern_counts.items():
        if not verdict_map[pattern]:
            failures += multiplicity
            count = len(pattern)
            failures_by_count[count] = \
                failures_by_count.get(count, 0) + multiplicity
    return failures


def run_sequential_monte_carlo(
        gadget: Gadget,
        initial_state: SparseState,
        evaluator: Callable[[SparseState], bool],
        noise: NoiseModel,
        *,
        p0: float,
        p1: float,
        alpha: float = 0.05,
        beta: float = 0.05,
        max_trials: int,
        seed: int,
        batch_size: int = DEFAULT_CHUNK_SIZE,
        method: str = "sprt",
        claim: Optional[str] = None,
        locations: Optional[Sequence[FaultLocation]] = None,
        workers: int = 1,
        eval_batch_size: int = 1,
        prefetch: bool = False,
        memoize: bool = True,
        cache: Optional[FaultPatternCache] = None,
        invariant: Optional[Callable[[SparseState], None]] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        on_batch: Optional[Callable[[int, int, int, Optional[str]],
                                    None]] = None,
        checkpoint=None,
        resume: bool = True,
        runtime: Optional[RuntimePolicy] = None,
) -> SequentialResult:
    """Certify ``failure_rate <= p0`` sequentially, stopping early.

    Runs Monte-Carlo batches of ``batch_size`` trials through the
    engine's sample→dedup→evaluate schedule, feeding each batch's
    failure count to a sequential test (``method``: ``sprt`` or
    ``confidence-sequence``) of H0: rate <= ``p0`` against
    H1: rate >= ``p1`` at error rates ``alpha``/``beta``.  Stops at
    the first decision or at ``max_trials``, whichever comes first,
    and returns the typed verdict plus the aggregate result over the
    trials actually consumed.

    Requires an explicit ``seed``: batch ``b`` draws from the same
    stream as fixed-budget chunk ``b`` (see
    :func:`repro.analysis.engine.chunk_seed_sequence`), so the
    sequential run's samples are a bit-identical prefix of
    ``run_monte_carlo(..., trials=<consumed>, chunk_size=batch_size)``.

    ``checkpoint``/``resume`` journal completed batches and verdicts;
    a killed run resumed from the journal reaches the identical
    verdict, trial count and fault stream as an uninterrupted one.

    ``eval_batch_size > 1`` evaluates each batch's distinct patterns
    through the vectorised :mod:`repro.simulators.batched` stack
    (named to avoid colliding with ``batch_size``, which here is the
    *sampling* chunk size and part of the seed contract).  Verdicts,
    SPRT decisions and journals are bit-identical either way; batched
    journals carry an ``eval_path`` fingerprint marker so a resume
    never silently swaps paths.

    ``prefetch=True`` pipelines batch ``b+1``'s fault sampling on a
    helper thread while batch ``b`` evaluates — safe because chunk
    streams are independent per batch and a prefetched draw is
    discarded unused if the test stops first.  Off by default: with
    ``workers > 1`` the evaluation pool forks while the sampler
    thread may be running, which is best opted into knowingly.

    ``on_batch`` is the streaming hook: after every batch is folded
    into the estimator (journaled batches replayed on resume
    included), it is called with ``(batch_index, trials_consumed,
    failures_total, decision_so_far)``.  The certification service
    uses it to append per-batch confidence-interval events to the job
    journal while the run is still in flight; it observes, never
    influences — an exception raised from it propagates like
    ``KeyboardInterrupt`` (completed batches stay journaled).
    """
    start = time.perf_counter()
    if not noise.samplable:
        raise AnalysisError(
            f"{type(noise).__name__} has no stochastic Pauli "
            "unravelling and cannot feed the sampling engine"
        )
    if seed is None:
        raise AnalysisError(
            "sequential certification requires an explicit seed: the "
            "stopping decision must be replayable over a reproducible "
            "fault stream"
        )
    max_trials = _coerce_count(max_trials, "max_trials")
    if max_trials < 1:
        raise AnalysisError(
            f"max_trials must be >= 1, got {max_trials}"
        )
    batch_size = _coerce_chunk_size(batch_size)
    eval_batch_size = _coerce_batch_size(eval_batch_size)
    workers = _coerce_workers(workers)
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    test = make_sequential_test(method, p0, p1, alpha=alpha, beta=beta)
    stats = EngineStats(workers=1)
    fingerprint = {
        "workload": "sequential_monte_carlo",
        "gadget": gadget.name,
        "locations": len(locations),
        "seed": seed,
        "max_trials": max_trials,
        "batch_size": batch_size,
        "p0": float(p0),
        "p1": float(p1),
        "alpha": float(alpha),
        "beta": float(beta),
        "method": method,
        "p_gate": float(noise.p_gate),
        "p_input": float(noise.p_input),
        "p_delay": float(noise.p_delay),
        "channel": noise.channel,
    }
    if noise.structured:
        fingerprint["model"] = repr(noise.fingerprint())
    if eval_batch_size > 1:
        fingerprint["eval_path"] = BATCHED_PATH
    if not memoize and checkpoint is not None:
        raise AnalysisError(
            "checkpointing requires memoize=True (the journal replays "
            "verdicts through the fault-pattern cache)"
        )
    eval_path = BATCHED_PATH if eval_batch_size > 1 else SERIAL_PATH
    store, cache = _open_journal(checkpoint, resume, seed, memoize,
                                 cache, fingerprint, stats,
                                 eval_path=eval_path)
    probs, choices, after_ops = _location_setup(noise, gadget,
                                                locations)
    stream_key = noise.stream_key()
    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=eval_batch_size)

    histogram: Dict[int, int] = {}
    failures_by_count: Dict[int, int] = {}
    consumed = 0
    failures_total = 0
    batch_index = 0

    if store is not None:
        # Replay completed batches: the estimator's decision sequence
        # is a pure function of the journaled per-batch counts.
        for record in store.load_records("batches"):
            _merge_counts(histogram, {
                int(k): int(v)
                for k, v in record["histogram"].items()})
            _merge_counts(failures_by_count, {
                int(k): int(v)
                for k, v in record["failures_by_fault_count"].items()})
            consumed += int(record["length"])
            failures_total += int(record["failures"])
            test.update(int(record["failures"]), int(record["length"]))
            batch_index = int(record["batch"]) + 1
            if on_batch is not None:
                on_batch(batch_index - 1, consumed, failures_total,
                         test.decision)

    def _draw_batch(
            index: int, length: int,
    ) -> Tuple[Dict[int, int], Dict[FaultPattern, int], float]:
        """Sample one batch's fault stream.

        Thread-safe by construction: every call builds its own rng
        from the batch's chunk seed and writes only local dicts, so
        the prefetch thread and the main loop never share state.
        """
        rng = np.random.default_rng(
            chunk_seed_sequence(seed, index, stream_key=stream_key))
        draw_start = time.perf_counter()
        drawn_histogram: Dict[int, int] = {}
        drawn_patterns: Dict[FaultPattern, int] = {}
        sample_fault_chunk(noise, gadget, locations, probs,
                           choices, after_ops, rng, length,
                           drawn_histogram, drawn_patterns)
        return (drawn_histogram, drawn_patterns,
                time.perf_counter() - draw_start)

    executor: Optional[ThreadPoolExecutor] = None
    if prefetch:
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-sample-prefetch")
    pending: Optional[Tuple[int, Future]] = None
    try:
        while (test.decision is None and consumed < max_trials):
            length = min(batch_size, max_trials - consumed)
            if pending is not None and pending[0] == batch_index:
                batch_histogram, batch_patterns, sampled = \
                    pending[1].result()
            else:
                batch_histogram, batch_patterns, sampled = \
                    _draw_batch(batch_index, length)
            pending = None
            stats.sample_seconds += sampled
            stats.chunks += 1
            if executor is not None:
                # Overlap the next batch's sampling with this batch's
                # evaluation.  Length is fixed now (consumed is not
                # yet advanced, so next = max_trials-consumed-length);
                # if the test decides first the draw is discarded.
                next_length = min(batch_size,
                                  max_trials - consumed - length)
                if next_length > 0:
                    pending = (batch_index + 1, executor.submit(
                        _draw_batch, batch_index + 1, next_length))
            if progress is not None:
                progress(ProgressEvent(
                    phase="sample", done=consumed + length,
                    total=max_trials, chunk_index=batch_index,
                    chunks_total=-(-max_trials // batch_size),
                    elapsed_seconds=time.perf_counter() - start,
                ))
            verdict_map = _resolve_verdicts(
                context, batch_patterns, memoize, cache, workers,
                batch_size, stats, progress, journal=store)
            batch_fbc: Dict[int, int] = {}
            batch_failures = _batch_failures(batch_patterns,
                                             verdict_map, batch_fbc)
            _merge_counts(failures_by_count, batch_fbc)
            _merge_counts(histogram, batch_histogram)
            consumed += length
            failures_total += batch_failures
            stats.trials += length
            test.update(batch_failures, length)
            if store is not None:
                store.append_record("batches", {
                    "batch": batch_index,
                    "length": length,
                    "failures": batch_failures,
                    "histogram": {str(k): v for k, v
                                  in batch_histogram.items()},
                    "failures_by_fault_count": {
                        str(k): v for k, v in batch_fbc.items()},
                })
                store.write_state("estimator", {
                    "method": method,
                    "state": test.state_dict(),
                })
            if on_batch is not None:
                on_batch(batch_index, consumed, failures_total,
                         test.decision)
            batch_index += 1
    except KeyboardInterrupt:
        if store is not None:
            store.write_state("cursor", {
                "batches_done": batch_index,
                "trials": consumed,
                "interrupted": True,
            })
        raise
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    stats.trials = consumed
    stats.total_seconds = time.perf_counter() - start
    result = GadgetMonteCarloResult(
        p=noise.p_gate,
        trials=consumed,
        failures=failures_total,
        failures_by_fault_count=failures_by_count,
        fault_count_histogram=histogram,
        engine_stats=stats,
    )
    claim_text = claim or (
        f"{gadget.name} failure_rate <= {p0:g} at p={noise.p_gate:g}"
    )
    verdict = build_claim_verdict(test, claim_text, method, max_trials)
    if store is not None:
        store.finalize({
            "trials": consumed,
            "failures": failures_total,
            "decision": verdict.decision,
            "batches": batch_index,
        })
    return SequentialResult(verdict=verdict, result=result,
                            batches=batch_index)


def run_sequential_pair_sampling(
        gadget: Gadget,
        initial_state: SparseState,
        evaluator: Callable[[SparseState], bool],
        *,
        f0: float,
        f1: float,
        alpha: float = 0.05,
        beta: float = 0.05,
        max_samples: int,
        seed: int,
        batch_size: int = DEFAULT_CHUNK_SIZE,
        method: str = "sprt",
        claim: Optional[str] = None,
        locations: Optional[Sequence[FaultLocation]] = None,
        channel: str = "depolarizing",
        workers: int = 1,
        eval_batch_size: int = 1,
        prefetch: bool = False,
        memoize: bool = True,
        cache: Optional[FaultPatternCache] = None,
        invariant: Optional[Callable[[SparseState], None]] = None,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
        on_batch: Optional[Callable[[int, int, int, Optional[str]],
                                    None]] = None,
        checkpoint=None,
        resume: bool = True,
        runtime: Optional[RuntimePolicy] = None,
) -> SequentialPairResult:
    """Certify ``malignant_fraction <= f0`` sequentially.

    The malignant-pair fraction drives the paper's threshold estimate
    (p_th ~ 1 / (fraction * location_pairs)), so deciding it early is
    deciding the threshold early.  Same stream/stopping/resume
    contract as :func:`run_sequential_monte_carlo`, over the uniform
    distinct-location-pair draws of ``run_malignant_pairs`` — and the
    same ``eval_batch_size``/``prefetch`` accelerators and
    ``on_batch`` streaming hook, which change wall-clock and
    observability only, never verdicts or journals.
    """
    start = time.perf_counter()
    if seed is None:
        raise AnalysisError(
            "sequential certification requires an explicit seed"
        )
    max_samples = _coerce_count(max_samples, "max_samples")
    if max_samples < 1:
        raise AnalysisError(
            f"max_samples must be >= 1, got {max_samples}"
        )
    batch_size = _coerce_chunk_size(batch_size)
    eval_batch_size = _coerce_batch_size(eval_batch_size)
    workers = _coerce_workers(workers)
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    if len(locations) < 2:
        raise AnalysisError(
            "malignant-pair sampling needs at least two fault locations"
        )
    test = make_sequential_test(method, f0, f1, alpha=alpha, beta=beta)
    stats = EngineStats(workers=1)
    fingerprint = {
        "workload": "sequential_pairs",
        "gadget": gadget.name,
        "locations": len(locations),
        "seed": seed,
        "max_samples": max_samples,
        "batch_size": batch_size,
        "p0": float(f0),
        "p1": float(f1),
        "alpha": float(alpha),
        "beta": float(beta),
        "method": method,
        "channel": channel,
    }
    if eval_batch_size > 1:
        fingerprint["eval_path"] = BATCHED_PATH
    eval_path = BATCHED_PATH if eval_batch_size > 1 else SERIAL_PATH
    store, cache = _open_journal(checkpoint, resume, seed, memoize,
                                 cache, fingerprint, stats,
                                 eval_path=eval_path)
    model = NoiseModel.uniform(1.0, channel=channel)
    _, choices, after_ops = _location_setup(model, gadget, locations)
    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=eval_batch_size)

    num_locations = len(locations)
    consumed = 0
    malignant_total = 0
    batch_index = 0

    if store is not None:
        for record in store.load_records("batches"):
            consumed += int(record["length"])
            malignant_total += int(record["failures"])
            test.update(int(record["failures"]), int(record["length"]))
            batch_index = int(record["batch"]) + 1
            if on_batch is not None:
                on_batch(batch_index - 1, consumed, malignant_total,
                         test.decision)

    def _draw_batch(
            index: int, length: int,
    ) -> Tuple[Dict[FaultPattern, int], float]:
        """Sample one pair batch (thread-safe: all state is local)."""
        rng = np.random.default_rng(
            chunk_seed_sequence(seed, index))
        draw_start = time.perf_counter()
        drawn_patterns: Dict[FaultPattern, int] = {}
        sample_pair_chunk(choices, after_ops, num_locations, rng,
                          length, drawn_patterns)
        return drawn_patterns, time.perf_counter() - draw_start

    executor: Optional[ThreadPoolExecutor] = None
    if prefetch:
        executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-sample-prefetch")
    pending: Optional[Tuple[int, Future]] = None
    try:
        while test.decision is None and consumed < max_samples:
            length = min(batch_size, max_samples - consumed)
            if pending is not None and pending[0] == batch_index:
                batch_patterns, sampled = pending[1].result()
            else:
                batch_patterns, sampled = _draw_batch(batch_index,
                                                      length)
            pending = None
            stats.sample_seconds += sampled
            stats.chunks += 1
            if executor is not None:
                next_length = min(batch_size,
                                  max_samples - consumed - length)
                if next_length > 0:
                    pending = (batch_index + 1, executor.submit(
                        _draw_batch, batch_index + 1, next_length))
            verdict_map = _resolve_verdicts(
                context, batch_patterns, memoize, cache, workers,
                batch_size, stats, progress, journal=store)
            batch_malignant = sum(
                multiplicity for pattern, multiplicity
                in batch_patterns.items()
                if not verdict_map[pattern])
            consumed += length
            malignant_total += batch_malignant
            test.update(batch_malignant, length)
            if store is not None:
                store.append_record("batches", {
                    "batch": batch_index,
                    "length": length,
                    "failures": batch_malignant,
                })
                store.write_state("estimator", {
                    "method": method,
                    "state": test.state_dict(),
                })
            if on_batch is not None:
                on_batch(batch_index, consumed, malignant_total,
                         test.decision)
            batch_index += 1
    except KeyboardInterrupt:
        if store is not None:
            store.write_state("cursor", {
                "batches_done": batch_index,
                "samples": consumed,
                "interrupted": True,
            })
        raise
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    stats.trials = consumed
    stats.total_seconds = time.perf_counter() - start
    sample = MalignantPairSample(
        samples=consumed,
        malignant=malignant_total,
        num_locations=num_locations,
        engine_stats=stats,
    )
    claim_text = claim or (
        f"{gadget.name} malignant_fraction <= {f0:g}"
    )
    verdict = build_claim_verdict(test, claim_text, method,
                                  max_samples)
    if store is not None:
        store.finalize({
            "samples": consumed,
            "malignant": malignant_total,
            "decision": verdict.decision,
            "batches": batch_index,
        })
    return SequentialPairResult(verdict=verdict, sample=sample,
                                batches=batch_index)


@dataclass
class AdaptiveSweepResult:
    """A variance-aware p sweep's outcome.

    ``results[i]`` aggregates the trials point ``i`` actually
    received; ``allocation[i]`` counts its batches.  ``intervals``
    are the final confidence intervals the allocator steered by.
    """

    results: List[GadgetMonteCarloResult]
    intervals: List[BinomialInterval]
    allocation: List[int]
    total_trials: int
    stats: EngineStats = field(repr=False, default_factory=EngineStats)

    def trials_by_point(self) -> List[int]:
        return [result.trials for result in self.results]


def _pick_adaptive_point(trials: List[int], failures: List[int],
                         batches: List[int],
                         min_batches_per_point: int,
                         confidence: float, interval_method: str,
                         boundary: Optional[float]
                         ) -> Tuple[int, List[BinomialInterval]]:
    """Deterministic allocation rule: widest CI first.

    Points below their minimum batch count are served first, in index
    order.  After that the next batch goes to the point with the
    widest interval, except that points whose interval straddles
    ``boundary`` (a failure-rate decision threshold) outrank all
    non-straddling points — trials flow to where the *decision* is
    still open.  Ties break to the lowest index.  The rule reads only
    the accumulated counts, so replaying journaled allocations puts
    the scheduler in the identical state.
    """
    intervals = [binomial_interval(failures[i], trials[i], confidence,
                                   interval_method)
                 for i in range(len(trials))]
    for index in range(len(trials)):
        if batches[index] < min_batches_per_point:
            return index, intervals
    best = 0
    best_key: Tuple[int, float] = (-1, -1.0)
    for index, interval in enumerate(intervals):
        straddles = int(boundary is not None
                        and interval.lower <= boundary <= interval.upper)
        key = (straddles, interval.half_width)
        if key > best_key:
            best, best_key = index, key
    return best, intervals


def adaptive_sweep_p(gadget: Gadget,
                     initial_state: SparseState,
                     evaluator: Callable[[SparseState], bool],
                     p_values: Sequence[float],
                     total_trials: int,
                     *,
                     seed: int,
                     batch_size: int = DEFAULT_CHUNK_SIZE,
                     min_batches_per_point: int = 1,
                     confidence: float = 0.95,
                     interval_method: str = "wilson",
                     boundary: Optional[float] = None,
                     channel: str = "depolarizing",
                     locations: Optional[Sequence[FaultLocation]] = None,
                     workers: int = 1,
                     eval_batch_size: int = 1,
                     memoize: bool = True,
                     cache: Optional[FaultPatternCache] = None,
                     invariant: Optional[
                         Callable[[SparseState], None]] = None,
                     progress: Optional[
                         Callable[[ProgressEvent], None]] = None,
                     checkpoint=None,
                     resume: bool = True,
                     runtime: Optional[RuntimePolicy] = None,
                     ) -> AdaptiveSweepResult:
    """Variance-aware ``sweep_p``: spend trials where CIs are widest.

    Splits ``total_trials`` into whole batches of ``batch_size``
    (any remainder below one batch is left unspent) and deals them
    out under the deterministic rule of :func:`_pick_adaptive_point`.
    Point ``i``'s batches draw from ``chunk_seed_sequence(seed + i,
    batch)`` — the ``sweep_p`` seed-plus-index convention — so however
    many batches a point receives, its fault stream is a bit-identical
    prefix of the fixed-budget run at the same seed, and the whole
    sweep is reproducible for any worker count.

    ``boundary`` (optional) marks a failure-rate decision threshold:
    points whose interval still straddles it outrank all others, so
    the budget concentrates on resolving the crossover — the adaptive
    analogue of scanning for the paper's p_th.

    One :class:`FaultPatternCache` is shared across points (verdicts
    are p-independent).  ``checkpoint``/``resume`` journal every
    allocation; the schedule is a pure function of the journaled
    counts, so a killed sweep resumes into the identical allocation
    sequence and final series.

    ``eval_batch_size > 1`` routes evaluation through the vectorised
    batched simulator (results unchanged).  There is no ``prefetch``
    here: which point samples next depends on the batch that is still
    evaluating, so sampling cannot run ahead of the allocator.
    """
    start = time.perf_counter()
    if seed is None:
        raise AnalysisError(
            "adaptive_sweep_p requires an explicit seed: the "
            "allocation schedule must be replayable"
        )
    total_trials = _coerce_count(total_trials, "total_trials")
    batch_size = _coerce_chunk_size(batch_size)
    eval_batch_size = _coerce_batch_size(eval_batch_size)
    workers = _coerce_workers(workers)
    if not p_values:
        raise AnalysisError("adaptive_sweep_p needs at least one p value")
    if min_batches_per_point < 1:
        raise AnalysisError(
            f"min_batches_per_point must be >= 1, got "
            f"{min_batches_per_point}"
        )
    p_values = [float(p) for p in p_values]
    num_points = len(p_values)
    budget_batches = total_trials // batch_size
    if budget_batches < num_points * min_batches_per_point:
        raise AnalysisError(
            f"total_trials={total_trials} is below the minimum "
            f"{num_points * min_batches_per_point} batches of "
            f"{batch_size} ({num_points} points x "
            f"{min_batches_per_point} min batches)"
        )
    if locations is None:
        locations = _default_locations(gadget)
    locations = list(locations)
    stats = EngineStats(workers=1)
    fingerprint = {
        "workload": "adaptive_sweep",
        "gadget": gadget.name,
        "locations": len(locations),
        "p_values": p_values,
        "total_trials": total_trials,
        "seed": seed,
        "batch_size": batch_size,
        "min_batches_per_point": int(min_batches_per_point),
        "confidence": float(confidence),
        "interval_method": interval_method,
        "boundary": None if boundary is None else float(boundary),
        "channel": channel,
    }
    if eval_batch_size > 1:
        fingerprint["eval_path"] = BATCHED_PATH
    eval_path = BATCHED_PATH if eval_batch_size > 1 else SERIAL_PATH
    store, cache = _open_journal(checkpoint, resume, seed, memoize,
                                 cache, fingerprint, stats,
                                 eval_path=eval_path)
    if cache is None and memoize:
        cache = FaultPatternCache()
    context = _EvalContext(gadget, initial_state, evaluator,
                           invariant=invariant, policy=runtime,
                           batch_size=eval_batch_size)
    models = [NoiseModel.uniform(p, channel=channel) for p in p_values]
    setups = [_location_setup(model, gadget, locations)
              for model in models]

    trials = [0] * num_points
    failures = [0] * num_points
    batches = [0] * num_points
    histograms: List[Dict[int, int]] = [{} for _ in range(num_points)]
    fbcs: List[Dict[int, int]] = [{} for _ in range(num_points)]
    steps_done = 0

    if store is not None:
        for record in store.load_records("alloc"):
            index = int(record["point"])
            trials[index] += int(record["length"])
            failures[index] += int(record["failures"])
            batches[index] += 1
            _merge_counts(histograms[index], {
                int(k): int(v)
                for k, v in record["histogram"].items()})
            _merge_counts(fbcs[index], {
                int(k): int(v)
                for k, v in record["failures_by_fault_count"].items()})
            steps_done += 1

    try:
        while steps_done < budget_batches:
            index, _ = _pick_adaptive_point(
                trials, failures, batches, min_batches_per_point,
                confidence, interval_method, boundary)
            rng = np.random.default_rng(
                chunk_seed_sequence(seed + index, batches[index]))
            probs, choices, after_ops = setups[index]
            sample_start = time.perf_counter()
            batch_histogram: Dict[int, int] = {}
            batch_patterns: Dict[FaultPattern, int] = {}
            sample_fault_chunk(models[index], gadget, locations, probs,
                               choices, after_ops, rng, batch_size,
                               batch_histogram, batch_patterns)
            stats.sample_seconds += time.perf_counter() - sample_start
            stats.chunks += 1
            verdict_map = _resolve_verdicts(
                context, batch_patterns, memoize, cache, workers,
                batch_size, stats, progress, journal=store)
            batch_fbc: Dict[int, int] = {}
            batch_failures = _batch_failures(batch_patterns,
                                             verdict_map, batch_fbc)
            trials[index] += batch_size
            failures[index] += batch_failures
            batches[index] += 1
            _merge_counts(histograms[index], batch_histogram)
            _merge_counts(fbcs[index], batch_fbc)
            if store is not None:
                store.append_record("alloc", {
                    "step": steps_done,
                    "point": index,
                    "batch": batches[index] - 1,
                    "length": batch_size,
                    "failures": batch_failures,
                    "histogram": {str(k): v for k, v
                                  in batch_histogram.items()},
                    "failures_by_fault_count": {
                        str(k): v for k, v in batch_fbc.items()},
                })
            steps_done += 1
            if progress is not None:
                progress(ProgressEvent(
                    phase="sample", done=steps_done,
                    total=budget_batches, chunk_index=steps_done - 1,
                    chunks_total=budget_batches,
                    elapsed_seconds=time.perf_counter() - start,
                ))
    except KeyboardInterrupt:
        if store is not None:
            store.write_state("cursor", {
                "steps_done": steps_done,
                "interrupted": True,
            })
        raise

    stats.trials = sum(trials)
    stats.total_seconds = time.perf_counter() - start
    results = [
        GadgetMonteCarloResult(
            p=p_values[i],
            trials=trials[i],
            failures=failures[i],
            failures_by_fault_count=fbcs[i],
            fault_count_histogram=histograms[i],
        )
        for i in range(num_points)
    ]
    intervals = [binomial_interval(failures[i], trials[i], confidence,
                                   interval_method)
                 for i in range(num_points)]
    if store is not None:
        store.finalize({
            "steps": steps_done,
            "trials": sum(trials),
            "allocation": list(batches),
        })
    return AdaptiveSweepResult(
        results=results,
        intervals=intervals,
        allocation=list(batches),
        total_trials=sum(trials),
        stats=stats,
    )
