"""Monte-Carlo fault injection for gadgets (sparse backend).

Complements the exact counting of :mod:`repro.analysis.propagation`
with sampled logical-error-rate estimates: faults drawn from a
:class:`~repro.noise.model.NoiseModel` over the gadget's locations,
the gadget executed on the sparse simulator, and the output judged by
a caller-supplied evaluator (typically
:func:`~repro.ft.ideal_recovery.recovered_block_overlap` against the
ideal output).  These are the data behind every O(p^2) curve in the
benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ft.gadget import Gadget, apply_circuit_with_faults
from repro.noise.locations import FaultLocation
from repro.noise.model import NoiseModel
from repro.simulators.sparse import SparseState


@dataclass
class GadgetMonteCarloResult:
    """Sampled failure statistics for one (gadget, p) point."""

    p: float
    trials: int
    failures: int
    failures_by_fault_count: Dict[int, int]
    fault_count_histogram: Dict[int, int]

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def stderr(self) -> float:
        if not self.trials:
            return 0.0
        rate = self.failure_rate
        return float(np.sqrt(max(rate * (1 - rate), 1e-12) / self.trials))

    @property
    def single_fault_failures(self) -> int:
        return self.failures_by_fault_count.get(1, 0)


def gadget_monte_carlo(gadget: Gadget,
                       initial_state: SparseState,
                       evaluator: Callable[[SparseState], bool],
                       noise: NoiseModel,
                       trials: int,
                       locations: Optional[Sequence[FaultLocation]] = None,
                       seed: Optional[int] = None
                       ) -> GadgetMonteCarloResult:
    """Estimate a gadget's failure rate under stochastic faults.

    Args:
        gadget: the gadget under test.
        initial_state: full-register input (use
            :meth:`Gadget.initial_state`).
        evaluator: True = acceptable output.
        noise: the stochastic model (the paper's per-gate/input/delay).
        trials: number of runs; fault-free runs are skipped as
            successes (exact at the O(p^2) resolution the experiments
            target — the no-fault branch is verified separately).
        locations: pre-enumerated locations (pass to amortise across a
            p sweep).
        seed: RNG seed.
    """
    rng = np.random.default_rng(seed)
    if locations is None:
        locations = _default_locations(gadget)
    failures = 0
    failures_by_count: Dict[int, int] = {}
    histogram: Dict[int, int] = {}
    for _ in range(trials):
        sampled = noise.sample_faults(gadget.circuit, rng, locations)
        count = len(sampled)
        histogram[count] = histogram.get(count, 0) + 1
        if count == 0:
            continue
        state = initial_state.copy()
        apply_circuit_with_faults(
            state, gadget.circuit,
            [(fault.pauli, fault.after_op) for fault in sampled],
        )
        if not evaluator(state):
            failures += 1
            failures_by_count[count] = failures_by_count.get(count, 0) + 1
    return GadgetMonteCarloResult(
        p=noise.p_gate,
        trials=trials,
        failures=failures,
        failures_by_fault_count=failures_by_count,
        fault_count_histogram=histogram,
    )


def _default_locations(gadget: Gadget) -> List[FaultLocation]:
    from repro.noise.locations import enumerate_locations

    input_qubits: List[int] = []
    for register in gadget.registers.values():
        if register.role in ("data", "quantum_ancilla"):
            input_qubits.extend(register.qubits)
    return enumerate_locations(gadget.circuit,
                               input_qubits=sorted(input_qubits))


def exhaustive_single_faults_sparse(
        gadget: Gadget,
        initial_state: SparseState,
        evaluator: Callable[[SparseState], bool],
        locations: Optional[Sequence[FaultLocation]] = None,
        channel: str = "depolarizing",
) -> List[Tuple[FaultLocation, object]]:
    """Run every single-location Pauli fault through the simulator.

    This is the authoritative certification of the paper's
    fault-tolerance property: the symbolic Pauli analysis cannot see
    the value-dependent cancellations inside the classical correction
    logic (the N_1 syndrome box), so only exact simulation can prove
    that *no* single fault is malignant.  Returns the failing
    (location, pauli) pairs; empty = fault tolerant.
    """
    if locations is None:
        locations = _default_locations(gadget)
    model = NoiseModel.uniform(1.0, channel=channel)
    failures: List[Tuple[FaultLocation, object]] = []
    for location in locations:
        for pauli in model.fault_choices(location, gadget.num_qubits):
            state = initial_state.copy()
            apply_circuit_with_faults(state, gadget.circuit,
                                      [(pauli, location.after_op)])
            if not evaluator(state):
                failures.append((location, pauli))
    return failures


@dataclass
class MalignantPairSample:
    """Sampled estimate of the paper's two-error count.

    ``malignant_fraction`` estimates the probability that a uniformly
    random (location pair, Pauli choice) combination is malignant;
    multiplied by the number of location pairs it estimates the
    effective malignant-pair count M in P_fail <= M p^2, hence the
    threshold ~ 1/M.
    """

    samples: int
    malignant: int
    num_locations: int

    @property
    def malignant_fraction(self) -> float:
        return self.malignant / self.samples if self.samples else 0.0

    @property
    def location_pairs(self) -> int:
        return self.num_locations * (self.num_locations - 1) // 2

    @property
    def estimated_malignant_pairs(self) -> float:
        return self.malignant_fraction * self.location_pairs

    @property
    def threshold_estimate(self) -> Optional[float]:
        estimate = self.estimated_malignant_pairs
        return 1.0 / estimate if estimate > 0 else None


def sample_malignant_pairs(gadget: Gadget,
                           initial_state: SparseState,
                           evaluator: Callable[[SparseState], bool],
                           samples: int,
                           locations: Optional[Sequence[FaultLocation]]
                           = None,
                           seed: Optional[int] = None
                           ) -> MalignantPairSample:
    """Monte-Carlo estimate of the malignant-location-pair count.

    Draws random location pairs with random Pauli faults at each, runs
    the gadget exactly, and counts unacceptable outputs.
    """
    rng = np.random.default_rng(seed)
    if locations is None:
        locations = _default_locations(gadget)
    model = NoiseModel.uniform(1.0)
    malignant = 0
    count = len(locations)
    for _ in range(samples):
        i = int(rng.integers(0, count))
        j = int(rng.integers(0, count - 1))
        if j >= i:
            j += 1
        faults = []
        for location in (locations[i], locations[j]):
            choices = model.fault_choices(location, gadget.num_qubits)
            pauli = choices[int(rng.integers(0, len(choices)))]
            faults.append((pauli, location.after_op))
        state = initial_state.copy()
        apply_circuit_with_faults(state, gadget.circuit, faults)
        if not evaluator(state):
            malignant += 1
    return MalignantPairSample(samples=samples, malignant=malignant,
                               num_locations=count)


def sweep_p(gadget: Gadget,
            initial_state: SparseState,
            evaluator: Callable[[SparseState], bool],
            p_values: Sequence[float],
            trials: int,
            channel: str = "depolarizing",
            seed: Optional[int] = None
            ) -> List[GadgetMonteCarloResult]:
    """Failure-rate series over a range of physical error rates."""
    locations = _default_locations(gadget)
    results: List[GadgetMonteCarloResult] = []
    for index, p in enumerate(p_values):
        noise = NoiseModel.uniform(p, channel=channel)
        results.append(gadget_monte_carlo(
            gadget, initial_state, evaluator, noise, trials,
            locations=locations,
            seed=None if seed is None else seed + index,
        ))
    return results
