"""Monte-Carlo fault injection for gadgets (sparse backend).

Complements the exact counting of :mod:`repro.analysis.propagation`
with sampled logical-error-rate estimates: faults drawn from a
:class:`~repro.noise.model.NoiseModel` over the gadget's locations,
the gadget executed on the sparse simulator, and the output judged by
a caller-supplied evaluator (typically
:func:`~repro.ft.ideal_recovery.recovered_block_overlap` against the
ideal output).  These are the data behind every O(p^2) curve in the
benchmark suite.

Each sampler here has two execution paths:

* the original **serial** loop (the default), byte-compatible with
  historical seeded results; and
* the **engine** path (:mod:`repro.analysis.engine`), selected by
  passing ``parallel=True`` or any engine option (``workers=``,
  ``chunk_size=``, ``memoize=``, ``cache=``, ``progress=``).  The
  engine chunks trials over per-chunk ``SeedSequence.spawn`` streams
  (bit-identical results for any worker count) and memoises verdicts
  by canonical fault pattern.  Its RNG stream intentionally differs
  from the serial loop's, so a seeded serial run and a seeded engine
  run are each self-consistent but not equal to one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

import numpy as np

from repro.ft.gadget import Gadget, apply_circuit_with_faults
from repro.noise.locations import FaultLocation
from repro.noise.model import NoiseModel
from repro.simulators.sparse import SparseState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import (
        EngineStats,
        FaultPatternCache,
        ProgressEvent,
    )


@dataclass
class GadgetMonteCarloResult:
    """Sampled failure statistics for one (gadget, p) point.

    ``engine_stats`` (engine path only) carries cache and scheduling
    instrumentation; it is excluded from equality so serial/parallel
    equivalence can be asserted on the statistical payload alone.
    """

    p: float
    trials: int
    failures: int
    failures_by_fault_count: Dict[int, int]
    fault_count_histogram: Dict[int, int]
    engine_stats: Optional["EngineStats"] = field(
        default=None, compare=False, repr=False,
    )

    @property
    def failure_rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def stderr(self) -> float:
        """Deprecated alias: a Wilson-based standard-error surrogate.

        Historically this was the normal-approximation
        ``sqrt(p(1-p)/n)``, which collapses to (nearly) zero at 0 or n
        observed failures — exactly where fault-tolerance claims are
        made.  It now routes through
        :func:`repro.analysis.stats.interval_stderr` (the Wilson
        half-width rescaled by the normal quantile): identical to the
        classical value away from the boundaries, strictly positive
        at them.  New code should use :meth:`interval` /
        :meth:`failure_rate_upper_bound` instead of a +-stderr band.
        """
        from repro.analysis.stats import interval_stderr

        return interval_stderr(self.failures, self.trials)

    def interval(self, confidence: float = 0.95,
                 method: str = "wilson"):
        """Confidence interval for the failure rate (see
        :func:`repro.analysis.stats.binomial_interval`)."""
        from repro.analysis.stats import binomial_interval

        return binomial_interval(self.failures, self.trials,
                                 confidence, method)

    def failure_rate_upper_bound(self, confidence: float = 0.95
                                 ) -> float:
        """One-sided Clopper–Pearson upper bound — the honest number
        a zero-failure certification run should report."""
        from repro.analysis.stats import clopper_pearson_interval

        if not self.trials:
            return 1.0
        return clopper_pearson_interval(
            self.failures, self.trials,
            1.0 - 2.0 * (1.0 - confidence)).upper

    @property
    def single_fault_failures(self) -> int:
        return self.failures_by_fault_count.get(1, 0)


def _engine_requested(parallel: bool, workers, chunk_size, memoize,
                      cache, progress, checkpoint=None,
                      runtime=None) -> bool:
    return (parallel or workers is not None or chunk_size is not None
            or memoize is not None or cache is not None
            or progress is not None or checkpoint is not None
            or runtime is not None)


def gadget_monte_carlo(gadget: Gadget,
                       initial_state: SparseState,
                       evaluator: Callable[[SparseState], bool],
                       noise: NoiseModel,
                       trials: int,
                       locations: Optional[Sequence[FaultLocation]] = None,
                       seed: Optional[int] = None,
                       *,
                       parallel: bool = False,
                       workers: Optional[int] = None,
                       chunk_size: Optional[int] = None,
                       memoize: Optional[bool] = None,
                       cache: Optional["FaultPatternCache"] = None,
                       progress: Optional[
                           Callable[["ProgressEvent"], None]] = None,
                       checkpoint=None,
                       resume: bool = True,
                       runtime=None,
                       ) -> GadgetMonteCarloResult:
    """Estimate a gadget's failure rate under stochastic faults.

    Args:
        gadget: the gadget under test.
        initial_state: full-register input (use
            :meth:`Gadget.initial_state`).
        evaluator: True = acceptable output.
        noise: the stochastic model (the paper's per-gate/input/delay).
        trials: number of runs; fault-free runs are skipped as
            successes (exact at the O(p^2) resolution the experiments
            target — the no-fault branch is verified separately).
        locations: pre-enumerated locations (pass to amortise across a
            p sweep).
        seed: RNG seed.  ``None`` draws fresh OS entropy, making the
            run non-reproducible.
        parallel: opt into the engine path with ``os.cpu_count()``
            workers (unless ``workers`` says otherwise).
        workers: engine worker-pool size; results are bit-identical
            for every value (chunked ``SeedSequence.spawn`` streams).
        chunk_size: trials sampled per RNG chunk (engine path; part of
            the determinism contract together with ``seed``/``trials``).
        memoize: reuse verdicts of repeated canonical fault patterns
            (engine path; default on).
        cache: a shared :class:`~repro.analysis.engine.
            FaultPatternCache` to persist verdicts across calls.
        progress: per-chunk :class:`~repro.analysis.engine.
            ProgressEvent` callback (engine path).
        checkpoint: run directory (or
            :class:`~repro.runtime.CheckpointStore`) journaling
            completed evaluation chunks; selects the engine path.
        resume: replay a matching existing journal before evaluating
            (default); ``False`` starts the journal over.
        runtime: a :class:`~repro.runtime.RuntimePolicy` tuning
            supervision/fallback; selects the engine path.
    """
    if _engine_requested(parallel, workers, chunk_size, memoize, cache,
                         progress, checkpoint, runtime):
        from repro.analysis import engine

        return engine.run_monte_carlo(
            gadget, initial_state, evaluator, noise, trials,
            locations=locations, seed=seed,
            workers=engine.resolve_workers(parallel, workers),
            chunk_size=chunk_size or engine.DEFAULT_CHUNK_SIZE,
            memoize=True if memoize is None else memoize,
            cache=cache, progress=progress, checkpoint=checkpoint,
            resume=resume, runtime=runtime,
        )
    rng = np.random.default_rng(seed)
    if locations is None:
        locations = _default_locations(gadget)
    failures = 0
    failures_by_count: Dict[int, int] = {}
    histogram: Dict[int, int] = {}
    for _ in range(trials):
        sampled = noise.sample_faults(gadget.circuit, rng, locations)
        count = len(sampled)
        histogram[count] = histogram.get(count, 0) + 1
        if count == 0:
            continue
        state = initial_state.copy()
        apply_circuit_with_faults(
            state, gadget.circuit,
            [(fault.pauli, fault.after_op) for fault in sampled],
        )
        if not evaluator(state):
            failures += 1
            failures_by_count[count] = failures_by_count.get(count, 0) + 1
    return GadgetMonteCarloResult(
        p=noise.p_gate,
        trials=trials,
        failures=failures,
        failures_by_fault_count=failures_by_count,
        fault_count_histogram=histogram,
    )


def _default_locations(gadget: Gadget) -> List[FaultLocation]:
    from repro.noise.locations import enumerate_locations

    input_qubits: List[int] = []
    for register in gadget.registers.values():
        if register.role in ("data", "quantum_ancilla"):
            input_qubits.extend(register.qubits)
    return enumerate_locations(gadget.circuit,
                               input_qubits=sorted(input_qubits))


def exhaustive_single_faults_sparse(
        gadget: Gadget,
        initial_state: SparseState,
        evaluator: Callable[[SparseState], bool],
        locations: Optional[Sequence[FaultLocation]] = None,
        channel: str = "depolarizing",
        *,
        parallel: bool = False,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        memoize: Optional[bool] = None,
        cache: Optional["FaultPatternCache"] = None,
        progress: Optional[Callable[["ProgressEvent"], None]] = None,
        checkpoint=None,
        resume: bool = True,
        runtime=None,
) -> List[Tuple[FaultLocation, object]]:
    """Run every single-location Pauli fault through the simulator.

    This is the authoritative certification of the paper's
    fault-tolerance property: the symbolic Pauli analysis cannot see
    the value-dependent cancellations inside the classical correction
    logic (the N_1 syndrome box), so only exact simulation can prove
    that *no* single fault is malignant.  Returns the failing
    (location, pauli) pairs; empty = fault tolerant.

    Engine options (``parallel=``/``workers=``/...) fan the sweep out
    across a worker pool; the failure list order is unchanged.  Use
    :func:`repro.analysis.engine.run_exhaustive` directly to also get
    the :class:`~repro.analysis.engine.EngineStats`.
    """
    if _engine_requested(parallel, workers, chunk_size, memoize, cache,
                         progress, checkpoint, runtime):
        from repro.analysis import engine

        survey = engine.run_exhaustive(
            gadget, initial_state, evaluator, locations=locations,
            channel=channel,
            workers=engine.resolve_workers(parallel, workers),
            chunk_size=chunk_size or engine.DEFAULT_CHUNK_SIZE,
            memoize=True if memoize is None else memoize,
            cache=cache, progress=progress, checkpoint=checkpoint,
            resume=resume, runtime=runtime,
        )
        return survey.failures
    if locations is None:
        locations = _default_locations(gadget)
    model = NoiseModel.uniform(1.0, channel=channel)
    failures: List[Tuple[FaultLocation, object]] = []
    for location in locations:
        for pauli in model.fault_choices(location, gadget.num_qubits):
            state = initial_state.copy()
            apply_circuit_with_faults(state, gadget.circuit,
                                      [(pauli, location.after_op)])
            if not evaluator(state):
                failures.append((location, pauli))
    return failures


@dataclass
class MalignantPairSample:
    """Sampled estimate of the paper's two-error count.

    ``malignant_fraction`` estimates the probability that a uniformly
    random (location pair, Pauli choice) combination is malignant;
    multiplied by the number of location pairs it estimates the
    effective malignant-pair count M in P_fail <= M p^2, hence the
    threshold ~ 1/M.
    """

    samples: int
    malignant: int
    num_locations: int
    engine_stats: Optional["EngineStats"] = field(
        default=None, compare=False, repr=False,
    )

    @property
    def malignant_fraction(self) -> float:
        return self.malignant / self.samples if self.samples else 0.0

    @property
    def location_pairs(self) -> int:
        return self.num_locations * (self.num_locations - 1) // 2

    @property
    def estimated_malignant_pairs(self) -> float:
        return self.malignant_fraction * self.location_pairs

    @property
    def threshold_estimate(self) -> Optional[float]:
        estimate = self.estimated_malignant_pairs
        return 1.0 / estimate if estimate > 0 else None

    def interval(self, confidence: float = 0.95,
                 method: str = "wilson"):
        """Confidence interval for the malignant fraction."""
        from repro.analysis.stats import binomial_interval

        return binomial_interval(self.malignant, self.samples,
                                 confidence, method)

    def threshold_interval(self, confidence: float = 0.95,
                           method: str = "clopper-pearson"
                           ) -> Tuple[Optional[float], Optional[float]]:
        """(lower, upper) bounds on the threshold p_th ~ 1/M.

        Inverts the malignant-fraction interval through the monotone
        map f -> 1 / (f * location_pairs): the *upper* fraction bound
        gives the conservative (lower) threshold bound.  ``None``
        upper bound means the fraction interval reaches 0 — no finite
        threshold ceiling can be claimed from this sample.
        """
        fraction = self.interval(confidence, method)
        pairs = self.location_pairs
        lower = (1.0 / (fraction.upper * pairs)
                 if fraction.upper > 0 and pairs else None)
        upper = (1.0 / (fraction.lower * pairs)
                 if fraction.lower > 0 and pairs else None)
        return lower, upper


def sample_malignant_pairs(gadget: Gadget,
                           initial_state: SparseState,
                           evaluator: Callable[[SparseState], bool],
                           samples: int,
                           locations: Optional[Sequence[FaultLocation]]
                           = None,
                           seed: Optional[int] = None,
                           channel: str = "depolarizing",
                           *,
                           parallel: bool = False,
                           workers: Optional[int] = None,
                           chunk_size: Optional[int] = None,
                           memoize: Optional[bool] = None,
                           cache: Optional["FaultPatternCache"] = None,
                           progress: Optional[
                               Callable[["ProgressEvent"], None]] = None,
                           checkpoint=None,
                           resume: bool = True,
                           runtime=None,
                           ) -> MalignantPairSample:
    """Monte-Carlo estimate of the malignant-location-pair count.

    Draws random location pairs with random Pauli faults at each, runs
    the gadget exactly, and counts unacceptable outputs.  ``channel``
    restricts the Pauli choices at each location (the same ablation
    knob as the other samplers); engine options behave as in
    :func:`gadget_monte_carlo`.
    """
    if _engine_requested(parallel, workers, chunk_size, memoize, cache,
                         progress, checkpoint, runtime):
        from repro.analysis import engine

        return engine.run_malignant_pairs(
            gadget, initial_state, evaluator, samples,
            locations=locations, seed=seed, channel=channel,
            workers=engine.resolve_workers(parallel, workers),
            chunk_size=chunk_size or engine.DEFAULT_CHUNK_SIZE,
            memoize=True if memoize is None else memoize,
            cache=cache, progress=progress, checkpoint=checkpoint,
            resume=resume, runtime=runtime,
        )
    rng = np.random.default_rng(seed)
    if locations is None:
        locations = _default_locations(gadget)
    model = NoiseModel.uniform(1.0, channel=channel)
    malignant = 0
    count = len(locations)
    for _ in range(samples):
        i = int(rng.integers(0, count))
        j = int(rng.integers(0, count - 1))
        if j >= i:
            j += 1
        faults = []
        for location in (locations[i], locations[j]):
            choices = model.fault_choices(location, gadget.num_qubits)
            pauli = choices[int(rng.integers(0, len(choices)))]
            faults.append((pauli, location.after_op))
        state = initial_state.copy()
        apply_circuit_with_faults(state, gadget.circuit, faults)
        if not evaluator(state):
            malignant += 1
    return MalignantPairSample(samples=samples, malignant=malignant,
                               num_locations=count)


def _point_payload(result: GadgetMonteCarloResult) -> Dict[str, object]:
    """JSON form of one sweep point (engine_stats excluded — it is
    instrumentation, outside result equality)."""
    return {
        "p": result.p,
        "trials": result.trials,
        "failures": result.failures,
        "failures_by_fault_count": {
            str(k): v for k, v in result.failures_by_fault_count.items()
        },
        "fault_count_histogram": {
            str(k): v for k, v in result.fault_count_histogram.items()
        },
    }


def _point_from_payload(payload: Dict[str, object]
                        ) -> GadgetMonteCarloResult:
    return GadgetMonteCarloResult(
        p=float(payload["p"]),
        trials=int(payload["trials"]),
        failures=int(payload["failures"]),
        failures_by_fault_count={
            int(k): int(v)
            for k, v in payload["failures_by_fault_count"].items()
        },
        fault_count_histogram={
            int(k): int(v)
            for k, v in payload["fault_count_histogram"].items()
        },
    )


def sweep_p(gadget: Gadget,
            initial_state: SparseState,
            evaluator: Callable[[SparseState], bool],
            p_values: Sequence[float],
            trials: int,
            channel: str = "depolarizing",
            seed: Optional[int] = None,
            *,
            locations: Optional[Sequence[FaultLocation]] = None,
            parallel: bool = False,
            workers: Optional[int] = None,
            chunk_size: Optional[int] = None,
            memoize: Optional[bool] = None,
            cache: Optional["FaultPatternCache"] = None,
            progress: Optional[Callable[["ProgressEvent"], None]] = None,
            checkpoint=None,
            resume: bool = True,
            runtime=None,
            ) -> List[GadgetMonteCarloResult]:
    """Failure-rate series over a range of physical error rates.

    Seed semantics: the point at index ``i`` runs with ``seed + i``,
    so one ``seed`` pins the entire series (identical re-runs) while
    every point still draws from a distinct stream.  With
    ``seed=None`` each point seeds itself from OS entropy and the
    series is **nondeterministic** — pass a seed for reproducible
    figures.

    ``channel`` and the engine options are threaded through to every
    underlying :func:`gadget_monte_carlo` call.  On the engine path a
    single :class:`~repro.analysis.engine.FaultPatternCache` is shared
    across all points (verdicts depend only on the fault pattern, not
    on p), so later points mostly reuse earlier simulations.

    ``checkpoint`` makes the sweep resumable at two granularities:
    completed points are journaled whole (``points`` records under the
    run directory) and the point in flight checkpoints its evaluation
    chunks in a ``point-NNN`` subdirectory.  Re-running the same call
    after a crash (``resume=True``, the default) replays completed
    points verbatim and finishes the interrupted one, yielding the
    same series an uninterrupted run produces.  Resumed points carry
    ``engine_stats=None`` (the instrumentation died with the crashed
    process; the statistics did not).  Requires a seed and memoization,
    like the per-run journals.
    """
    engine_requested = _engine_requested(parallel, workers, chunk_size,
                                         memoize, cache, progress,
                                         checkpoint, runtime)
    if locations is None:
        locations = _default_locations(gadget)
    if engine_requested and cache is None and \
            (memoize is None or memoize):
        from repro.analysis.engine import FaultPatternCache

        cache = FaultPatternCache()

    store = None
    done_points: Dict[int, GadgetMonteCarloResult] = {}
    if checkpoint is not None:
        from repro.analysis.engine import DEFAULT_CHUNK_SIZE
        from repro.exceptions import AnalysisError
        from repro.runtime.checkpoint import as_store

        store = as_store(checkpoint)
        if seed is None:
            raise AnalysisError(
                "sweep_p checkpointing requires an explicit seed: an "
                "unseeded sweep cannot be resumed bit-identically"
            )
        if memoize is not None and not memoize:
            raise AnalysisError(
                "sweep_p checkpointing requires memoize=True"
            )
        fingerprint = {
            "workload": "sweep_p",
            "gadget": gadget.name,
            "locations": len(list(locations)),
            "p_values": [float(p) for p in p_values],
            "trials": int(trials),
            "seed": seed,
            "chunk_size": chunk_size or DEFAULT_CHUNK_SIZE,
            "channel": channel,
        }
        if resume and store.exists():
            store.check_fingerprint(fingerprint)
            for record in store.load_records("points"):
                done_points[int(record["index"])] = \
                    _point_from_payload(record["result"])
        else:
            store.clear()
            store.write_header(fingerprint)

    results: List[GadgetMonteCarloResult] = []
    for index, p in enumerate(p_values):
        if index in done_points:
            results.append(done_points[index])
            continue
        noise = NoiseModel.uniform(p, channel=channel)
        point_seed = None if seed is None else seed + index
        if engine_requested:
            point_store = store.substore(f"point-{index:03d}") \
                if store is not None else None
            result = gadget_monte_carlo(
                gadget, initial_state, evaluator, noise, trials,
                locations=locations, seed=point_seed,
                parallel=parallel, workers=workers,
                chunk_size=chunk_size, memoize=memoize, cache=cache,
                progress=progress, checkpoint=point_store,
                resume=resume, runtime=runtime,
            )
        else:
            result = gadget_monte_carlo(
                gadget, initial_state, evaluator, noise, trials,
                locations=locations, seed=point_seed,
            )
        if store is not None:
            store.append_record("points", {
                "index": index,
                "result": _point_payload(result),
            })
        results.append(result)
    if store is not None:
        store.finalize({"points": len(results)})
    return results
