"""Statistical trust layer: certified intervals and sequential tests.

Every headline number the analysis stack produces — gadget failure
rates, malignant-pair fractions, the stress pass/degrade/fail table —
is a binomial proportion estimated by Monte Carlo.  This module turns
those point estimates into *certified* statements:

* **Interval estimators** (:func:`wilson_interval`,
  :func:`clopper_pearson_interval`, :func:`jeffreys_interval`, plus
  the zero-failure :func:`rule_of_three_upper`) replace the bare
  normal-approximation ``stderr``, which degenerates at 0 or n
  observed failures exactly where fault-tolerance claims live.
  Clopper–Pearson is exact (guaranteed >= nominal coverage at every
  (n, p)); Wilson and Jeffreys are the tight approximations the
  literature recommends over the Wald interval.
* **Sequential tests**: a Wald :class:`Sprt` (sequential probability
  ratio test) and an always-valid :class:`ConfidenceSequenceTest`
  (beta-mixture martingale, Ville's inequality), both emitting typed
  ``accept`` / ``reject`` / ``undecided`` decisions at configured
  alpha/beta error rates so a certification run stops as soon as the
  claim is decided instead of burning a fixed trial budget.
* **:class:`ClaimVerdict`** — the typed record a sequential
  certification returns: decision, trials consumed, error budget, and
  an always-valid confidence interval that remains honest under the
  optional stopping the sequential test performs.

Everything here is pure ``math``/``numpy`` — no scipy dependency in
the runtime package (the test suite cross-checks against scipy where
it is available).  All estimator state is a plain dict of counts
(:meth:`Sprt.state_dict`), so sequential runs checkpoint and resume
through :class:`~repro.runtime.checkpoint.CheckpointStore` without
bias: the decision is a deterministic function of the (replayed)
per-batch counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import AnalysisError

#: Typed sequential decisions.
ACCEPT, REJECT, UNDECIDED = "accept", "reject", "undecided"

#: Interval methods selectable by name.
INTERVAL_METHODS = ("wilson", "clopper-pearson", "jeffreys")


# ---------------------------------------------------------------------------
# Special functions (pure math; no scipy in the runtime package)
# ---------------------------------------------------------------------------

def normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF."""
    if not 0.0 < q < 1.0:
        raise AnalysisError(f"normal quantile needs 0 < q < 1, got {q}")
    return NormalDist().inv_cdf(q)


def log_beta(a: float, b: float) -> float:
    """log B(a, b) via log-gamma."""
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            return h
    return h  # converged to float precision for every tested (a, b, x)


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), the CDF of a Beta(a, b) variate at x."""
    if a <= 0 or b <= 0:
        raise AnalysisError(
            f"beta parameters must be positive, got a={a}, b={b}"
        )
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (a * math.log(x) + b * math.log1p(-x)
                 - math.log(a) - log_beta(a, b))
    # Use the continued fraction on the side where it converges fast.
    if x < (a + 1.0) / (a + b + 2.0):
        return math.exp(log_front) * _betacf(a, b, x)
    log_front_sym = (b * math.log1p(-x) + a * math.log(x)
                     - math.log(b) - log_beta(b, a))
    return 1.0 - math.exp(log_front_sym) * _betacf(b, a, 1.0 - x)


def beta_quantile(q: float, a: float, b: float) -> float:
    """Inverse Beta(a, b) CDF by bisection (monotone, so robust)."""
    if not 0.0 <= q <= 1.0:
        raise AnalysisError(f"beta quantile needs 0 <= q <= 1, got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return 1.0
    lo, hi = 0.0, 1.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(a, b, mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-15:
            break
    return 0.5 * (lo + hi)


# ---------------------------------------------------------------------------
# Interval estimators
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BinomialInterval:
    """A confidence interval for a binomial proportion.

    Attributes:
        method: estimator name (``wilson``, ``clopper-pearson``,
            ``jeffreys``, or ``confidence-sequence``).
        failures: observed successes of the counted event.
        trials: number of Bernoulli trials.
        confidence: nominal coverage (e.g. 0.95).
        lower, upper: the interval endpoints in [0, 1].
    """

    method: str
    failures: int
    trials: int
    confidence: float
    lower: float
    upper: float

    @property
    def point(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    @property
    def half_width(self) -> float:
        return 0.5 * (self.upper - self.lower)

    def contains(self, p: float) -> bool:
        return self.lower <= p <= self.upper

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "failures": self.failures,
            "trials": self.trials,
            "confidence": self.confidence,
            "lower": self.lower,
            "upper": self.upper,
        }


def _check_counts(failures: int, trials: int,
                  confidence: float) -> None:
    if trials < 0 or failures < 0 or failures > trials:
        raise AnalysisError(
            f"invalid binomial counts: failures={failures}, "
            f"trials={trials}"
        )
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def wilson_interval(failures: int, trials: int,
                    confidence: float = 0.95) -> BinomialInterval:
    """Wilson score interval — the recommended normal-free default.

    Never degenerates to zero width at 0 or n observed failures, and
    its coverage tracks the nominal level far better than the Wald
    interval at the small rates the O(p^2) experiments probe.
    """
    _check_counts(failures, trials, confidence)
    if trials == 0:
        return BinomialInterval("wilson", 0, 0, confidence, 0.0, 1.0)
    z = normal_quantile(0.5 + confidence / 2.0)
    n = float(trials)
    p_hat = failures / n
    denom = 1.0 + z * z / n
    center = (p_hat + z * z / (2.0 * n)) / denom
    margin = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / n + z * z / (4.0 * n * n)
    )
    # Pin the boundary endpoints exactly: at 0 (resp. n) observed
    # failures the score interval's endpoint is analytically 0 (resp.
    # 1), but the float arithmetic above leaves ~1e-17 residue, which
    # would make contains(0.0) false.
    lower = 0.0 if failures == 0 else max(0.0, center - margin)
    upper = 1.0 if failures == trials else min(1.0, center + margin)
    return BinomialInterval(
        "wilson", failures, trials, confidence, lower, upper,
    )


def clopper_pearson_interval(failures: int, trials: int,
                             confidence: float = 0.95
                             ) -> BinomialInterval:
    """Clopper–Pearson exact interval: guaranteed >= nominal coverage.

    Inverts the binomial tail tests through the Beta quantile
    identities; never anti-conservative at any (n, p), which is the
    property a safety claim ("the failure rate is below p_th") needs.
    """
    _check_counts(failures, trials, confidence)
    if trials == 0:
        return BinomialInterval("clopper-pearson", 0, 0, confidence,
                                0.0, 1.0)
    alpha = 1.0 - confidence
    if failures == 0:
        lower = 0.0
    else:
        lower = beta_quantile(alpha / 2.0, failures,
                              trials - failures + 1)
    if failures == trials:
        upper = 1.0
    else:
        upper = beta_quantile(1.0 - alpha / 2.0, failures + 1,
                              trials - failures)
    return BinomialInterval("clopper-pearson", failures, trials,
                            confidence, lower, upper)


def jeffreys_interval(failures: int, trials: int,
                      confidence: float = 0.95) -> BinomialInterval:
    """Jeffreys interval: Beta(1/2, 1/2) posterior quantiles.

    The equal-tailed credible interval under the Jeffreys prior, with
    the conventional endpoint fix-ups (lower = 0 at zero failures,
    upper = 1 at all failures).
    """
    _check_counts(failures, trials, confidence)
    if trials == 0:
        return BinomialInterval("jeffreys", 0, 0, confidence, 0.0, 1.0)
    alpha = 1.0 - confidence
    a = failures + 0.5
    b = trials - failures + 0.5
    lower = 0.0 if failures == 0 else beta_quantile(alpha / 2.0, a, b)
    upper = 1.0 if failures == trials else \
        beta_quantile(1.0 - alpha / 2.0, a, b)
    return BinomialInterval("jeffreys", failures, trials, confidence,
                            lower, upper)


def rule_of_three_upper(trials: int, confidence: float = 0.95) -> float:
    """Upper bound on the rate after ``trials`` failure-free trials.

    The exact one-sided bound ``1 - (1 - confidence)^(1/n)``, whose
    first-order form at 95% is the classic 3/n "rule of three".  This
    is the number a zero-failure fault-tolerance run should report
    instead of ``stderr = 0``.
    """
    if trials < 1:
        raise AnalysisError(
            f"rule of three needs >= 1 trial, got {trials}"
        )
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    return 1.0 - (1.0 - confidence) ** (1.0 / trials)


def binomial_interval(failures: int, trials: int,
                      confidence: float = 0.95,
                      method: str = "wilson") -> BinomialInterval:
    """Dispatch by method name (see :data:`INTERVAL_METHODS`)."""
    builders = {
        "wilson": wilson_interval,
        "clopper-pearson": clopper_pearson_interval,
        "jeffreys": jeffreys_interval,
    }
    if method not in builders:
        raise AnalysisError(
            f"unknown interval method {method!r}; pick from "
            f"{sorted(builders)}"
        )
    return builders[method](failures, trials, confidence)


def interval_stderr(failures: int, trials: int,
                    confidence: float = 0.95) -> float:
    """Wilson-based standard-error surrogate.

    The Wilson half-width divided by the normal quantile: coincides
    with the classical binomial standard error away from the
    boundaries but stays strictly positive at 0 or n failures, where
    the normal approximation collapses to a lying zero.
    """
    if trials == 0:
        return 0.0
    z = normal_quantile(0.5 + confidence / 2.0)
    return wilson_interval(failures, trials, confidence).half_width / z


def exact_coverage(method: str, trials: int, p: float,
                   confidence: float = 0.95) -> float:
    """Exact coverage of an interval method at one (n, p).

    Sums the binomial pmf over the outcomes whose interval contains
    ``p`` — no Monte Carlo involved, so statements like "Clopper–
    Pearson is never anti-conservative" are checkable exactly.
    """
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p must be in [0, 1], got {p}")
    total = 0.0
    for k in range(trials + 1):
        interval = binomial_interval(k, trials, confidence, method)
        if interval.contains(p):
            if p in (0.0, 1.0):
                pmf = 1.0 if (k == 0) == (p == 0.0) else 0.0
            else:
                log_pmf = (math.lgamma(trials + 1)
                           - math.lgamma(k + 1)
                           - math.lgamma(trials - k + 1)
                           + k * math.log(p)
                           + (trials - k) * math.log1p(-p))
                pmf = math.exp(log_pmf)
            total += pmf
    return total


# ---------------------------------------------------------------------------
# Sequential tests
# ---------------------------------------------------------------------------

def _check_boundaries(p0: float, p1: float, alpha: float,
                      beta: float) -> None:
    if not 0.0 < p0 < p1 < 1.0:
        raise AnalysisError(
            f"sequential test needs 0 < p0 < p1 < 1, got "
            f"p0={p0}, p1={p1}"
        )
    for name, value in (("alpha", alpha), ("beta", beta)):
        if not 0.0 < value < 0.5:
            raise AnalysisError(
                f"{name} must be in (0, 0.5), got {value}"
            )


class Sprt:
    """Wald's sequential probability ratio test for a failure rate.

    Tests H0: p <= ``p0`` (the claim holds) against H1: p >= ``p1``,
    with type-I error ``alpha`` (rejecting a true claim) and type-II
    error ``beta`` (accepting a false one).  The decision is *sticky*:
    once a Wald boundary is crossed, later updates are ignored — that
    is the stopping rule, and it is what makes replaying journaled
    batch counts reproduce the live decision exactly.
    """

    def __init__(self, p0: float, p1: float, alpha: float = 0.05,
                 beta: float = 0.05) -> None:
        _check_boundaries(p0, p1, alpha, beta)
        self.p0, self.p1 = float(p0), float(p1)
        self.alpha, self.beta = float(alpha), float(beta)
        self._llr_failure = math.log(p1 / p0)
        self._llr_success = math.log((1.0 - p1) / (1.0 - p0))
        self.upper_boundary = math.log((1.0 - beta) / alpha)
        self.lower_boundary = math.log(beta / (1.0 - alpha))
        self.trials = 0
        self.failures = 0
        self.log_likelihood_ratio = 0.0
        self.decision: Optional[str] = None
        self.decided_at: Optional[int] = None

    def update(self, failures: int, trials: int) -> Optional[str]:
        """Fold one batch of Bernoulli outcomes into the test."""
        if failures < 0 or trials < 0 or failures > trials:
            raise AnalysisError(
                f"invalid batch: failures={failures}, trials={trials}"
            )
        if self.decision is not None:
            return self.decision
        self.trials += trials
        self.failures += failures
        self.log_likelihood_ratio += (
            failures * self._llr_failure
            + (trials - failures) * self._llr_success
        )
        if self.log_likelihood_ratio >= self.upper_boundary:
            self.decision = REJECT
            self.decided_at = self.trials
        elif self.log_likelihood_ratio <= self.lower_boundary:
            self.decision = ACCEPT
            self.decided_at = self.trials
        return self.decision

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable estimator state (counts + decision)."""
        return {
            "trials": self.trials,
            "failures": self.failures,
            "log_likelihood_ratio": self.log_likelihood_ratio,
            "decision": self.decision,
            "decided_at": self.decided_at,
        }


class ConfidenceSequenceTest:
    """Always-valid sequential test via a beta-mixture martingale.

    For each candidate rate p, the prior-posterior ratio

        M_n(p) = B(a + k, b + n - k) / B(a, b) / (p^k (1-p)^(n-k))

    is a nonnegative martingale under p with M_0 = 1, so by Ville's
    inequality ``P(exists n: M_n(p) >= 1/delta) <= delta``.  The test
    rejects the claim (p <= ``p0``) when the martingale at ``p0``
    exceeds ``1/alpha`` with the empirical rate above p0, and accepts
    when the martingale at ``p1`` exceeds ``1/beta`` with the
    empirical rate below p1.  Unlike the SPRT, the implied confidence
    sequence (:meth:`interval`) is valid *at every n simultaneously*,
    so the reported interval stays honest under optional stopping.
    """

    def __init__(self, p0: float, p1: float, alpha: float = 0.05,
                 beta: float = 0.05, prior_a: float = 0.5,
                 prior_b: float = 0.5) -> None:
        _check_boundaries(p0, p1, alpha, beta)
        if prior_a <= 0 or prior_b <= 0:
            raise AnalysisError(
                f"mixture prior must be positive, got "
                f"a={prior_a}, b={prior_b}"
            )
        self.p0, self.p1 = float(p0), float(p1)
        self.alpha, self.beta = float(alpha), float(beta)
        self.prior_a, self.prior_b = float(prior_a), float(prior_b)
        self.trials = 0
        self.failures = 0
        self.decision: Optional[str] = None
        self.decided_at: Optional[int] = None

    def log_martingale(self, p: float) -> float:
        """log M_n(p) at the current counts."""
        if not 0.0 < p < 1.0:
            raise AnalysisError(f"need 0 < p < 1, got {p}")
        k, n = self.failures, self.trials
        log_posterior = log_beta(self.prior_a + k,
                                 self.prior_b + n - k)
        log_prior = log_beta(self.prior_a, self.prior_b)
        log_likelihood = k * math.log(p) + (n - k) * math.log1p(-p)
        return log_posterior - log_prior - log_likelihood

    def update(self, failures: int, trials: int) -> Optional[str]:
        if failures < 0 or trials < 0 or failures > trials:
            raise AnalysisError(
                f"invalid batch: failures={failures}, trials={trials}"
            )
        if self.decision is not None:
            return self.decision
        self.trials += trials
        self.failures += failures
        if self.trials == 0:
            return None
        rate = self.failures / self.trials
        if rate > self.p0 and \
                self.log_martingale(self.p0) > math.log(1.0 / self.alpha):
            self.decision = REJECT
            self.decided_at = self.trials
        elif rate < self.p1 and \
                self.log_martingale(self.p1) > math.log(1.0 / self.beta):
            self.decision = ACCEPT
            self.decided_at = self.trials
        return self.decision

    def interval(self, confidence: float = 0.95) -> BinomialInterval:
        """The confidence sequence at the current counts.

        The sub-level set {p : M_n(p) < 1/(1-confidence)} — an
        interval, because the log-martingale is convex in p with its
        minimum at the empirical rate.  Valid simultaneously over all
        n at the stated level, hence safe to report after stopping.
        """
        if not 0.0 < confidence < 1.0:
            raise AnalysisError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        threshold = math.log(1.0 / (1.0 - confidence))
        if self.trials == 0:
            return BinomialInterval("confidence-sequence", 0, 0,
                                    confidence, 0.0, 1.0)
        rate = self.failures / self.trials
        eps = 1e-12

        def excluded(p: float) -> bool:
            return self.log_martingale(p) > threshold

        anchor = min(max(rate, eps), 1.0 - eps)
        lower, upper = 0.0, 1.0
        if excluded(eps) and eps < anchor:
            lo, hi = eps, anchor
            for _ in range(80):
                mid = 0.5 * (lo + hi)
                if excluded(mid):
                    lo = mid
                else:
                    hi = mid
            lower = lo
        if excluded(1.0 - eps) and anchor < 1.0 - eps:
            lo, hi = anchor, 1.0 - eps
            for _ in range(80):
                mid = 0.5 * (lo + hi)
                if excluded(mid):
                    hi = mid
                else:
                    lo = mid
            upper = hi
        return BinomialInterval("confidence-sequence", self.failures,
                                self.trials, confidence, lower, upper)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "failures": self.failures,
            "decision": self.decision,
            "decided_at": self.decided_at,
        }


#: Sequential test methods selectable by name.
SEQUENTIAL_METHODS = ("sprt", "confidence-sequence")


def make_sequential_test(method: str, p0: float, p1: float,
                         alpha: float = 0.05, beta: float = 0.05):
    """Build a sequential test by name."""
    if method == "sprt":
        return Sprt(p0, p1, alpha=alpha, beta=beta)
    if method == "confidence-sequence":
        return ConfidenceSequenceTest(p0, p1, alpha=alpha, beta=beta)
    raise AnalysisError(
        f"unknown sequential method {method!r}; pick from "
        f"{SEQUENTIAL_METHODS}"
    )


# ---------------------------------------------------------------------------
# Typed claim verdicts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ClaimVerdict:
    """The certified outcome of one sequential claim test.

    Attributes:
        claim: human-readable statement of H0 (e.g.
            ``failure_rate <= 0.01``).
        decision: ``accept`` (H0 certified at level beta), ``reject``
            (H1 certified at level alpha) or ``undecided`` (budget
            exhausted between the boundaries).
        trials / failures: Bernoulli counts consumed.
        p0 / p1: the indifference-zone boundaries tested.
        alpha / beta: the configured error rates.
        method: ``sprt`` or ``confidence-sequence``.
        max_trials: the budget the run was allowed.
        interval: an always-valid confidence interval on the rate
            (safe to read despite the data-dependent stopping time).
    """

    claim: str
    decision: str
    trials: int
    failures: int
    p0: float
    p1: float
    alpha: float
    beta: float
    method: str
    max_trials: int
    interval: BinomialInterval

    @property
    def stopped_early(self) -> bool:
        return self.decision != UNDECIDED and self.trials < self.max_trials

    @property
    def trials_saved(self) -> int:
        return self.max_trials - self.trials

    def summary_line(self) -> str:
        saved = (f", saved {self.trials_saved} of {self.max_trials} "
                 f"budgeted trials" if self.stopped_early else "")
        return (
            f"{self.claim}: {self.decision.upper()} after "
            f"{self.trials} trials ({self.failures} failures, rate in "
            f"[{self.interval.lower:.2e}, {self.interval.upper:.2e}] "
            f"at {100 * self.interval.confidence:.0f}%{saved})"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "claim": self.claim,
            "decision": self.decision,
            "trials": self.trials,
            "failures": self.failures,
            "p0": self.p0,
            "p1": self.p1,
            "alpha": self.alpha,
            "beta": self.beta,
            "method": self.method,
            "max_trials": self.max_trials,
            "interval": self.interval.to_json_dict(),
        }


def build_claim_verdict(test, claim: str, method: str,
                        max_trials: int) -> ClaimVerdict:
    """Assemble the typed verdict from a finished sequential test.

    The reported interval is always the beta-mixture confidence
    *sequence* at level ``1 - (alpha + beta)`` — time-uniform, so it
    stays valid no matter where the test stopped (an ordinary fixed-n
    interval would be biased by the stopping rule).
    """
    confidence = max(0.5, 1.0 - (test.alpha + test.beta))
    sequence = ConfidenceSequenceTest(test.p0, test.p1,
                                      alpha=test.alpha, beta=test.beta)
    sequence.trials = test.trials
    sequence.failures = test.failures
    return ClaimVerdict(
        claim=claim,
        decision=test.decision or UNDECIDED,
        trials=test.trials,
        failures=test.failures,
        p0=test.p0,
        p1=test.p1,
        alpha=test.alpha,
        beta=test.beta,
        method=method,
        max_trials=max_trials,
        interval=sequence.interval(confidence),
    )
