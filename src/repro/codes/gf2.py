"""Linear algebra over GF(2).

All code constructions in the library — the Hamming/repetition
classical codes, the CSS construction, the systematic encoder builder
and the syndrome decoders — reduce to row operations on binary
matrices.  Matrices are numpy uint8 arrays with entries in {0, 1}.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import CodeError


def as_gf2(matrix) -> np.ndarray:
    """Coerce to a 2-D uint8 array with entries reduced mod 2."""
    array = np.atleast_2d(np.asarray(matrix, dtype=np.int64) % 2)
    return array.astype(np.uint8)


def rref(matrix: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Reduced row-echelon form over GF(2).

    Returns:
        (reduced matrix, pivot column indices).  Zero rows are kept so
        the shape is preserved.
    """
    work = as_gf2(matrix).copy()
    rows, cols = work.shape
    pivots: List[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot_rows = np.nonzero(work[row:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = row + int(pivot_rows[0])
        if pivot != row:
            work[[row, pivot]] = work[[pivot, row]]
        for other in range(rows):
            if other != row and work[other, col]:
                work[other] ^= work[row]
        pivots.append(col)
        row += 1
    return work, pivots


def rank(matrix: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = rref(matrix)
    return len(pivots)


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """A basis of the right nullspace {x : M x = 0}, rows = basis vectors."""
    reduced, pivots = rref(matrix)
    _, cols = reduced.shape
    free = [c for c in range(cols) if c not in pivots]
    basis: List[np.ndarray] = []
    for free_col in free:
        vector = np.zeros(cols, dtype=np.uint8)
        vector[free_col] = 1
        for row_index, pivot_col in enumerate(pivots):
            if reduced[row_index, free_col]:
                vector[pivot_col] = 1
        basis.append(vector)
    if not basis:
        return np.zeros((0, cols), dtype=np.uint8)
    return np.array(basis, dtype=np.uint8)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> Optional[np.ndarray]:
    """One solution x of M x = b over GF(2), or None if inconsistent."""
    work = as_gf2(matrix)
    vector = np.asarray(rhs, dtype=np.uint8).reshape(-1) % 2
    rows, cols = work.shape
    if vector.shape[0] != rows:
        raise CodeError("solve: dimension mismatch")
    augmented = np.concatenate([work, vector.reshape(-1, 1)], axis=1)
    reduced, pivots = rref(augmented)
    if cols in pivots:
        return None  # pivot in the augmented column: inconsistent
    solution = np.zeros(cols, dtype=np.uint8)
    for row_index, pivot_col in enumerate(pivots):
        solution[pivot_col] = reduced[row_index, cols]
    return solution


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2)."""
    product = as_gf2(a).astype(np.int64) @ as_gf2(b).astype(np.int64)
    return (product % 2).astype(np.uint8)


def matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2)."""
    product = as_gf2(matrix).astype(np.int64) @ (
        np.asarray(vector, dtype=np.int64).reshape(-1) % 2
    )
    return (product % 2).astype(np.uint8)


def row_space_contains(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Whether ``vector`` lies in the row space of ``matrix``."""
    base_rank = rank(matrix)
    stacked = np.vstack([as_gf2(matrix), as_gf2(vector)])
    return rank(stacked) == base_rank


def all_codewords(generator: np.ndarray) -> np.ndarray:
    """Enumerate the row space of a generator matrix (2^k rows)."""
    gen = as_gf2(generator)
    k, n = gen.shape
    if k > 20:
        raise CodeError(f"refusing to enumerate 2^{k} codewords")
    words = np.zeros((2**k, n), dtype=np.uint8)
    for message in range(2**k):
        bits = np.array([(message >> i) & 1 for i in range(k)],
                        dtype=np.uint8)
        words[message] = matvec(gen.T, bits)
    return np.unique(words, axis=0)


def weight(vector: np.ndarray) -> int:
    """Hamming weight."""
    return int(np.sum(np.asarray(vector, dtype=np.uint8) % 2))


def standard_form(matrix: np.ndarray) -> Tuple[np.ndarray, List[int]]:
    """Row reduce and report pivots (alias of :func:`rref` for intent)."""
    return rref(matrix)
