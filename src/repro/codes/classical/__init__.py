"""Classical binary block codes (the paper's 'classical' machinery)."""

from repro.codes.classical.hamming import HAMMING_PARITY_CHECK, HammingCode
from repro.codes.classical.linear import LinearCode
from repro.codes.classical.repetition import RepetitionCode, majority_vote

__all__ = [
    "HAMMING_PARITY_CHECK",
    "HammingCode",
    "LinearCode",
    "RepetitionCode",
    "majority_vote",
]
