"""The classical repetition code and majority voting.

The repetition code is the paper's "classical ancilla": logical 0 is
|0...0>, logical 1 is |1...1>.  It corrects floor((n-1)/2) bit errors
by majority vote and corrects *no* phase errors — which is fine,
because (Sec. 4.2) phase errors cannot propagate from a control bit to
the quantum data, so a block used only as the control of bitwise
controlled-U operations never needs phase protection.

The paper's efficiency note (Sec. 4.2) is also encoded here: to protect
a quantum code that corrects k errors it suffices to use 2k + 1
repetitions (``RepetitionCode.for_correctable(k)``), e.g. 3 repetitions
for the Steane code, before fanning the majority out to n bits.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codes.classical.linear import LinearCode
from repro.exceptions import CodeError


class RepetitionCode(LinearCode):
    """The [n, 1, n] repetition code with majority-vote decoding."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise CodeError("repetition code needs n >= 1")
        generator = np.ones((1, n), dtype=np.uint8)
        # Parity check: adjacent-pair parities x_i + x_{i+1} = 0.
        if n > 1:
            parity = np.zeros((n - 1, n), dtype=np.uint8)
            for row in range(n - 1):
                parity[row, row] = 1
                parity[row, row + 1] = 1
        else:
            parity = np.zeros((0, 1), dtype=np.uint8)
        super().__init__(generator=generator, parity_check=parity,
                         name=f"repetition{n}")

    @classmethod
    def for_correctable(cls, k: int) -> "RepetitionCode":
        """Smallest repetition code correcting k bit errors: n = 2k+1.

        This is the paper's repetition-count optimisation: matching the
        classical ancilla's correction radius to the quantum code's k
        keeps the gadget small and the threshold high.
        """
        if k < 0:
            raise CodeError("k must be non-negative")
        return cls(2 * k + 1)

    def majority(self, bits: Sequence[int]) -> int:
        """Majority vote over the bits (ties impossible for odd n)."""
        bits = np.asarray(bits, dtype=np.uint8) % 2
        if bits.shape != (self.n,):
            raise CodeError(
                f"expected {self.n} bits, got {bits.shape}"
            )
        ones = int(np.sum(bits))
        if 2 * ones == self.n:
            raise CodeError(
                f"majority undefined: {ones} ones among {self.n} bits"
            )
        return int(2 * ones > self.n)

    def correct(self, word: Sequence[int]) -> np.ndarray:
        """Majority-vote correction (overrides the syndrome table)."""
        value = self.majority(word)
        return np.full(self.n, value, dtype=np.uint8)

    def decode(self, word: Sequence[int]) -> np.ndarray:
        return np.array([self.majority(word)], dtype=np.uint8)


def majority_vote(bits: Sequence[int]) -> int:
    """Stand-alone strict majority of a bit sequence."""
    bits = [int(b) & 1 for b in bits]
    ones = sum(bits)
    if 2 * ones == len(bits):
        raise CodeError(f"majority undefined for {bits}")
    return int(2 * ones > len(bits))
