"""Generic binary linear block codes.

A :class:`LinearCode` is defined by a generator matrix G (k x n) or a
parity-check matrix H ((n-k) x n) over GF(2).  It provides encoding,
syndrome computation and maximum-likelihood (minimum-weight) decoding
via a syndrome table — everything the paper's "classical ancilla"
machinery needs: the repetition code protecting the ancilla and the
Hamming code underlying the Steane quantum code are both instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codes import gf2
from repro.exceptions import CodeError, DecodingFailure


class LinearCode:
    """An [n, k, d] binary linear code."""

    def __init__(self, generator: Optional[np.ndarray] = None,
                 parity_check: Optional[np.ndarray] = None,
                 name: str = "") -> None:
        if generator is None and parity_check is None:
            raise CodeError("need a generator or a parity-check matrix")
        if generator is not None:
            self._generator = gf2.as_gf2(generator)
        else:
            self._generator = gf2.nullspace(gf2.as_gf2(parity_check))
        if parity_check is not None:
            self._parity_check = gf2.as_gf2(parity_check)
        else:
            self._parity_check = gf2.nullspace(self._generator)
        self.name = name or "linear"
        self._validate()
        self._syndrome_table: Optional[Dict[Tuple[int, ...], np.ndarray]] = None
        self._distance: Optional[int] = None

    def _validate(self) -> None:
        product = gf2.matmul(self._parity_check, self._generator.T)
        if np.any(product):
            raise CodeError(
                f"code {self.name}: generator and parity-check matrices "
                "are inconsistent (H G^T != 0)"
            )
        if gf2.rank(self._generator) != self._generator.shape[0]:
            raise CodeError(f"code {self.name}: generator rows dependent")

    # -- parameters -----------------------------------------------------

    @property
    def n(self) -> int:
        """Block length."""
        return int(self._generator.shape[1])

    @property
    def k(self) -> int:
        """Message length."""
        return int(self._generator.shape[0])

    @property
    def generator(self) -> np.ndarray:
        return self._generator.copy()

    @property
    def parity_check(self) -> np.ndarray:
        return self._parity_check.copy()

    @property
    def distance(self) -> int:
        """Minimum distance (computed by codeword enumeration)."""
        if self._distance is None:
            words = gf2.all_codewords(self._generator)
            weights = [gf2.weight(w) for w in words if gf2.weight(w) > 0]
            if not weights:
                raise CodeError(f"code {self.name} has no nonzero words")
            self._distance = min(weights)
        return self._distance

    @property
    def correctable_errors(self) -> int:
        """t = floor((d-1)/2), the guaranteed-correctable weight."""
        return (self.distance - 1) // 2

    # -- encoding / membership ------------------------------------------

    def encode(self, message: Sequence[int]) -> np.ndarray:
        """Encode a k-bit message into an n-bit codeword."""
        bits = np.asarray(message, dtype=np.uint8) % 2
        if bits.shape != (self.k,):
            raise CodeError(
                f"message length {bits.shape} does not match k={self.k}"
            )
        return gf2.matvec(self._generator.T, bits)

    def is_codeword(self, word: Sequence[int]) -> bool:
        return not np.any(self.syndrome(word))

    def codewords(self) -> np.ndarray:
        """All 2^k codewords (rows)."""
        return gf2.all_codewords(self._generator)

    def dual(self) -> "LinearCode":
        """The dual code C^perp (generator = our parity check)."""
        return LinearCode(generator=self._parity_check,
                          name=f"{self.name}_dual")

    def contains_code(self, other: "LinearCode") -> bool:
        """Whether other ⊆ self (needed by the CSS construction)."""
        for row in other.generator:
            if not gf2.row_space_contains(self._generator, row):
                return False
        return True

    # -- decoding ----------------------------------------------------------

    def syndrome(self, word: Sequence[int]) -> np.ndarray:
        """H w — zero iff ``word`` is a codeword."""
        bits = np.asarray(word, dtype=np.uint8) % 2
        if bits.shape != (self.n,):
            raise CodeError(
                f"word length {bits.shape} does not match n={self.n}"
            )
        return gf2.matvec(self._parity_check, bits)

    def correct(self, word: Sequence[int]) -> np.ndarray:
        """Return the nearest codeword (minimum-weight error decoding).

        Raises:
            DecodingFailure: when the syndrome has no coset leader of
                weight <= t (detected but uncorrectable error).
        """
        bits = np.asarray(word, dtype=np.uint8) % 2
        error = self.error_for_syndrome(self.syndrome(bits))
        return (bits ^ error).astype(np.uint8)

    def error_for_syndrome(self, syndrome: Sequence[int]) -> np.ndarray:
        """Minimum-weight error pattern matching the syndrome."""
        table = self._build_syndrome_table()
        key = tuple(int(b) for b in np.asarray(syndrome, dtype=np.uint8))
        if key not in table:
            raise DecodingFailure(
                f"code {self.name}: syndrome {key} exceeds the "
                f"correction radius t={self.correctable_errors}"
            )
        return table[key].copy()

    def decode(self, word: Sequence[int]) -> np.ndarray:
        """Correct the word and recover the k-bit message."""
        codeword = self.correct(word)
        solution = gf2.solve(self._generator.T, codeword)
        if solution is None:
            raise DecodingFailure(
                f"code {self.name}: corrected word is not in the code"
            )
        return solution

    def _build_syndrome_table(self) -> Dict[Tuple[int, ...], np.ndarray]:
        if self._syndrome_table is not None:
            return self._syndrome_table
        table: Dict[Tuple[int, ...], np.ndarray] = {}
        zero = np.zeros(self.n, dtype=np.uint8)
        table[tuple(self.syndrome(zero))] = zero
        t = self.correctable_errors
        # Breadth-first over error weights guarantees coset leaders.
        from itertools import combinations

        for weight in range(1, t + 1):
            for positions in combinations(range(self.n), weight):
                error = np.zeros(self.n, dtype=np.uint8)
                error[list(positions)] = 1
                key = tuple(int(b) for b in self.syndrome(error))
                if key not in table:
                    table[key] = error
        self._syndrome_table = table
        return table

    def __repr__(self) -> str:
        return f"LinearCode({self.name}: [{self.n},{self.k}])"
