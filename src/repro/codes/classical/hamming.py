"""The [7, 4, 3] Hamming code.

This is the classical backbone of the Steane quantum code: measuring
all seven qubits of a Steane codeword in the computational basis yields
a (possibly corrupted) Hamming codeword, classical correction fixes up
to one bit error, and the *parity* of the corrected word is the logical
bit (paper Sec. 4.1).  The same parity-check structure supplies the
syndrome check bits that protect the N1 circuit of Fig. 1.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codes.classical.linear import LinearCode
from repro.exceptions import CodeError

#: Parity-check matrix whose column j (1-based) is the binary
#: representation of j — the classic Hamming arrangement, so a nonzero
#: syndrome *is* the (1-based) position of the flipped bit.
HAMMING_PARITY_CHECK = np.array(
    [
        [0, 0, 0, 1, 1, 1, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [1, 0, 1, 0, 1, 0, 1],
    ],
    dtype=np.uint8,
)


class HammingCode(LinearCode):
    """The [7, 4, 3] Hamming code with syndrome-as-position decoding."""

    def __init__(self) -> None:
        super().__init__(parity_check=HAMMING_PARITY_CHECK,
                         name="hamming7_4")

    def error_position(self, word: Sequence[int]) -> int:
        """Return the 0-based flipped position, or -1 for a codeword.

        Valid for at most one bit error (the code's guarantee).
        """
        syndrome = self.syndrome(word)
        position = int(syndrome[0]) * 4 + int(syndrome[1]) * 2 + int(syndrome[2])
        return position - 1

    def correct(self, word: Sequence[int]) -> np.ndarray:
        bits = (np.asarray(word, dtype=np.uint8) % 2).copy()
        if bits.shape != (self.n,):
            raise CodeError(f"expected 7 bits, got {bits.shape}")
        position = self.error_position(bits)
        if position >= 0:
            bits[position] ^= 1
        return bits

    def corrected_parity(self, word: Sequence[int]) -> int:
        """Parity of the corrected word — the Steane logical readout.

        The paper (Sec. 4.1): after classical error correction, even
        parity means the encoded ancilla is |0>_L, odd means |1>_L.
        """
        corrected = self.correct(word)
        return int(np.sum(corrected) % 2)

    def syndrome_circuit_supports(self) -> List[List[int]]:
        """Qubit index lists, one per parity check row.

        Row r touches the data positions with a 1 in H[r]; these are
        exactly the CNOT fan-ins of the syndrome block in Fig. 1.
        """
        return [
            [int(q) for q in np.nonzero(row)[0]]
            for row in HAMMING_PARITY_CHECK
        ]
