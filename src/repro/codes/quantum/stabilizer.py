"""Stabilizer formalism utilities.

A stabilizer code is defined by commuting Pauli generators; an error E
is detected by generator S iff E and S anticommute, and the vector of
those anticommutation bits is the error syndrome.  These helpers serve
the CSS code class and the analysis module's "is this residual error
correctable?" checks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.circuits.pauli import PauliString
from repro.exceptions import CodeError


def check_commuting_generators(generators: Sequence[PauliString]) -> None:
    """Raise unless every pair of generators commutes."""
    for i, first in enumerate(generators):
        for second in generators[i + 1:]:
            if not first.commutes_with(second):
                raise CodeError(
                    f"stabilizer generators {first!r} and {second!r} "
                    "anticommute"
                )


def syndrome_of(error: PauliString,
                generators: Sequence[PauliString]) -> Tuple[int, ...]:
    """Anticommutation bit per generator: the error syndrome."""
    return tuple(
        0 if error.commutes_with(generator) else 1
        for generator in generators
    )


def in_stabilizer_group(pauli: PauliString,
                        generators: Sequence[PauliString]) -> bool:
    """Whether ``pauli`` (up to phase) is a product of the generators.

    Works in the symplectic (binary) picture: stack the generators'
    (x|z) rows and test membership of pauli's (x|z) vector in their
    GF(2) row space.
    """
    from repro.codes import gf2

    if not generators:
        return pauli.is_identity
    rows = np.array(
        [list(g.x_bits) + list(g.z_bits) for g in generators],
        dtype=np.uint8,
    )
    target = np.array(list(pauli.x_bits) + list(pauli.z_bits),
                      dtype=np.uint8)
    return gf2.row_space_contains(rows, target)


def is_logical_operator(pauli: PauliString,
                        generators: Sequence[PauliString]) -> bool:
    """In the normalizer (commutes with all) but not the stabilizer.

    Such operators act non-trivially on the code space — they are
    exactly the undetectable errors that flip logical information.
    """
    if any(not pauli.commutes_with(g) for g in generators):
        return False
    return not in_stabilizer_group(pauli, generators)


def stabilizer_projector(generators: Sequence[PauliString],
                         num_qubits: int) -> np.ndarray:
    """Dense projector onto the code space (small n only)."""
    dim = 2**num_qubits
    projector = np.eye(dim, dtype=np.complex128)
    for generator in generators:
        if generator.num_qubits != num_qubits:
            raise CodeError("generator size mismatch")
        projector = projector @ (
            (np.eye(dim) + generator.matrix()) / 2.0
        )
    return projector
