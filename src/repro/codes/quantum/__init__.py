"""Quantum error-correcting codes (CSS family)."""

from repro.codes.quantum.css import CssCode
from repro.codes.quantum.stabilizer import (
    check_commuting_generators,
    in_stabilizer_group,
    is_logical_operator,
    stabilizer_projector,
    syndrome_of,
)
from repro.codes.quantum.steane import SteaneCode, steane_code
from repro.codes.quantum.trivial import TrivialCode, trivial_code

__all__ = [
    "CssCode",
    "SteaneCode",
    "TrivialCode",
    "check_commuting_generators",
    "in_stabilizer_group",
    "is_logical_operator",
    "stabilizer_projector",
    "steane_code",
    "syndrome_of",
    "trivial_code",
]
