"""The trivial [[1, 1, 1]] "code".

One physical qubit per logical qubit, no stabilizers, no protection.
Its purpose is validation at small scale: every fault-tolerant gadget
in :mod:`repro.ft` is parameterised by a :class:`~repro.codes.quantum.
css.CssCode`, and instantiating it with the trivial code collapses the
gadget to its bare logical circuit — e.g. the full measurement-free
Toffoli of Fig. 4, which needs ~45 qubits on the Steane code, needs
only ~12 on the trivial code and can be checked exactly against the
ideal Toffoli unitary.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.codes.classical.linear import LinearCode
from repro.codes.quantum.css import CssCode


class TrivialCode(CssCode):
    """[[1, 1, 1]]: encode = identity, logical ops = physical ops."""

    def __init__(self) -> None:
        full_space = LinearCode(generator=np.array([[1]], dtype=np.uint8),
                                name="full1")
        super().__init__(full_space, name="trivial")


@lru_cache(maxsize=1)
def trivial_code() -> TrivialCode:
    """Shared TrivialCode instance."""
    return TrivialCode()
