"""The CSS code construction (k = 1 logical qubit).

A self-dual-containing classical code C (C^perp ⊆ C) with
dim C - dim C^perp = 1 yields an [[n, 1]] quantum code:

* logical |0> = uniform superposition over the codewords of C^perp,
* logical |1> = the same superposition shifted by any word
  u ∈ C \\ C^perp,
* X-type and Z-type stabilizer generators both come from the rows of
  C's parity-check matrix (which generate C^perp).

The Steane code is CSS(Hamming[7,4]); the trivial [[1,1]] "code" is
CSS of the full space F_2 — it offers no protection but lets every
gadget in :mod:`repro.ft` be verified exactly on small state vectors.

Transversality facts used throughout the paper (Sec. 3) hold for any
such code with the extra property that C^perp codewords have doubly
even weight... For the codes shipped here we verify the concrete
transversal actions numerically in the test-suite rather than assuming
them: bitwise H is logical H, bitwise CNOT is logical CNOT, and bitwise
S^dagger realises logical S (the paper's note that bitwise sigma_z^{1/2}
yields the *inverse* logical gate, fixed by a bitwise sigma_z).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates
from repro.circuits.circuit import Circuit
from repro.circuits.pauli import PauliString
from repro.codes import gf2
from repro.codes.classical.linear import LinearCode
from repro.codes.quantum import stabilizer as stab
from repro.exceptions import CodeError, DecodingFailure
from repro.simulators.statevector import StateVector


class CssCode:
    """An [[n, 1]] CSS quantum code built from a classical code C."""

    def __init__(self, classical_code: LinearCode, name: str = "") -> None:
        self.classical_code = classical_code
        self.name = name or f"css({classical_code.name})"
        self._dual_generator = classical_code.parity_check
        if not classical_code.contains_code(
                LinearCode(generator=self._dual_generator,
                           name="dual_check")
                if self._dual_generator.shape[0] else _zero_code(classical_code.n)):
            raise CodeError(
                f"{self.name}: classical code must contain its dual "
                "(CSS self-orthogonality condition)"
            )
        if classical_code.k - self._dual_generator.shape[0] != 1:
            raise CodeError(
                f"{self.name}: dim C - dim C^perp must be 1 for one "
                "logical qubit, got "
                f"{classical_code.k - self._dual_generator.shape[0]}"
            )
        self._logical_support = self._find_logical_support()
        self._dual_words = self._enumerate_dual_words()
        self._check_stabilizers()

    # -- parameters -------------------------------------------------------

    @property
    def n(self) -> int:
        """Physical qubits per block."""
        return self.classical_code.n

    @property
    def k(self) -> int:
        """Logical qubits per block (always 1 here)."""
        return 1

    @property
    def distance(self) -> int:
        """Code distance (equals the classical distance for these CSS
        codes: the minimum weight in C \\ C^perp is bounded below by
        the classical minimum distance, and for the shipped codes they
        coincide)."""
        if self.n == 1:
            return 1
        return self.classical_code.distance

    @property
    def correctable_errors(self) -> int:
        """k in the paper's notation: guaranteed-correctable faults."""
        return (self.distance - 1) // 2

    # -- stabilizers and logicals --------------------------------------------

    def x_stabilizer_generators(self) -> List[PauliString]:
        """X^h for each parity-check row h."""
        return [
            _pauli_from_support(self.n, row, "X")
            for row in self._dual_generator
        ]

    def z_stabilizer_generators(self) -> List[PauliString]:
        """Z^h for each parity-check row h."""
        return [
            _pauli_from_support(self.n, row, "Z")
            for row in self._dual_generator
        ]

    def stabilizer_generators(self) -> List[PauliString]:
        return self.x_stabilizer_generators() + self.z_stabilizer_generators()

    @property
    def logical_support(self) -> np.ndarray:
        """Support vector u of the logical X̄ = X^u (and Z̄ = Z^u)."""
        return self._logical_support.copy()

    def logical_x(self) -> PauliString:
        return _pauli_from_support(self.n, self._logical_support, "X")

    def logical_z(self) -> PauliString:
        return _pauli_from_support(self.n, self._logical_support, "Z")

    # -- logical states ---------------------------------------------------------

    def logical_zero(self) -> StateVector:
        """|0>_L: uniform superposition over C^perp codewords."""
        return self._coset_state(np.zeros(self.n, dtype=np.uint8))

    def logical_one(self) -> StateVector:
        """|1>_L: the C^perp superposition shifted by the logical X."""
        return self._coset_state(self._logical_support)

    def logical_plus(self) -> StateVector:
        """(|0>_L + |1>_L)/sqrt(2) — superposition over all of C."""
        return self.encode_amplitudes(1.0, 1.0)

    def logical_minus(self) -> StateVector:
        return self.encode_amplitudes(1.0, -1.0)

    def encode_amplitudes(self, alpha: complex, beta: complex) -> StateVector:
        """alpha |0>_L + beta |1>_L (normalised)."""
        zero = self.logical_zero().amplitudes
        one = self.logical_one().amplitudes
        return StateVector.from_amplitudes(alpha * zero + beta * one)

    def _coset_state(self, shift: np.ndarray) -> StateVector:
        amplitudes = np.zeros(2**self.n, dtype=np.complex128)
        for word in self._dual_words:
            bits = (word + shift) % 2
            index = 0
            for bit in bits:
                index = (index << 1) | int(bit)
            amplitudes[index] = 1.0
        return StateVector.from_amplitudes(amplitudes)

    # -- encoding circuit --------------------------------------------------------

    def encoding_circuit(self, data_qubit: Optional[int] = None) -> Circuit:
        """Unitary encoder: (alpha|0> + beta|1>) on the data position,
        |0> elsewhere  ->  alpha|0>_L + beta|1>_L.

        The construction is the systematic CSS encoder: fan the data
        bit out along the logical-X support, then for each X-stabilizer
        generator put its pivot qubit in |+> and fan it out along the
        generator's support.

        Args:
            data_qubit: position holding the input amplitude; defaults
                to the first position of the (pivot-cleared) logical-X
                support.
        """
        reduced_gens, pivots = gf2.rref(self._dual_generator) \
            if self._dual_generator.shape[0] else (self._dual_generator, [])
        logical = self._reduce_logical_against(reduced_gens, pivots)
        support = [int(q) for q in np.nonzero(logical)[0]]
        if not support:
            raise CodeError(f"{self.name}: empty logical support")
        if data_qubit is None:
            data_qubit = support[0]
        if data_qubit not in support:
            raise CodeError(
                f"data qubit {data_qubit} is not in the reduced logical "
                f"support {support}"
            )
        circuit = Circuit(self.n, name=f"{self.name}_encode")
        for target in support:
            if target != data_qubit:
                circuit.add_gate(gates.CNOT, data_qubit, target)
        for row_index, pivot in enumerate(pivots):
            row = reduced_gens[row_index]
            circuit.add_gate(gates.H, pivot)
            for target in np.nonzero(row)[0]:
                target = int(target)
                if target != pivot:
                    circuit.add_gate(gates.CNOT, pivot, target)
        return circuit

    def _reduce_logical_against(self, reduced_gens: np.ndarray,
                                pivots: List[int]) -> np.ndarray:
        logical = self._logical_support.copy()
        for row_index, pivot in enumerate(pivots):
            if logical[pivot]:
                logical = (logical + reduced_gens[row_index]) % 2
        if not np.any(logical):
            raise CodeError(
                f"{self.name}: logical support reduced to zero "
                "(logical operator lies in the stabilizer?)"
            )
        return logical.astype(np.uint8)

    # -- syndromes and decoding ----------------------------------------------------

    def x_error_syndrome(self, error: PauliString) -> Tuple[int, ...]:
        """Syndrome of the bit-error part (detected by Z stabilizers)."""
        return stab.syndrome_of(error, self.z_stabilizer_generators())

    def z_error_syndrome(self, error: PauliString) -> Tuple[int, ...]:
        """Syndrome of the phase-error part (detected by X stabilizers)."""
        return stab.syndrome_of(error, self.x_stabilizer_generators())

    def correction_for(self, error: PauliString) -> PauliString:
        """Minimum-weight Pauli correction for the given error.

        Raises:
            DecodingFailure: when either syndrome is outside the
                correction radius.
        """
        x_pattern = self.classical_code.error_for_syndrome(
            np.array(self.x_error_syndrome(error), dtype=np.uint8)
        )
        z_pattern = self.classical_code.error_for_syndrome(
            np.array(self.z_error_syndrome(error), dtype=np.uint8)
        )
        correction = _pauli_from_support(self.n, x_pattern, "X") * \
            _pauli_from_support(self.n, z_pattern, "Z")
        return correction.strip_phase()

    def is_correctable(self, error: PauliString) -> bool:
        """Whether applying :meth:`correction_for` restores the code
        space *and* the logical state (residual in the stabilizer)."""
        try:
            correction = self.correction_for(error)
        except DecodingFailure:
            return False
        residual = (correction * error).strip_phase()
        return stab.in_stabilizer_group(residual,
                                        self.stabilizer_generators())

    def logical_readout(self, measured_bits: Sequence[int]) -> int:
        """Decode a full Z-basis measurement of the block.

        Classical-correct the measured word with C, then the logical
        value is its overlap with the logical-Z support (paper
        Sec. 4.1: for the Steane code this is the corrected word's
        parity).
        """
        corrected = self.classical_code.correct(measured_bits)
        return int(np.dot(corrected.astype(np.int64),
                          self._logical_support.astype(np.int64)) % 2)

    def logical_expectation(self, state: StateVector,
                            block: Sequence[int]) -> float:
        """<Z̄> of the block inside a larger register state."""
        pauli = self.logical_z().embedded(state.num_qubits, list(block))
        return float(state.expectation_pauli(pauli).real)

    # -- internals --------------------------------------------------------------

    def _find_logical_support(self) -> np.ndarray:
        for word in self.classical_code.codewords():
            if not np.any(word):
                continue
            if self._dual_generator.shape[0] == 0:
                return word.astype(np.uint8)
            if not gf2.row_space_contains(self._dual_generator, word):
                return word.astype(np.uint8)
        raise CodeError(f"{self.name}: no logical representative found")

    def _enumerate_dual_words(self) -> np.ndarray:
        if self._dual_generator.shape[0] == 0:
            return np.zeros((1, self.n), dtype=np.uint8)
        return gf2.all_codewords(self._dual_generator)

    def _check_stabilizers(self) -> None:
        stab.check_commuting_generators(self.stabilizer_generators())
        logical_x = self.logical_x()
        logical_z = self.logical_z()
        for generator in self.stabilizer_generators():
            if not generator.commutes_with(logical_x):
                raise CodeError(f"{self.name}: logical X not in normalizer")
            if not generator.commutes_with(logical_z):
                raise CodeError(f"{self.name}: logical Z not in normalizer")
        if self.n > 1 and logical_x.commutes_with(logical_z):
            raise CodeError(
                f"{self.name}: logical X and Z must anticommute"
            )

    def __repr__(self) -> str:
        return f"CssCode({self.name}: [[{self.n},1,{self.distance}]])"


def _pauli_from_support(num_qubits: int, support: Sequence[int],
                        kind: str) -> PauliString:
    label = "".join(
        kind if int(bit) else "I" for bit in np.asarray(support) % 2
    )
    if len(label) != num_qubits:
        raise CodeError("support length mismatch")
    return PauliString.from_label(label)


def _zero_code(n: int) -> LinearCode:
    return LinearCode(generator=np.zeros((0, n), dtype=np.uint8),
                      parity_check=np.eye(n, dtype=np.uint8),
                      name="zero")
