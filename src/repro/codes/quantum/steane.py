"""The Steane [[7, 1, 3]] code.

The code every construction in the paper is illustrated on: CSS of the
[7,4,3] Hamming code.  It corrects one arbitrary error per block
(k = 1 in the paper's counting), its bitwise H / sigma_z / CNOT realise
the logical gates, and measuring all seven qubits yields a Hamming
codeword whose corrected parity is the logical value (Sec. 4.1).
"""

from __future__ import annotations

from functools import lru_cache

from repro.codes.classical.hamming import HammingCode
from repro.codes.quantum.css import CssCode


class SteaneCode(CssCode):
    """Singleton-style wrapper: ``SteaneCode()`` is cheap to re-create."""

    def __init__(self) -> None:
        super().__init__(HammingCode(), name="steane")

    @property
    def hamming(self) -> HammingCode:
        """The underlying Hamming code (typed accessor)."""
        return self.classical_code  # type: ignore[return-value]


@lru_cache(maxsize=1)
def steane_code() -> SteaneCode:
    """Shared SteaneCode instance (logical states are memoised work)."""
    return SteaneCode()
