"""Error-correcting codes: GF(2) algebra, classical and quantum codes."""

from repro.codes import classical, gf2, quantum
from repro.codes.classical import HammingCode, LinearCode, RepetitionCode
from repro.codes.quantum import CssCode, SteaneCode, TrivialCode

__all__ = [
    "CssCode",
    "HammingCode",
    "LinearCode",
    "RepetitionCode",
    "SteaneCode",
    "TrivialCode",
    "classical",
    "gf2",
    "quantum",
]
