"""Differential verification: cross-simulator oracle + circuit fuzzing.

The repro has four independent views of the same physics — dense
state vectors, density matrices, sparse states and Heisenberg-frame
Pauli tracking — and every threshold estimate downstream silently
assumes they agree.  This package checks that assumption:

* :mod:`repro.verify.generators` — seeded property-based circuit
  generators (Clifford, Clifford+T, gadget-shaped);
* :mod:`repro.verify.backends` — uniform adapters over the state
  simulators, plus :class:`GateRewriteBackend` for bug injection;
* :mod:`repro.verify.oracle` — :func:`check_circuit` /
  :func:`differential_sweep` pairwise agreement checking, and the
  engine-invariant callables (:func:`norm_invariant`, ...) consumed
  by :mod:`repro.analysis.engine`'s validation hook;
* :mod:`repro.verify.shrink` — ddmin reduction of failing circuits
  to minimal reproducers;
* :mod:`repro.verify.metamorphic` — reference-free properties
  (inverse roundtrip, Pauli-frame commutation, code-space
  preservation, channel linearity);
* :mod:`repro.verify.reporting` — QASM-like reproducer dumps,
  round-trip parsing and reseed commands.

A fuzz failure is always reproducible from one integer: the report
prints ``generate(family, seed, ...)`` verbatim.
"""

from repro.verify.backends import (
    Backend,
    BackendResult,
    BatchedBackend,
    DensityMatrixBackend,
    GateRewriteBackend,
    SparseBackend,
    StatevectorBackend,
    default_backends,
    result_discrepancy,
    reverse_cnot,
    swap_s_direction,
)
from repro.verify.generators import (
    FAMILIES,
    generate,
    random_clifford_circuit,
    random_clifford_t_circuit,
    random_gadget_circuit,
    random_noise_model,
    random_pauli,
)
from repro.verify.metamorphic import (
    channel_linearity_discrepancy,
    codespace_discrepancy,
    inverse_roundtrip_discrepancy,
    is_clifford_circuit,
    pauli_channel_conjugation_discrepancy,
    pauli_frame_discrepancy,
)
from repro.verify.oracle import (
    Divergence,
    SweepReport,
    check_circuit,
    check_circuit_pair,
    circuit_seed_for,
    codespace_invariant,
    combine_invariants,
    differential_sweep,
    divergence_predicate,
    norm_invariant,
)
from repro.verify.reporting import (
    dump_circuit,
    format_failure,
    parse_dump,
    reseed_command,
)
from repro.verify.shrink import ShrinkResult, shrink_circuit

__all__ = [
    "Backend",
    "BackendResult",
    "BatchedBackend",
    "DensityMatrixBackend",
    "Divergence",
    "FAMILIES",
    "GateRewriteBackend",
    "ShrinkResult",
    "SparseBackend",
    "StatevectorBackend",
    "SweepReport",
    "channel_linearity_discrepancy",
    "check_circuit",
    "check_circuit_pair",
    "circuit_seed_for",
    "codespace_discrepancy",
    "codespace_invariant",
    "combine_invariants",
    "default_backends",
    "differential_sweep",
    "divergence_predicate",
    "dump_circuit",
    "format_failure",
    "generate",
    "inverse_roundtrip_discrepancy",
    "is_clifford_circuit",
    "norm_invariant",
    "parse_dump",
    "pauli_channel_conjugation_discrepancy",
    "pauli_frame_discrepancy",
    "random_clifford_circuit",
    "random_clifford_t_circuit",
    "random_gadget_circuit",
    "random_noise_model",
    "random_pauli",
    "reseed_command",
    "result_discrepancy",
    "reverse_cnot",
    "shrink_circuit",
    "swap_s_direction",
]
