"""Delta-debugging shrinker for failing circuits.

A fuzzed divergence on a 40-gate circuit is evidence; a 2-gate
reproducer is a diagnosis.  :func:`shrink_circuit` reduces a failing
circuit while preserving a caller-supplied failure predicate, using
the classic ddmin schedule:

1. try removing contiguous chunks of operations, halving the chunk
   size from len/2 down to 1, restarting after every successful
   removal (the predicate is re-checked on each candidate);
2. once operation-minimal, drop qubits the remaining operations never
   touch and compact the register (divergences often depend on gate
   *types*, not on the register width they were found at).

The predicate sees a complete candidate circuit and returns True when
the failure still reproduces.  Candidates that make the predicate
*raise* are treated as not reproducing (a half-deleted circuit can be
degenerate in ways the oracle was never meant to see), which keeps
the shrinker safe to point at any property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.circuits.circuit import Circuit, Operation
from repro.exceptions import VerificationError

#: Hard cap on predicate evaluations; shrinking is best-effort beyond it.
DEFAULT_MAX_CHECKS = 2000


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    circuit: Circuit
    original_ops: int
    checks: int

    @property
    def final_ops(self) -> int:
        return len(self.circuit)


def _rebuild(template: Circuit, ops: Sequence[Operation],
             num_qubits: int = -1) -> Circuit:
    circuit = Circuit(
        template.num_qubits if num_qubits < 0 else num_qubits,
        template.num_clbits,
        name=template.name,
    )
    for op in ops:
        circuit.append(op)
    return circuit


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit


def _holds(predicate: Callable[[Circuit], bool], candidate: Circuit,
           budget: _Budget) -> bool:
    budget.used += 1
    try:
        return bool(predicate(candidate))
    except Exception:
        return False


def _compact_qubits(circuit: Circuit) -> Circuit:
    """Drop untouched qubits and renumber the rest contiguously."""
    used = sorted({q for op in circuit.operations
                   for q in op.touched_qubits})
    if not used:
        return _rebuild(circuit, [], num_qubits=1)
    if used == list(range(len(used))) \
            and len(used) == circuit.num_qubits:
        return circuit
    mapping = {old: new for new, old in enumerate(used)}
    remapped = [op.remapped(mapping) for op in circuit.operations]
    return _rebuild(circuit, remapped, num_qubits=len(used))


def shrink_circuit(circuit: Circuit,
                   predicate: Callable[[Circuit], bool],
                   max_checks: int = DEFAULT_MAX_CHECKS) -> ShrinkResult:
    """Minimise a circuit while ``predicate(circuit)`` stays True.

    Args:
        circuit: a circuit for which the predicate currently holds.
        predicate: returns True when the candidate still fails
            (raising counts as False).
        max_checks: predicate-evaluation budget.

    Returns:
        A :class:`ShrinkResult` whose circuit is 1-minimal with
        respect to single-operation removal (within budget) and has a
        compacted qubit register.

    Raises:
        VerificationError: when the predicate does not hold on the
            input (there is nothing to shrink).
    """
    budget = _Budget(max_checks)
    if not _holds(predicate, circuit, budget):
        raise VerificationError(
            "shrink_circuit: predicate does not hold on the input"
        )
    ops: List[Operation] = list(circuit.operations)
    original = len(ops)

    changed = True
    while changed and not budget.spent():
        changed = False
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and not budget.spent():
            start = 0
            while start < len(ops) and not budget.spent():
                candidate_ops = ops[:start] + ops[start + chunk:]
                if len(candidate_ops) == len(ops):
                    break
                candidate = _rebuild(circuit, candidate_ops)
                if _holds(predicate, candidate, budget):
                    ops = candidate_ops
                    changed = True
                    # Stay at this position: the next chunk slid in.
                else:
                    start += chunk
            chunk //= 2

    minimal = _rebuild(circuit, ops)
    compacted = _compact_qubits(minimal)
    if compacted.num_qubits != minimal.num_qubits \
            and _holds(predicate, compacted, budget):
        minimal = compacted
    return ShrinkResult(circuit=minimal, original_ops=original,
                        checks=budget.used)
